//! Quickstart: compile a small CNN for a resource-constrained PIM chip
//! and inspect what the compiler decided.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use compass::{CompileOptions, Compiler, GaParams};
use pim_arch::ChipSpec;
use pim_model::zoo;
use pim_sim::ChipSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A network from the zoo (or build your own with
    //    pim_model::NetworkBuilder — see examples/custom_network.rs).
    let network = zoo::tiny_cnn();
    println!("network: {} ({} nodes)", network.name(), network.len());

    // 2. A chip. Chip-S is the paper's smallest configuration:
    //    16 cores x 9 crossbars = 1.125 MiB of weights at 4-bit.
    let chip = ChipSpec::chip_s();
    println!("chip:    {chip}");

    // 3. Compile with the COMPASS genetic algorithm.
    let compiler = Compiler::new(chip.clone());
    let options = CompileOptions::new().with_batch_size(8).with_ga(GaParams::fast()).with_seed(42);
    let compiled = compiler.compile(&network, &options)?;

    println!("\n{compiled}\n");
    for plan in compiled.partitions() {
        println!(
            "partition {}: {} layer slices, {} xbars ({} replicated), {} entries, {} exits",
            plan.index,
            plan.slices.len(),
            plan.slices.iter().map(|s| s.crossbars).sum::<usize>(),
            plan.replicated_crossbars(),
            plan.entries.len(),
            plan.exits.len(),
        );
    }

    // 4. Run the compiled programs through the cycle-approximate chip
    //    simulator (includes the DRAM-trace replay).
    let report = ChipSimulator::new(chip).run(compiled.programs(), 8)?;
    println!("\nsimulated: {report}");
    println!(
        "analytical estimate was {:.1} inf/s; simulator measured {:.1} inf/s",
        compiled.estimate().throughput_ips(),
        report.throughput_ips()
    );
    Ok(())
}
