//! The paper's headline scenario: a network ~60x larger than the chip.
//!
//! VGG16 needs 65.97 MiB of 4-bit weights; Chip-S holds 1.125 MiB.
//! Prior PIM compilers simply cannot map it. This example shows the
//! whole COMPASS story end to end: decomposition, the validity map,
//! GA partitioning, and the weight-replacement execution schedule.
//!
//! ```bash
//! cargo run --release --example vgg16_large_model
//! ```

use compass::{decompose, CompileOptions, Compiler, GaParams, ValidityMap};
use pim_arch::ChipSpec;
use pim_isa::InstructionStats;
use pim_model::{stats::NetworkStats, zoo};
use pim_sim::ChipSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::vgg16();
    let chip = ChipSpec::chip_s();
    let stats = NetworkStats::of(&network, chip.precision);
    println!(
        "VGG16: {:.2} MiB of weights vs {:.3} MiB on-chip ({}x over capacity)",
        stats.total_weight_mib(),
        chip.capacity_mib(),
        (stats.total_weight_mib() / chip.capacity_mib()).round()
    );

    // Decomposition + validity map (paper Fig. 4 / Fig. 5).
    let seq = decompose(&network, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    println!(
        "decomposed into M = {} partition units; {:.1}% of (start,end) spans are valid",
        seq.len(),
        validity.valid_fraction() * 100.0
    );

    // Compile with COMPASS.
    let batch = 16;
    let compiled = Compiler::new(chip.clone()).compile(
        &network,
        &CompileOptions::new().with_batch_size(batch).with_ga(GaParams::fast()).with_seed(11),
    )?;
    println!(
        "\nCOMPASS chose {} partitions (weights rewritten {} times per batch of {batch})",
        compiled.partitions().len(),
        compiled.partitions().len(),
    );

    // Aggregate the generated instruction streams.
    let total: InstructionStats = {
        let mut acc = InstructionStats::default();
        for program in compiled.programs() {
            let s = program.stats();
            acc.mvmul += s.mvmul;
            acc.send += s.send;
            acc.recv += s.recv;
            acc.load_weight += s.load_weight;
            acc.store_data += s.store_data;
            acc.weight_load_bytes += s.weight_load_bytes;
            acc.data_store_bytes += s.data_store_bytes;
            acc.data_load_bytes += s.data_load_bytes;
            acc.mvm_waves += s.mvm_waves;
            acc.mvm_activations += s.mvm_activations;
        }
        acc
    };
    println!(
        "schedule: {} MVMUL instrs, {} send/recv pairs, {:.1} MiB weight traffic, {:.1} MiB activation traffic per batch",
        total.mvmul,
        total.send,
        total.weight_load_bytes as f64 / (1 << 20) as f64,
        (total.data_load_bytes + total.data_store_bytes) as f64 / (1 << 20) as f64,
    );

    let report = ChipSimulator::new(chip).run(compiled.programs(), batch)?;
    println!(
        "\nsimulated: {:.1} inf/s, {:.2} mJ per inference, {:.1} ms end-to-end batch latency",
        report.throughput_ips(),
        report.energy_per_inference_uj() / 1000.0,
        report.latency_ms()
    );
    if let Some(dram) = report.dram_energy {
        println!("DRAM (trace replay): {dram}");
    }
    Ok(())
}
