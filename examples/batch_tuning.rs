//! Batch-size tuning: the §II-B throughput/latency trade-off,
//! automated.
//!
//! Weights are reused across a batch before being replaced, so bigger
//! batches raise throughput — but every sample waits for its whole
//! batch, so end-to-end latency grows. This example finds, for
//! ResNet18 on Chip-S:
//!
//! 1. the highest-throughput batch under a 10 ms latency budget,
//! 2. the minimum-EDP batch,
//!
//! and prints the full sweep plus the winning compilation's report.
//!
//! ```bash
//! cargo run --release --example batch_tuning
//! ```

use compass::{
    tune_batch, CompileOptions, CompileReport, Compiler, GaParams, Strategy, TuneObjective,
};
use pim_arch::ChipSpec;
use pim_model::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::chip_s();
    let network = zoo::resnet18();
    let compiler = Compiler::new(chip.clone());
    let options = CompileOptions::new()
        .with_strategy(Strategy::Compass)
        .with_ga(GaParams::fast())
        .with_seed(17);
    let candidates = [1, 2, 4, 8, 16, 32];

    let result = tune_batch(
        &compiler,
        &network,
        &options,
        &candidates,
        TuneObjective::ThroughputUnderLatencyMs(10.0),
    )?;
    println!("sweep (ResNet18 on {chip}):");
    println!("{:>6} {:>12} {:>12} {:>12} {:>12}", "batch", "inf/s", "latency ms", "uJ/inf", "EDP");
    for p in &result.sweep {
        let marker = if p.batch == result.batch { " <- chosen" } else { "" };
        println!(
            "{:>6} {:>12.1} {:>12.2} {:>12.1} {:>12.1}{marker}",
            p.batch, p.throughput_ips, p.latency_ms, p.energy_per_inference_uj, p.edp
        );
    }
    println!("\nbest batch under 10 ms end-to-end budget: {}", result.batch);

    let edp_result = tune_batch(&compiler, &network, &options, &candidates, TuneObjective::MinEdp)?;
    println!("minimum-EDP batch: {}", edp_result.batch);

    println!("\ncompilation report for the latency-budget winner:\n");
    let report = CompileReport::new(&network, &chip, &result.compiled);
    print!("{report}");
    println!("\nJSON export: {} bytes", serde_json::to_string(&report)?.len());
    Ok(())
}
