//! Design-space exploration: ResNet18 across the paper's three chip
//! configurations and all partitioning schemes.
//!
//! Reproduces the decision a system architect would make with COMPASS:
//! which chip size does a target workload actually need?
//!
//! ```bash
//! cargo run --release --example resnet18_chip_sweep
//! ```

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::{ChipClass, ChipSpec};
use pim_model::zoo;
use pim_sim::ChipSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = zoo::resnet18();
    let batch = 16;
    println!("ResNet18, batch {batch}: throughput / energy per inference / EDP\n");
    println!(
        "{:<6} {:<10} {:>8} {:>12} {:>12} {:>12} {:>6}",
        "chip", "scheme", "parts", "inf/s", "uJ/inf", "EDP", "util%"
    );
    for class in ChipClass::ALL {
        let chip = ChipSpec::preset(class);
        for strategy in [Strategy::Greedy, Strategy::Layerwise, Strategy::Compass] {
            let compiled = Compiler::new(chip.clone()).compile(
                &network,
                &CompileOptions::new()
                    .with_batch_size(batch)
                    .with_strategy(strategy)
                    .with_ga(GaParams::fast())
                    .with_seed(7),
            )?;
            let report = ChipSimulator::new(chip.clone()).run(compiled.programs(), batch)?;
            // Average crossbar utilization across partitions.
            let util: f64 = compiled
                .partitions()
                .iter()
                .map(|p| p.replicated_crossbars() as f64 / chip.total_crossbars() as f64)
                .sum::<f64>()
                / compiled.partitions().len() as f64;
            println!(
                "{:<6} {:<10} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>6.1}",
                format!("{class}"),
                strategy.to_string(),
                compiled.partitions().len(),
                report.throughput_ips(),
                report.energy_per_inference_uj(),
                report.edp_per_inference(),
                util * 100.0,
            );
        }
    }
    println!(
        "\nreading guide: COMPASS should dominate both baselines per chip; bigger chips give\nCOMPASS more replication headroom (higher utilization at fewer partitions)."
    );
    Ok(())
}
