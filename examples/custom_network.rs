//! Bring your own network: build a custom DAG with `NetworkBuilder`
//! and compile it for a custom chip configuration.
//!
//! The network below is a small U-Net-style encoder/decoder with a
//! skip connection — a structure none of the paper's three benchmarks
//! has — demonstrating that the compiler's multi-entry/exit dependence
//! handling (paper §III-B3) is general.
//!
//! ```bash
//! cargo run --release --example custom_network
//! ```

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::{ChipSpec, CrossbarSpec};
use pim_model::{NetworkBuilder, TensorShape};
use pim_sim::ChipSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A custom network with a long skip connection ---------------
    let mut b = NetworkBuilder::new("mini_unet");
    let input = b.input(TensorShape::new(3, 64, 64));
    // Encoder.
    let e1 = b.conv2d("enc1", input, 32, 3, 1, 1);
    let e1r = b.relu("enc1_relu", e1);
    let p1 = b.max_pool2d("pool1", e1r, 2, 2);
    let e2 = b.conv2d("enc2", p1, 64, 3, 1, 1);
    let e2r = b.relu("enc2_relu", e2);
    let p2 = b.max_pool2d("pool2", e2r, 2, 2);
    // Bottleneck.
    let mid = b.conv2d("mid", p2, 128, 3, 1, 1);
    let midr = b.relu("mid_relu", mid);
    // "Decoder" (stride-1 stand-ins for upsampling, keeping shapes).
    let d2 = b.conv2d("dec2", midr, 64, 3, 1, 1);
    let d2r = b.relu("dec2_relu", d2);
    // Skip connection from the encoder (same 64x16x16 shape).
    let skip = b.conv2d("skip_proj", p2, 64, 1, 1, 0);
    let fused = b.add("skip_add", d2r, skip);
    let d1 = b.conv2d("dec1", fused, 32, 3, 1, 1);
    let d1r = b.relu("dec1_relu", d1);
    let gap = b.global_avg_pool("gap", d1r);
    let head = b.linear("head", gap, 10);
    let _ = b.softmax("prob", head);
    let network = b.build()?;
    println!("{network}");

    // --- A custom chip: tiny edge device, ReRAM crossbars -----------
    let mut chip = ChipSpec::chip_s();
    chip.name = "edge-reram".into();
    chip.cores = 4;
    chip.crossbars_per_core = 4;
    chip.crossbar = CrossbarSpec::reram();
    chip.validate()?;
    println!("chip: {chip}");

    // --- Compile under both COMPASS and the greedy baseline ---------
    for strategy in [Strategy::Greedy, Strategy::Compass] {
        let compiled = Compiler::new(chip.clone()).compile(
            &network,
            &CompileOptions::new()
                .with_batch_size(4)
                .with_strategy(strategy)
                .with_ga(GaParams::fast())
                .with_seed(3),
        )?;
        let report = ChipSimulator::new(chip.clone()).run(compiled.programs(), 4)?;
        println!(
            "{strategy:<9} -> {} partitions, {:.1} inf/s, {:.1} uJ/inf",
            compiled.partitions().len(),
            report.throughput_ips(),
            report.energy_per_inference_uj()
        );
        // The skip connection forces a multi-entry partition whenever
        // the cut separates skip_proj from skip_add.
        let multi_entry = compiled.partitions().iter().filter(|p| p.entries.len() > 1).count();
        println!("          multi-entry partitions: {multi_entry}");
    }
    Ok(())
}
