//! Workspace umbrella crate for the COMPASS reproduction.
//!
//! This crate exists to host the repository-level examples
//! (`examples/`) and cross-crate integration tests (`tests/`). It
//! re-exports the member crates so examples can use a single
//! dependency.

pub use compass;
pub use pim_arch;
pub use pim_dram;
pub use pim_isa;
pub use pim_model;
pub use pim_sim;
