#!/usr/bin/env bash
# Regenerates BOTH pinned-performance artifacts in one step so they
# cannot drift apart by hand:
#
#   * tests/golden/              — byte-pinned analytic SimReports
#     (barrier schedule mode: the golden executor is the paper's
#     full-chip-barrier model; interleaving is opt-in and never
#     golden-pinned)
#   * crates/bench/baselines/ci_baseline.json — the bench-smoke
#     perf-trajectory gate, regenerated exactly as CI runs it
#     (--quick, barrier AND interleaved schedule axes)
#
# Run from anywhere inside the repo; commit the resulting diff only
# for intentional model changes.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

BASELINE=crates/bench/baselines/ci_baseline.json

echo "== regenerating golden fixtures (barrier mode) =="
GOLDEN_REGEN=1 cargo test -q --test engine_determinism

echo "== regenerating ${BASELINE} =="
# Count the committed records before the file is removed, so the
# summary below can flag a sweep that silently dropped (or grew) the
# trajectory — e.g. a bin invocation that stopped emitting records.
COMMITTED_COUNT=$(git show "HEAD:${BASELINE}" 2>/dev/null | grep -o '"name":' | wc -l || echo 0)
rm -f "${BASELINE}"
cargo run --release -p compass-bench --bin topology_sweep -- --quick --json "${BASELINE}"
cargo run --release -p compass-bench --bin topology_sweep -- --quick --schedule interleaved --json "${BASELINE}"
cargo run --release -p compass-bench --bin timing_mode_sweep -- --quick --json "${BASELINE}"
# Hot-path records: the hotpath:gate:* speedup ratios are gated (they
# are same-process ratios, stable across machines); the hotpath:abs:*
# events/sec and GA-generation numbers are trajectory-only. The
# sharded feature adds the hotpath:gate:shard:* scaling ratios; their
# floor is parallelism-aware (it only gates when the regenerating host
# has one hardware thread per chip — a narrow host pins the honest
# single-core ratio and prints a note instead).
cargo run --release -p compass-bench --features sharded --bin engine_hotpath -- --quick --json "${BASELINE}" --min-speedup 3.0 --min-shard-speedup 2.0
# GA scaling records: ga:abs:* per-generation walls (trajectory-only)
# and ga:gate:* memo/parallel speedup ratios, all stamped with the
# regenerating host's parallelism so the gate never compares ratios
# across differently-sized machines. The --min-speedup floor only
# applies on multi-core hosts (one hardware thread pins the honest
# ~1x ratio and prints a note instead).
cargo run --release -p compass-bench --features parallel --bin ga_scaling -- --quick --json "${BASELINE}" --min-speedup 1.3
# Open-loop serving records (serving:*): p99 latency in the gated
# makespan slot, SLO goodput in throughput_ips. Seeded synthetic
# traffic on the simulated clock — byte-deterministic everywhere.
cargo run --release -p compass-bench --bin serving_sweep -- --quick --json "${BASELINE}"
# Serving-engine records: serving:abs:shard:* / serving:gate:shard:*
# single-vs-sharded walls over the rate × topology grid (byte-identity
# asserted per point, parallelism-stamped like the ga:* records) plus
# the serving:abs:hotpath:chunk:* arrival-pregeneration walls. The
# floor is a collapse guard only; a narrow host pins the honest
# sub-1x ratio and prints a skip note instead.
cargo run --release -p compass-bench --features sharded --bin serving_sweep -- --shard --quick --json "${BASELINE}" --min-shard-speedup 0.25

FRESH_COUNT=$(grep -o '"name":' "${BASELINE}" | wc -l)
echo "== record count: ${FRESH_COUNT} regenerated vs ${COMMITTED_COUNT} committed at HEAD =="
if [ "${FRESH_COUNT}" -ne "${COMMITTED_COUNT}" ]; then
  echo "   (count changed — make sure every added/removed record is intentional)"
fi
echo "== done; review with: git diff tests/golden ${BASELINE} =="
