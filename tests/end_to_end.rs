//! Cross-crate integration: model zoo -> COMPASS compiler -> ISA
//! programs -> chip simulator -> DRAM replay.

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::{ChipClass, ChipSpec};
use pim_model::zoo;
use pim_sim::ChipSimulator;

fn options(strategy: Strategy, batch: usize) -> CompileOptions {
    CompileOptions::new()
        .with_strategy(strategy)
        .with_batch_size(batch)
        .with_ga(GaParams::fast())
        .with_seed(99)
}

#[test]
fn every_paper_network_compiles_and_simulates_on_every_chip() {
    for class in ChipClass::ALL {
        let chip = ChipSpec::preset(class);
        for net in [zoo::vgg16(), zoo::resnet18(), zoo::squeezenet()] {
            let compiled = Compiler::new(chip.clone())
                .compile(&net, &options(Strategy::Greedy, 4))
                .unwrap_or_else(|e| panic!("{} on {class}: {e}", net.name()));
            let report = ChipSimulator::new(chip.clone())
                .run(compiled.programs(), 4)
                .unwrap_or_else(|e| panic!("{} on {class} sim: {e}", net.name()));
            assert!(report.throughput_ips() > 0.0);
            assert!(report.energy.total_nj() > 0.0);
            assert_eq!(report.partitions.len(), compiled.partitions().len());
        }
    }
}

#[test]
fn compass_strategy_full_pipeline_on_resnet18() {
    let chip = ChipSpec::chip_m();
    let net = zoo::resnet18();
    let compiled = Compiler::new(chip.clone())
        .compile(&net, &options(Strategy::Compass, 8))
        .expect("compiles");
    assert!(compiled.ga_trace().is_some());
    let report = ChipSimulator::new(chip).run(compiled.programs(), 8).expect("simulates");
    // The simulator and estimator describe the same machine; they must
    // agree within an order of magnitude.
    let ratio = report.makespan_ns / compiled.estimate().batch_latency_ns;
    assert!((0.1..10.0).contains(&ratio), "sim/estimate ratio {ratio}");
}

#[test]
fn compass_beats_baselines_in_simulation_resnet18_m_16() {
    // The paper's Fig. 7 configuration. COMPASS should win in the
    // *simulator* (not just its own estimator).
    let chip = ChipSpec::chip_m();
    let net = zoo::resnet18();
    let run = |strategy| {
        let compiled =
            Compiler::new(chip.clone()).compile(&net, &options(strategy, 16)).expect("compiles");
        ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(compiled.programs(), 16)
            .expect("simulates")
            .throughput_ips()
    };
    let compass = run(Strategy::Compass);
    let greedy = run(Strategy::Greedy);
    let layerwise = run(Strategy::Layerwise);
    assert!(compass > greedy, "COMPASS {compass:.0} must beat greedy {greedy:.0} on ResNet18-M-16");
    assert!(
        compass > layerwise,
        "COMPASS {compass:.0} must beat layerwise {layerwise:.0} on ResNet18-M-16"
    );
}

#[test]
fn throughput_rises_monotonically_with_batch_for_greedy() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let mut last = 0.0;
    for batch in [1usize, 2, 4, 8, 16] {
        let compiled = Compiler::new(chip.clone())
            .compile(&net, &options(Strategy::Greedy, batch))
            .expect("compiles");
        let ips = ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(compiled.programs(), batch)
            .expect("simulates")
            .throughput_ips();
        assert!(
            ips > last,
            "throughput must rise with batch (batch {batch}: {ips:.0} vs {last:.0})"
        );
        last = ips;
    }
}

#[test]
fn weight_traffic_equals_model_size_per_batch_cycle() {
    // The simulator's DRAM trace must stream each weight exactly once
    // per batch cycle (replicas are broadcast on chip, not re-read).
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let compiled =
        Compiler::new(chip.clone()).compile(&net, &options(Strategy::Greedy, 2)).expect("compiles");
    let report = ChipSimulator::new(chip.clone()).run(compiled.programs(), 2).expect("simulates");
    let model_bytes = pim_model::stats::NetworkStats::of(&net, chip.precision).total_weight_bytes();
    let loaded: usize = compiled.programs().iter().map(|p| p.stats().weight_load_bytes).sum();
    let tolerance = model_bytes / 100; // rounding of per-unit bit shares
    assert!(
        loaded.abs_diff(model_bytes) <= tolerance,
        "weights loaded {loaded} vs model {model_bytes}"
    );
    assert!(report.dram_trace.read_bytes >= loaded);
}

#[test]
fn edp_mode_produces_different_plans_than_latency_mode() {
    use compass::FitnessKind;
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let lat = Compiler::new(chip.clone())
        .compile(&net, &options(Strategy::Compass, 4).with_fitness(FitnessKind::Latency))
        .expect("latency mode");
    let edp = Compiler::new(chip)
        .compile(&net, &options(Strategy::Compass, 4).with_fitness(FitnessKind::Edp))
        .expect("edp mode");
    // Not guaranteed to differ in principle, but with this seed and
    // model they explore differently; at minimum both are valid.
    assert!(lat.estimate().throughput_ips() > 0.0);
    assert!(edp.estimate().edp_per_inference() > 0.0);
    // EDP mode should not be *worse* on EDP than latency mode by a
    // large margin.
    assert!(
        edp.estimate().edp_per_inference() <= lat.estimate().edp_per_inference() * 1.5,
        "EDP-fitness result ({:.1}) should be competitive with latency-fitness ({:.1}) on EDP",
        edp.estimate().edp_per_inference(),
        lat.estimate().edp_per_inference()
    );
}

#[test]
fn custom_chip_configurations_work_end_to_end() {
    // A non-preset chip: 12 cores x 6 crossbars, MRAM cells.
    let mut chip = ChipSpec::chip_s();
    chip.name = "custom".into();
    chip.cores = 12;
    chip.crossbars_per_core = 6;
    chip.crossbar = pim_arch::CrossbarSpec::mram();
    chip.validate().expect("valid custom chip");
    let compiled = Compiler::new(chip.clone())
        .compile(&zoo::squeezenet(), &options(Strategy::Compass, 4))
        .expect("compiles on custom chip");
    let report = ChipSimulator::new(chip).run(compiled.programs(), 4).expect("simulates");
    assert!(report.throughput_ips() > 0.0);
}
