//! Multi-chip topology invariants.
//!
//! Pins the system-simulator contract: the single-chip system path is
//! byte-identical to the `ChipSimulator` golden fixtures, multi-chip
//! runs are deterministic per seed, link traffic conserves bytes, and
//! a 2-chip layer pipeline actually beats one chip on a batched
//! workload.

use compass::{
    plan_system, CompileOptions, CompiledModel, Compiler, GaParams, Strategy, SystemSchedule,
    SystemStrategy, SystemTarget,
};
use compass_bench::system_loads;
use pim_arch::{ChipSpec, TimingMode, Topology};
use pim_model::zoo;
use pim_sim::{ChipLoad, SimReport, SystemSimulator};
use std::path::PathBuf;

fn compile(net: &pim_model::Network, chip: &ChipSpec, batch: usize, seed: u64) -> CompiledModel {
    Compiler::new(chip.clone())
        .compile(
            net,
            &CompileOptions::new()
                .with_strategy(Strategy::Greedy)
                .with_batch_size(batch)
                .with_ga(GaParams::fast())
                .with_seed(seed),
        )
        .expect("compiles")
}

/// Plans `compiled` onto `topology` and simulates `rounds` rounds.
#[allow(clippy::too_many_arguments)]
fn simulate_system(
    net: &pim_model::Network,
    compiled: &CompiledModel,
    chip: &ChipSpec,
    topology: Topology,
    strategy: SystemStrategy,
    batch: usize,
    rounds: usize,
    timing: TimingMode,
) -> (SystemSchedule, SimReport) {
    let target = SystemTarget::new(topology.clone(), strategy);
    let schedule = plan_system(net, compiled, chip, &target, batch, 4).expect("plans");
    let loads = system_loads(&schedule);
    let report = SystemSimulator::new(chip.clone(), topology)
        .with_timing_mode(timing)
        .run(&loads, rounds, schedule.samples_per_round)
        .expect("simulates");
    (schedule, report)
}

#[test]
fn single_chip_system_report_is_byte_identical_to_golden() {
    // The exact configuration pinned by
    // tests/golden/tiny_cnn_compass_b4_s11.json — run through the
    // SystemSimulator with a single-chip topology instead of the
    // ChipSimulator wrapper.
    let chip = ChipSpec::chip_s();
    let compiled = Compiler::new(chip.clone())
        .compile(
            &zoo::tiny_cnn(),
            &CompileOptions::new()
                .with_strategy(Strategy::Compass)
                .with_batch_size(4)
                .with_ga(GaParams::fast())
                .with_seed(11),
        )
        .expect("compiles");
    let report = SystemSimulator::new(chip, Topology::single())
        .run(&[ChipLoad::new(compiled.programs())], 1, 4)
        .expect("simulates");
    let serialized = serde_json::to_string(&report).expect("serializes");
    let path: PathBuf =
        [env!("CARGO_MANIFEST_DIR"), "tests", "golden", "tiny_cnn_compass_b4_s11.json"]
            .iter()
            .collect();
    let golden = std::fs::read_to_string(&path).expect("golden fixture exists");
    assert_eq!(golden, serialized, "single-chip system reports must match the pinned goldens");
}

#[test]
fn link_traffic_conserves_bytes() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let batch = 2;
    let rounds = 3;
    let compiled = compile(&net, &chip, batch, 7);
    let (schedule, report) = simulate_system(
        &net,
        &compiled,
        &chip,
        Topology::ring(2),
        SystemStrategy::LayerPipeline,
        batch,
        rounds,
        TimingMode::from_env(),
    );
    assert!(schedule.handoff_bytes_per_round() > 0, "a 2-chip pipeline must ship activations");
    let links = report.links.as_ref().expect("multi-chip reports carry link stats");
    let carried: u64 = links.iter().map(|l| l.bytes).sum();
    assert_eq!(
        carried,
        (schedule.handoff_bytes_per_round() * rounds) as u64,
        "every hand-off byte crosses a link exactly once"
    );
    for link in links {
        assert!(link.busy_ns >= 0.0);
        assert!(link.wait_ns >= 0.0);
        assert_eq!(link.bytes > 0, link.transfers > 0);
    }
}

#[test]
fn multi_chip_reports_are_deterministic_per_seed() {
    let chip = ChipSpec::chip_s();
    let net = zoo::squeezenet();
    let batch = 4;
    let compiled = compile(&net, &chip, batch, 42);
    let run = |strategy: SystemStrategy| {
        let (_, report) = simulate_system(
            &net,
            &compiled,
            &chip,
            Topology::fully_connected(4),
            strategy,
            batch,
            2,
            TimingMode::from_env(),
        );
        serde_json::to_string(&report).expect("serializes")
    };
    for strategy in SystemStrategy::ALL {
        assert_eq!(run(strategy), run(strategy), "{strategy} reports must be byte-identical");
    }
}

#[test]
fn env_selected_topology_simulates_deterministically() {
    // The CI matrix retargets the whole harness through PIM_TOPOLOGY;
    // whatever topology the leg selects must produce bit-stable
    // reports (and golden-identical ones on the single-chip leg).
    let topology = Topology::from_env();
    let chip = ChipSpec::chip_s();
    let net = zoo::tiny_cnn();
    let batch = 2;
    let compiled = compile(&net, &chip, batch, 9);
    let run = || {
        let (_, report) = simulate_system(
            &net,
            &compiled,
            &chip,
            topology.clone(),
            SystemStrategy::BatchShard,
            batch,
            2,
            TimingMode::from_env(),
        );
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(run(), run(), "topology {topology} must simulate deterministically");
}

#[test]
fn two_chip_pipeline_beats_one_chip_on_batched_workload() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let batch = 4;
    let rounds = 4;
    let timing = TimingMode::from_env();
    let compiled = compile(&net, &chip, batch, 3);
    let (_, single) = simulate_system(
        &net,
        &compiled,
        &chip,
        Topology::single(),
        SystemStrategy::LayerPipeline,
        batch,
        rounds,
        timing,
    );
    let (_, pipelined) = simulate_system(
        &net,
        &compiled,
        &chip,
        Topology::ring(2),
        SystemStrategy::LayerPipeline,
        batch,
        rounds,
        timing,
    );
    assert!(
        pipelined.makespan_ns < single.makespan_ns,
        "2-chip pipeline ({} ns) must beat 1 chip ({} ns) over {rounds} rounds",
        pipelined.makespan_ns,
        single.makespan_ns
    );
    assert_eq!(pipelined.batch, single.batch, "same samples either way");
    let chips = pipelined.chips.as_ref().expect("multi-chip summary present");
    assert_eq!(chips.len(), 2);
    assert!(chips[1].handoff_wait_ns > 0.0, "the downstream chip pays the pipeline fill");
}

#[test]
fn batch_shard_scales_throughput_with_chips() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let batch = 8;
    let timing = TimingMode::from_env();
    let compiled = compile(&net, &chip, batch, 5);
    let throughput = |topology: Topology| {
        let (_, report) = simulate_system(
            &net,
            &compiled,
            &chip,
            topology,
            SystemStrategy::BatchShard,
            batch,
            1,
            timing,
        );
        report.throughput_ips()
    };
    let one = throughput(Topology::single());
    let four = throughput(Topology::fully_connected(4));
    assert!(
        four > 1.5 * one,
        "4-way batch sharding ({four:.1} inf/s) must clearly beat one chip ({one:.1} inf/s)"
    );
}

#[test]
fn chip_summaries_are_consistent_with_partitions() {
    let chip = ChipSpec::chip_s();
    let net = zoo::vgg16();
    let batch = 2;
    let rounds = 2;
    let compiled = compile(&net, &chip, batch, 1);
    let (schedule, report) = simulate_system(
        &net,
        &compiled,
        &chip,
        Topology::ring(4),
        SystemStrategy::LayerPipeline,
        batch,
        rounds,
        TimingMode::from_env(),
    );
    let chips = report.chips.as_ref().expect("multi-chip summary present");
    assert_eq!(chips.len(), 4);
    let stages: usize = chips.iter().map(|c| c.partitions).sum();
    assert_eq!(stages, report.partitions.len());
    for (summary, plan) in chips.iter().zip(&schedule.chips) {
        let (from, to) = plan.partition_range;
        assert_eq!(summary.partitions, (to - from) * rounds);
        assert!(summary.end_ns <= report.makespan_ns + 1e-9);
    }
    // Partition stage count: every assigned partition ran every round.
    assert_eq!(report.partitions.len(), compiled.partitions().len() * rounds);
}
