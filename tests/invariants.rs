//! Randomized invariants across the compiler stack: random networks,
//! random chips, random partition groups — the structural guarantees
//! must always hold.
//!
//! Implemented as deterministic seeded sweeps (the offline environment
//! has no proptest): each property draws a few dozen `(network, chip)`
//! cases from a seeded generator and asserts on every one.

use compass::plan::GroupPlan;
use compass::replication::optimize_group;
use compass::{decompose, PartitionGroup, ValidityMap};
use pim_arch::ChipSpec;
use pim_model::{Network, NetworkBuilder, TensorShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

/// A random plain CNN (conv/relu/pool chain + classifier).
fn random_cnn(rng: &mut StdRng) -> Network {
    let stages = rng.gen_range(2usize..5);
    let base = *[8usize, 16, 24, 32].get(rng.gen_range(0usize..4)).unwrap();
    let size = *[16usize, 32].get(rng.gen_range(0usize..2)).unwrap();
    let pool = rng.gen_bool(0.5);
    let mut b = NetworkBuilder::new("prop_cnn");
    let input = b.input(TensorShape::new(3, size, size));
    let mut x = input;
    for i in 0..stages {
        let ch = base * (i + 1);
        let conv = b.conv2d(format!("conv{i}"), x, ch, 3, 1, 1);
        x = b.relu(format!("relu{i}"), conv);
        if pool && i % 2 == 1 {
            x = b.max_pool2d(format!("pool{i}"), x, 2, 2);
        }
    }
    let gap = b.global_avg_pool("gap", x);
    let fc = b.linear("fc", gap, 10);
    let _ = b.softmax("prob", fc);
    b.build().expect("generated CNN is valid")
}

/// A random (validated) chip configuration.
fn random_chip(rng: &mut StdRng) -> ChipSpec {
    let cores = rng.gen_range(2usize..20);
    let xbars = rng.gen_range(2usize..18);
    let mut chip = ChipSpec::chip_s();
    chip.name = format!("prop-{cores}x{xbars}");
    chip.cores = cores;
    chip.crossbars_per_core = xbars;
    chip.validate().expect("generated chip is valid");
    chip
}

#[test]
fn units_always_fit_one_core() {
    let mut rng = StdRng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let (net, chip) = (random_cnn(&mut rng), random_chip(&mut rng));
        let seq = decompose(&net, &chip);
        for u in seq.units() {
            assert!(u.crossbars <= chip.crossbars_per_core);
            assert!(u.crossbars > 0);
        }
        // Units cover the model's weight bits exactly.
        let total: usize = seq.units().iter().map(|u| u.weight_bits).sum();
        let expected =
            pim_model::stats::NetworkStats::of(&net, chip.precision).total_weight_bytes() * 8;
        assert_eq!(total, expected);
    }
}

#[test]
fn validity_map_is_prefix_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let (net, chip) = (random_cnn(&mut rng), random_chip(&mut rng));
        let seq = decompose(&net, &chip);
        let map = ValidityMap::build(&seq, &chip);
        for i in 0..map.len() {
            assert!(map.max_end(i) > i, "single unit fits");
            for j in (i + 1)..=map.max_end(i) {
                assert!(map.is_valid(i, j));
            }
        }
    }
}

#[test]
fn random_groups_cover_units_and_optimized_plans_fit_chip() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let (net, chip) = (random_cnn(&mut rng), random_chip(&mut rng));
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let group = PartitionGroup::random(&mut rng, &validity);
        // Coverage: partitions tile [0, M).
        let parts = group.partitions();
        assert_eq!(parts[0].start, 0);
        assert_eq!(parts.last().unwrap().end, seq.len());
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Plans and replication respect the chip.
        let mut plans = GroupPlan::build(&net, &seq, &group);
        optimize_group(&mut plans, &chip);
        for p in plans.plans() {
            assert!(p.replicated_crossbars() <= chip.total_crossbars());
            assert!(p.packing.is_some());
            for s in &p.slices {
                assert!(s.replication >= 1);
            }
        }
        // Every unit is in exactly one slice.
        let mut seen = vec![0u8; seq.len()];
        for p in plans.plans() {
            for s in &p.slices {
                for u in s.units.clone() {
                    seen[u] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}

#[test]
fn mutations_preserve_validity_and_coverage() {
    use compass::mutation::{self, MutationKind};
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let (net, chip) = (random_cnn(&mut rng), random_chip(&mut rng));
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let mut group = PartitionGroup::random(&mut rng, &validity);
        for step in 0..40 {
            let kind = MutationKind::ALL[step % 4];
            let scores: Vec<f64> =
                (0..group.partition_count()).map(|k| 1.0 + (k as f64) * 0.1).collect();
            if let Some(child) = mutation::apply(kind, &group, &scores, &mut rng, &validity) {
                assert_eq!(child.unit_count(), group.unit_count());
                assert!(PartitionGroup::from_cuts(child.cuts().to_vec(), &validity).is_some());
                group = child;
            }
        }
    }
}

#[test]
fn estimator_is_monotone_in_batch() {
    use compass::estimate::Estimator;
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let net = random_cnn(&mut rng);
        let chip = ChipSpec::chip_s();
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let group = PartitionGroup::random(&mut rng, &validity);
        let mut plans = GroupPlan::build(&net, &seq, &group);
        optimize_group(&mut plans, &chip);
        let estimator = Estimator::new(&chip);
        let mut last_latency = 0.0;
        let mut last_energy_per_inf = f64::INFINITY;
        for batch in [1usize, 2, 4, 8, 16] {
            let est = estimator.estimate_group(&plans, batch);
            assert!(est.batch_latency_ns > last_latency, "latency grows with batch");
            assert!(
                est.energy_per_inference_uj() <= last_energy_per_inf * (1.0 + 1e-9),
                "per-inference energy must not grow with batch"
            );
            last_latency = est.batch_latency_ns;
            last_energy_per_inf = est.energy_per_inference_uj();
        }
    }
}

#[test]
fn scheduled_programs_simulate_for_random_cases() {
    // A deterministic sweep of generated CNNs through the entire
    // pipeline, including the simulator.
    use compass::{CompileOptions, Compiler, GaParams, Strategy};
    use pim_sim::ChipSimulator;
    for (cores, xbars, stages) in [(4usize, 4usize, 2usize), (8, 6, 3), (12, 9, 4)] {
        let mut b = NetworkBuilder::new("sweep_cnn");
        let input = b.input(TensorShape::new(3, 32, 32));
        let mut x = input;
        for i in 0..stages {
            let conv = b.conv2d(format!("conv{i}"), x, 16 * (i + 1), 3, 1, 1);
            x = b.relu(format!("relu{i}"), conv);
        }
        let gap = b.global_avg_pool("gap", x);
        let fc = b.linear("fc", gap, 10);
        let _ = b.softmax("prob", fc);
        let net = b.build().unwrap();

        let mut chip = ChipSpec::chip_s();
        chip.cores = cores;
        chip.crossbars_per_core = xbars;
        let compiled = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new()
                    .with_batch_size(3)
                    .with_ga(GaParams::fast())
                    .with_strategy(Strategy::Compass)
                    .with_seed(5),
            )
            .expect("compiles");
        let report = ChipSimulator::new(chip)
            .run(compiled.programs(), 3)
            .expect("simulates without deadlock");
        assert!(report.makespan_ns > 0.0);
    }
}
