//! Quantitative checks of the paper's claims, at the fidelity the
//! reproduction targets: exact for table constants, shape-level for
//! simulated comparisons.

use compass::{decompose, CompileOptions, Compiler, GaParams, Strategy, ValidityMap};
use pim_arch::{ChipClass, ChipSpec};
use pim_model::stats::NetworkStats;
use pim_model::zoo;
use pim_sim::ChipSimulator;

fn options(strategy: Strategy, batch: usize) -> CompileOptions {
    CompileOptions::new()
        .with_strategy(strategy)
        .with_batch_size(batch)
        .with_ga(GaParams::fast())
        .with_seed(2025)
}

#[test]
fn table1_capacities_and_powers_exact() {
    let specs = [
        (ChipClass::S, 16, 9, 1.125, 1.57),
        (ChipClass::M, 16, 16, 2.0, 2.80),
        (ChipClass::L, 36, 16, 4.5, 6.30),
    ];
    for (class, cores, xbars, mib, watts) in specs {
        let chip = ChipSpec::preset(class);
        assert_eq!(chip.cores, cores);
        assert_eq!(chip.crossbars_per_core, xbars);
        assert!((chip.capacity_mib() - mib).abs() < 1e-12);
        assert!((chip.chip_power_w - watts).abs() < 1e-12);
    }
}

#[test]
fn table2_sizes_within_rounding() {
    let cases = [
        ("vgg16", 58.95, 7.02, 65.97),
        ("resnet18", 0.244, 5.324, 5.569),
        ("squeezenet", 0.0, 0.58725, 0.58725),
    ];
    for (name, linear, conv, total) in cases {
        let net = match name {
            "vgg16" => zoo::vgg16(),
            "resnet18" => zoo::resnet18(),
            _ => zoo::squeezenet(),
        };
        let s = NetworkStats::of(&net, pim_model::Precision::Int4);
        assert!((s.linear_weight_mib() - linear).abs() < 0.01, "{name} linear");
        assert!((s.conv_weight_mib() - conv).abs() < 0.01, "{name} conv");
        assert!((s.total_weight_mib() - total).abs() < 0.02, "{name} total");
    }
}

#[test]
fn table2_prior_compilers_support_only_squeezenet() {
    // "Existing compiler methods can only map SqueezeNet in
    // resource-constrained chips, while COMPASS allows all three."
    for class in ChipClass::ALL {
        let chip = ChipSpec::preset(class);
        for (name, prev_supported) in [("vgg16", false), ("resnet18", false), ("squeezenet", true)]
        {
            let net = match name {
                "vgg16" => zoo::vgg16(),
                "resnet18" => zoo::resnet18(),
                _ => zoo::squeezenet(),
            };
            let seq = decompose(&net, &chip);
            let validity = ValidityMap::build(&seq, &chip);
            let fits_whole = validity.max_end(0) == validity.len();
            // ResNet18 (5.57 MiB) exceeds even Chip-L (4.5 MiB).
            assert_eq!(
                fits_whole, prev_supported,
                "{name} on Chip-{class}: fits-whole = {fits_whole}"
            );
            // COMPASS compiles everything.
            Compiler::new(chip.clone())
                .compile(&net, &options(Strategy::Greedy, 1))
                .unwrap_or_else(|e| panic!("{name} on {class}: {e}"));
        }
    }
}

#[test]
fn fig5_validity_shrinks_with_model_size_and_chip_size() {
    let frac = |net: &pim_model::Network, chip: &ChipSpec| {
        let seq = decompose(net, chip);
        ValidityMap::build(&seq, chip).valid_fraction()
    };
    let chip_s = ChipSpec::chip_s();
    let chip_l = ChipSpec::chip_l();
    let squeeze = zoo::squeezenet();
    let resnet = zoo::resnet18();
    let vgg = zoo::vgg16();
    // Rows of Fig. 5: fixing the chip, bigger models are less valid.
    assert!(frac(&squeeze, &chip_s) >= frac(&resnet, &chip_s));
    assert!(frac(&resnet, &chip_s) > frac(&vgg, &chip_s));
    // Columns: fixing the model, smaller chips are less valid.
    assert!(frac(&resnet, &chip_l) > frac(&resnet, &chip_s));
    assert!(frac(&vgg, &chip_l) > frac(&vgg, &chip_s));
}

#[test]
fn fig7_greedy_first_partition_dominates_resnet18_m() {
    let chip = ChipSpec::chip_m();
    let compiled = Compiler::new(chip.clone())
        .compile(&zoo::resnet18(), &options(Strategy::Greedy, 16))
        .expect("compiles");
    let report = ChipSimulator::new(chip)
        .with_dram_replay(false)
        .run(compiled.programs(), 16)
        .expect("simulates");
    let p0 = report.partitions[0].latency_ns();
    let frac = p0 / report.makespan_ns;
    // Paper: >95%; our pipeline model lands lower but P0 must still
    // dominate by far.
    assert!(frac > 0.5, "greedy P0 should dominate, got {:.1}%", frac * 100.0);
}

#[test]
fn fig9_replacement_amortizes_with_batch() {
    let chip = ChipSpec::chip_m();
    let net = zoo::resnet18();
    let ratio = |batch| {
        let compiled = Compiler::new(chip.clone())
            .compile(&net, &options(Strategy::Compass, batch))
            .expect("compiles");
        let report = ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(compiled.programs(), batch)
            .expect("simulates");
        1.0 + report.energy.replacement_ratio()
    };
    let r1 = ratio(1);
    let r16 = ratio(16);
    // Paper: M-1 = 3.90x, M-16 = 1.20x.
    assert!(r1 > 2.5, "batch-1 replacement should dominate: {r1:.2}");
    assert!(r16 < 1.6, "batch-16 should amortize: {r16:.2}");
    assert!(r1 > 2.0 * r16);
}

#[test]
fn fig8_compass_wins_edp_against_layerwise() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let edp = |strategy| {
        let compiled =
            Compiler::new(chip.clone()).compile(&net, &options(strategy, 8)).expect("compiles");
        ChipSimulator::new(chip.clone())
            .with_dram_replay(false)
            .run(compiled.programs(), 8)
            .expect("simulates")
            .edp_per_inference()
    };
    let compass = edp(Strategy::Compass);
    let layerwise = edp(Strategy::Layerwise);
    assert!(
        compass < layerwise,
        "COMPASS EDP {compass:.1} must beat layerwise {layerwise:.1} (paper: 2.08x)"
    );
}

#[test]
fn fig10_ga_converges_and_tracks_partition_counts() {
    let chip = ChipSpec::chip_m();
    let compiled = Compiler::new(chip)
        .compile(&zoo::resnet18(), &options(Strategy::Compass, 16))
        .expect("compiles");
    let trace = compiled.ga_trace().expect("GA trace present");
    assert!(trace.generations.len() >= 2);
    let first = trace.generations.first().unwrap().best_pgf;
    let last = trace.generations.last().unwrap().best_pgf;
    assert!(last <= first, "best fitness must improve or hold: {first} -> {last}");
    for g in &trace.generations {
        for i in &g.individuals {
            assert!(i.partitions >= 1);
            assert!(i.pgf.is_finite() && i.pgf > 0.0);
        }
    }
}
