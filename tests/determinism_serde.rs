//! Determinism and serialization guarantees.

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::ChipSpec;
use pim_model::{zoo, Network};
use pim_sim::ChipSimulator;

#[test]
fn identical_seeds_identical_results_across_full_pipeline() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let run = || {
        let compiled = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new().with_batch_size(4).with_ga(GaParams::fast()).with_seed(123),
            )
            .expect("compiles");
        let report =
            ChipSimulator::new(chip.clone()).run(compiled.programs(), 4).expect("simulates");
        (compiled.group().clone(), report.makespan_ns, report.energy.total_nj())
    };
    let (g1, t1, e1) = run();
    let (g2, t2, e2) = run();
    assert_eq!(g1, g2);
    assert_eq!(t1, t2);
    assert_eq!(e1, e2);
}

#[test]
fn different_seeds_explore_different_groups() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let run = |seed| {
        Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new().with_batch_size(4).with_ga(GaParams::fast()).with_seed(seed),
            )
            .expect("compiles")
            .group()
            .clone()
    };
    // Not guaranteed in general, but with a large search space two
    // seeds converging to the same group would indicate the RNG is
    // not actually wired through.
    let groups: Vec<_> = (0..4).map(run).collect();
    let all_same = groups.windows(2).all(|w| w[0] == w[1]);
    assert!(!all_same, "four different seeds should not all agree");
}

#[test]
fn network_serde_round_trip() {
    for net in [zoo::squeezenet(), zoo::tiny_resnet()] {
        let json = serde_json::to_string(&net).expect("serializes");
        let back: Network = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(net, back);
    }
}

#[test]
fn chip_and_report_serde_round_trip() {
    let chip = ChipSpec::chip_m();
    let json = serde_json::to_string(&chip).expect("chip serializes");
    let back: ChipSpec = serde_json::from_str(&json).expect("chip deserializes");
    assert_eq!(chip, back);

    let compiled = Compiler::new(chip.clone())
        .compile(
            &zoo::tiny_cnn(),
            &CompileOptions::new().with_strategy(Strategy::Greedy).with_batch_size(2),
        )
        .expect("compiles");
    let report = ChipSimulator::new(chip).run(compiled.programs(), 2).expect("simulates");
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: pim_sim::SimReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(report, back);
}

#[test]
fn programs_serde_round_trip() {
    let chip = ChipSpec::chip_s();
    let compiled = Compiler::new(chip)
        .compile(
            &zoo::tiny_cnn(),
            &CompileOptions::new().with_strategy(Strategy::Layerwise).with_batch_size(2),
        )
        .expect("compiles");
    for program in compiled.programs() {
        let json = serde_json::to_string(program).expect("program serializes");
        let back: pim_isa::ChipProgram = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(program, &back);
    }
}
