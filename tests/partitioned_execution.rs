//! Semantic validation of partitioning: executing the network
//! partition-by-partition — with intermediate tensors round-tripping
//! through a simulated global memory, exactly as the compiled schedule
//! does — must compute the same function as executing the whole graph.
//!
//! This checks the entry/exit marking of `compass::plan` end to end:
//! if a partition failed to store a tensor that a later partition
//! needs (or to load one it consumes), the partitioned evaluation
//! would either miss a value or produce different numbers.

use compass::plan::GroupPlan;
use compass::{decompose, PartitionGroup, ValidityMap};
use pim_arch::ChipSpec;
use pim_model::exec::{execute, Tensor, Weights};
use pim_model::{LayerKind, Network, NodeId, TensorShape};
use std::collections::BTreeMap;

/// Executes the plans partition-by-partition. `global` plays the role
/// of DRAM: only tensors stored by earlier partitions (or the network
/// input) may be consumed across partition boundaries.
///
/// Only meaningful when every weighted node is whole in one partition
/// (slice-level partial outputs are byte-accounted in the plans but
/// not value-representable here), so callers use node-aligned cuts.
fn execute_partitioned(
    network: &Network,
    plans: &GroupPlan,
    weights: &Weights,
    input: &Tensor,
    whole_outputs: &[Tensor],
) -> Vec<(NodeId, Tensor)> {
    let input_id = network.input_nodes().next().expect("has input").id;
    let mut global: BTreeMap<NodeId, Tensor> = BTreeMap::new();
    global.insert(input_id, input.clone());
    let mut stored_outputs = Vec::new();

    for plan in plans.plans() {
        // The nodes this partition computes, in topological order.
        let mut local_ids: Vec<NodeId> =
            plan.slices.iter().map(|s| s.node).chain(plan.attached.iter().copied()).collect();
        local_ids.sort_unstable();
        let mut local: BTreeMap<NodeId, Tensor> = BTreeMap::new();

        // Entry loads from "DRAM".
        for t in &plan.entries {
            let value = global
                .get(&t.node)
                .unwrap_or_else(|| {
                    panic!("partition {} loads {} which was never stored", plan.index, t.node)
                })
                .clone();
            local.insert(t.node, value);
        }

        // Compute locally (values for inputs must be present either
        // locally or via entries).
        for &id in &local_ids {
            let node = network.node(id);
            let fetch = |input_id: &NodeId| -> Tensor {
                local
                    .get(input_id)
                    .unwrap_or_else(|| {
                        panic!(
                            "partition {}: node {} needs {} but it is neither local nor loaded",
                            plan.index, node.name, input_id
                        )
                    })
                    .clone()
            };
            // Evaluate this single node by building a micro-network?
            // Simpler: reuse the whole-graph outputs for weighted
            // evaluation via the reference `execute`, but recompute
            // here from fetched inputs to keep independence. We call
            // the per-node math through a 2-node network.
            let inputs: Vec<Tensor> = node.inputs.iter().map(fetch).collect();
            let value = eval_single(network, id, &inputs, weights);
            local.insert(id, value);
        }

        // Exit stores back to "DRAM".
        for t in &plan.exits {
            let value = local
                .get(&t.node)
                .unwrap_or_else(|| {
                    panic!("partition {} exits uncomputed node {}", plan.index, t.node)
                })
                .clone();
            // Cross-check against the whole-graph execution.
            assert_eq!(
                value.data(),
                whole_outputs[t.node.index()].data(),
                "partition {} stored a different value for {}",
                plan.index,
                network.node(t.node).name
            );
            global.insert(t.node, value.clone());
            stored_outputs.push((t.node, value));
        }
    }
    stored_outputs
}

/// Evaluates one node given its input tensors, by wrapping it in a
/// minimal network and running the reference executor.
fn eval_single(network: &Network, id: NodeId, inputs: &[Tensor], weights: &Weights) -> Tensor {
    use pim_model::NetworkBuilder;
    let node = network.node(id);
    let mut b = NetworkBuilder::new("single");
    // Feed each input through a synthetic Input node. Multi-input
    // nodes (Add/Concat) take them in order.
    let input_ids: Vec<_> = inputs.iter().map(|t| b.input(t.shape())).collect();
    let out = b.add_node("n", node.kind, input_ids.clone());
    let mini = match b.build() {
        Ok(net) => net,
        Err(e) => panic!("single-node net for {}: {e}", node.name),
    };
    let mut mini_weights = Weights::new();
    if node.kind.is_weighted() {
        mini_weights
            .set(&mini, out, weights.get(id).expect("weights present").to_vec())
            .expect("weight shapes match");
    }
    // `execute` supports exactly one Input node; emulate multi-input
    // by monkey-running: for >1 inputs, evaluate manually via a
    // concat-free path.
    if inputs.len() == 1 {
        let outs = execute(&mini, &mini_weights, &inputs[0]).expect("single-node exec");
        outs.last().expect("has output").clone()
    } else {
        // Add / Concat: compute directly.
        match node.kind {
            LayerKind::Add => {
                let shape = inputs[0].shape();
                Tensor::from_fn(shape, |c, h, w| inputs[0].at(c, h, w) + inputs[1].at(c, h, w))
            }
            LayerKind::Concat => {
                let mut data = Vec::new();
                let (h, w) = (inputs[0].shape().height, inputs[0].shape().width);
                let channels: usize = inputs.iter().map(|t| t.shape().channels).sum();
                for t in inputs {
                    data.extend_from_slice(t.data());
                }
                Tensor::new(TensorShape::new(channels, h, w), data).expect("concat shape")
            }
            _ => panic!("unexpected multi-input kind {:?}", node.kind),
        }
    }
}

/// Node-boundary cuts (every weighted node whole in one partition),
/// greedily grouped under the validity map.
fn node_aligned_cuts(
    seq: &compass::UnitSequence,
    validity: &ValidityMap,
    nodes_per_partition: usize,
) -> PartitionGroup {
    let boundaries: Vec<usize> = seq.node_ranges().map(|(_, r)| r.end).collect();
    let mut cuts = Vec::new();
    let mut start = 0usize;
    let mut since = 0usize;
    for &b in &boundaries[..boundaries.len() - 1] {
        since += 1;
        let next_boundary_fits = validity.is_valid(start, b);
        if since >= nodes_per_partition || !next_boundary_fits {
            cuts.push(b);
            start = b;
            since = 0;
        }
    }
    PartitionGroup::from_cuts(cuts, validity).expect("node-aligned grouping is valid")
}

fn check_network(network: &Network, chip: &ChipSpec, nodes_per_partition: usize, seed: u64) {
    let seq = decompose(network, chip);
    let validity = ValidityMap::build(&seq, chip);
    let group = node_aligned_cuts(&seq, &validity, nodes_per_partition);
    let plans = GroupPlan::build(network, &seq, &group);
    // Ensure the premise: no partial slices.
    for p in plans.plans() {
        for s in &p.slices {
            assert!(
                (s.fraction - 1.0).abs() < 1e-12,
                "test premise: node-aligned cuts keep slices whole"
            );
        }
    }
    let weights = Weights::synthetic(network, seed);
    let shape = match network.input_nodes().next().unwrap().kind {
        LayerKind::Input { shape } => shape,
        _ => unreachable!(),
    };
    let input = Tensor::from_fn(shape, |c, h, w| ((c * 13 + h * 5 + w * 3) % 11) as f32 / 11.0);
    let whole = execute(network, &weights, &input).expect("whole-graph execution");
    let stored = execute_partitioned(network, &plans, &weights, &input, &whole);

    // The network output must be among the stored tensors and match.
    let output = network.output_nodes().next().unwrap();
    let found = stored.iter().find(|(id, _)| *id == output.id);
    let (_, value) = found.expect("network output stored to DRAM");
    assert_eq!(value.data(), whole[output.id.index()].data());
}

#[test]
fn partitioned_equals_whole_for_plain_cnn() {
    let chip = ChipSpec::chip_s();
    check_network(&pim_model::zoo::tiny_cnn(), &chip, 1, 3);
    check_network(&pim_model::zoo::tiny_cnn(), &chip, 2, 3);
}

#[test]
fn partitioned_equals_whole_for_residual_network() {
    // Residual connections crossing partition boundaries exercise
    // multi-entry partitions; values must still round-trip through
    // the simulated DRAM correctly.
    let chip = ChipSpec::chip_s();
    for nodes_per_partition in [1usize, 2, 3] {
        check_network(&pim_model::zoo::tiny_resnet(), &chip, nodes_per_partition, 7);
    }
}

#[test]
fn partitioned_equals_whole_for_concat_network() {
    // A fire-module-style concat net.
    use pim_model::NetworkBuilder;
    let mut b = NetworkBuilder::new("mini_fire");
    let input = b.input(TensorShape::new(3, 16, 16));
    let squeeze = b.conv2d("squeeze", input, 4, 1, 1, 0);
    let sr = b.relu("sr", squeeze);
    let e1 = b.conv2d("e1", sr, 6, 1, 1, 0);
    let e3 = b.conv2d("e3", sr, 6, 3, 1, 1);
    let cat = b.concat("cat", vec![e1, e3]);
    let tail = b.conv2d("tail", cat, 8, 3, 1, 1);
    let gap = b.global_avg_pool("gap", tail);
    let fc = b.linear("fc", gap, 4);
    let _ = b.softmax("prob", fc);
    let net = b.build().unwrap();
    let chip = ChipSpec::chip_s();
    for nodes_per_partition in [1usize, 2] {
        check_network(&net, &chip, nodes_per_partition, 11);
    }
}
