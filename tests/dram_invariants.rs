//! Property-style invariants of `MultiChannelDram` interleaving,
//! implemented as deterministic seeded sweeps (the offline environment
//! has no proptest), like `tests/invariants.rs`:
//!
//! 1. every issued request is serviced exactly once (bytes conserve
//!    piece-by-piece),
//! 2. per-channel service order follows issue order (non-decreasing
//!    service windows on the immediate path),
//! 3. channel counts 1/2/4 conserve total bytes.

use pim_dram::{ChannelStats, DramConfig, DramError, MultiChannelDram, Request, RequestKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;
const CHANNEL_COUNTS: [usize; 3] = [1, 2, 4];

/// A random mixed request stream: bulk sequential runs (weight-like)
/// interleaved with scattered small transfers (activation-like).
fn random_stream(rng: &mut StdRng) -> Vec<Request> {
    let n = rng.gen_range(4usize..40);
    let mut issue_ns = 0.0f64;
    let mut seq_addr = 0u64;
    (0..n)
        .map(|_| {
            issue_ns += rng.gen_range(0u64..500) as f64;
            let kind = if rng.gen_bool(0.3) { RequestKind::Write } else { RequestKind::Read };
            if rng.gen_bool(0.5) {
                let bytes = *[32usize, 256, 4096, 64 << 10].get(rng.gen_range(0usize..4)).unwrap();
                let addr = seq_addr;
                seq_addr += bytes as u64;
                Request::at_ns(issue_ns, addr, kind, bytes)
            } else {
                let addr = rng.gen_range(0u64..(256 << 20)) & !31;
                Request::at_ns(issue_ns, addr, kind, rng.gen_range(1usize..2048))
            }
        })
        .collect()
}

#[test]
fn every_request_is_serviced_exactly_once() {
    let mut rng = StdRng::seed_from_u64(0xD0);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng);
        for channels in CHANNEL_COUNTS {
            let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, 4096).unwrap();
            let mut expected_pieces = 0usize;
            for req in &stream {
                // A block covers ceil span over interleave-aligned
                // stripes; count what enqueue must split it into.
                let il = mem.interleave_bytes() as u64;
                let first = req.addr / il;
                let last = (req.addr + req.bytes as u64 - 1) / il;
                expected_pieces += (last - first + 1) as usize;
                mem.enqueue(*req);
            }
            let done = mem.run_to_completion();
            assert_eq!(done.len(), expected_pieces, "each stripe serviced exactly once");
            let total: usize = done.iter().map(|c| c.bytes).sum();
            let issued: usize = stream.iter().map(|r| r.bytes).sum();
            assert_eq!(total, issued, "no stripe lost or duplicated ({channels} channels)");
            for c in &done {
                assert!(c.finish_ns >= c.start_ns);
                assert!(c.start_ns >= c.issue_ns);
            }
        }
    }
}

#[test]
fn immediate_service_preserves_per_channel_order() {
    // The closed-loop path serves accesses in call order; service
    // windows must be non-decreasing and each access must land at or
    // after its issue time.
    let mut rng = StdRng::seed_from_u64(0xD1);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng);
        for channels in CHANNEL_COUNTS {
            let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, 4096).unwrap();
            let mut served_bytes = 0usize;
            for req in &stream {
                // The channels this request's stripes route to (same
                // interleave arithmetic the router uses).
                let il = mem.interleave_bytes() as u64;
                let touched: Vec<usize> = (req.addr / il..=(req.addr + req.bytes as u64 - 1) / il)
                    .map(|stripe| (stripe % channels as u64) as usize)
                    .collect();
                let before = mem.channel_stats();
                let access = mem.service(*req);
                let after = mem.channel_stats();

                assert!(access.start_ns >= req.issue_ns - 1e-9, "service cannot precede issue");
                assert!(access.finish_ns >= access.start_ns);
                assert_eq!(access.stripes, touched.len());
                // Call order is service order: each touched channel's
                // clock only moves forward, and this access finishes
                // exactly when its slowest touched channel does — a
                // reordering (or misrouting) implementation would
                // leave an untouched channel modified or report a
                // finish that is not the frontier it just advanced.
                let mut touched_frontier = 0.0f64;
                for ch in 0..channels {
                    if touched.contains(&ch) {
                        assert!(
                            after[ch].makespan_ns > before[ch].makespan_ns,
                            "serving on channel {ch} must advance its clock"
                        );
                        touched_frontier = touched_frontier.max(after[ch].makespan_ns);
                    } else {
                        assert_eq!(
                            after[ch], before[ch],
                            "channel {ch} was not addressed by this access"
                        );
                    }
                }
                assert!(
                    (access.finish_ns - touched_frontier).abs() < 1e-9,
                    "access must finish with the slowest channel it touched"
                );
                served_bytes += req.bytes;
            }
            let stats = mem.channel_stats();
            assert_eq!(stats.len(), channels);
            let counted: u64 = stats.iter().map(ChannelStats::total_bytes).sum();
            assert_eq!(counted as usize, served_bytes);
            // The aggregate makespan is the slowest channel.
            let slowest = stats.iter().map(|s| s.makespan_ns).fold(0.0, f64::max);
            assert!((mem.makespan_ns() - slowest).abs() < 1e-9);
        }
    }
}

#[test]
fn channel_counts_conserve_total_bytes() {
    let mut rng = StdRng::seed_from_u64(0xD2);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng);
        let issued: u64 = stream.iter().map(|r| r.bytes as u64).sum();
        let mut makespans = Vec::new();
        for channels in CHANNEL_COUNTS {
            let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, 4096).unwrap();
            for req in &stream {
                mem.enqueue(*req);
            }
            mem.run_to_completion();
            let stats = mem.channel_stats();
            let total: u64 = stats.iter().map(ChannelStats::total_bytes).sum();
            assert_eq!(total, issued, "{channels} channels must move every byte exactly once");
            let reads: u64 = stats.iter().map(|s| s.read_bytes).sum();
            let expected_reads: u64 =
                stream.iter().filter(|r| r.kind == RequestKind::Read).map(|r| r.bytes as u64).sum();
            assert_eq!(reads, expected_reads, "read/write split is routing-invariant");
            makespans.push(mem.makespan_ns());
        }
        // More channels never make the same stream slower.
        for pair in makespans.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-6, "extra channels slowed the stream: {makespans:?}");
        }
    }
}

#[test]
fn fr_fcfs_batches_conserve_bytes_and_stay_deterministic() {
    // The reorder path (`service_batch`) may overtake arrival order
    // for row hits, but it must still serve every stripe exactly
    // once, never before its issue time, and bit-identically run to
    // run.
    let mut rng = StdRng::seed_from_u64(0xFCF5);
    for _ in 0..CASES {
        let stream = random_stream(&mut rng);
        // Same-instant batch: strip the issue stagger, as the chip
        // simulator's drain latch does.
        let batch: Vec<Request> =
            stream.iter().map(|r| Request::at_ns(0.0, r.addr, r.kind, r.bytes)).collect();
        for channels in CHANNEL_COUNTS {
            let run = || {
                let mut mem =
                    MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, 4096).unwrap();
                let accesses = mem.service_batch(&batch);
                (accesses, mem.channel_stats())
            };
            let (accesses, stats) = run();
            assert_eq!(run(), (accesses.clone(), stats.clone()), "reorder must be deterministic");
            assert_eq!(accesses.len(), batch.len());
            for (req, access) in batch.iter().zip(&accesses) {
                assert!(access.start_ns >= req.issue_ns, "no service before issue");
                assert!(access.finish_ns >= access.start_ns);
                assert!(access.stripes > 0 || req.bytes == 0);
            }
            let issued: u64 = batch.iter().map(|r| r.bytes as u64).sum();
            let served: u64 = stats.iter().map(ChannelStats::total_bytes).sum();
            assert_eq!(served, issued, "reorder must conserve bytes ({channels} channels)");
        }
    }
}

#[test]
fn zero_channels_is_a_typed_error() {
    assert_eq!(
        MultiChannelDram::new(DramConfig::lpddr3_1600(), 0, 4096).unwrap_err(),
        DramError::NoChannels
    );
}
