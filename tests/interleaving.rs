//! Stage-scheduler invariants.
//!
//! Pins the dependency-driven dispatcher's contract: barrier mode
//! stays byte-identical to the lock-step executor (the golden
//! fixtures pin that separately), `ScheduleMode::Interleaved` strictly
//! reduces the simulated makespan on a multi-partition multi-batch
//! workload with disjoint crossbar groups, degenerate shapes
//! (single-partition chips, zero-round runs, claim conflicts) behave,
//! interleaved schedules are deterministic per seed, and a fan-out
//! system (one producer feeding two consumers) simulates
//! deterministically with the analytic system estimate within a
//! bounded factor of the simulated cycles.

use compass::scheduler::{schedule_group, SchedulerOptions};
use compass::{
    estimate_system_makespan, plan_system, CompileOptions, CompiledModel, Compiler, GaParams,
    Strategy, SystemChipPlan, SystemSchedule, SystemStrategy, SystemTarget,
};
use compass_bench::system_loads;
use pim_arch::{ChipSpec, ScheduleMode, TimingMode, Topology};
use pim_isa::{ChipProgram, CoreId, Instruction as I};
use pim_model::zoo;
use pim_sim::{ChipSimulator, SimReport};

fn compile(net: &pim_model::Network, chip: &ChipSpec, batch: usize, seed: u64) -> CompiledModel {
    Compiler::new(chip.clone())
        .compile(
            net,
            &CompileOptions::new()
                .with_strategy(Strategy::Greedy)
                .with_batch_size(batch)
                .with_ga(GaParams::fast())
                .with_seed(seed),
        )
        .expect("compiles")
}

/// `waves` MVM waves on cores `[from, to)` of a `total`-core chip.
fn mvm_on_cores(from: usize, to: usize, total: usize, waves: usize) -> ChipProgram {
    let mut program = ChipProgram::new(total);
    for c in from..to {
        program.core_mut(CoreId(c)).push(I::Mvmul { waves, activations: 64, node: 0 });
    }
    program
}

#[test]
fn interleaving_strictly_reduces_makespan_on_disjoint_stages() {
    // The acceptance workload: >= 2 partitions, >= 4 batches. The two
    // partitions own disjoint crossbar groups, so batch b+1's
    // partition 0 overlaps batch b's partition 1 and the steady state
    // is paced by one stage instead of two.
    let chip = ChipSpec::chip_s();
    let programs = [mvm_on_cores(0, 8, chip.cores, 400), mvm_on_cores(8, 16, chip.cores, 400)];
    let rounds = 4;
    let run = |schedule: ScheduleMode| {
        ChipSimulator::new(chip.clone())
            .with_schedule_mode(schedule)
            .run_batches(&programs, rounds, 1)
            .expect("simulates")
    };
    let barrier = run(ScheduleMode::Barrier);
    let interleaved = run(ScheduleMode::Interleaved);
    assert!(
        interleaved.makespan_ns < barrier.makespan_ns,
        "interleaving ({} ns) must strictly beat the barrier schedule ({} ns)",
        interleaved.makespan_ns,
        barrier.makespan_ns
    );
    // With fully disjoint equal stages the pipeline is tight: 8 stage
    // slots serialize under barriers, 5 under interleaving.
    let stage_ns = 400.0 * chip.crossbar.mvm_latency_ns;
    assert!((barrier.makespan_ns - 8.0 * stage_ns).abs() < 1e-6);
    assert!((interleaved.makespan_ns - 5.0 * stage_ns).abs() < 1e-6);
    // The same work was simulated either way.
    assert_eq!(interleaved.partitions.len(), barrier.partitions.len());
    assert_eq!(interleaved.dram_trace, barrier.dram_trace);
}

#[test]
fn interleaving_never_slows_a_compiled_workload() {
    // Partitions compiled for barrier mode share cores (every packing
    // fills from core 0), so claims mostly serialize them — but
    // interleaving must never be slower than the barrier schedule.
    let chip = ChipSpec::chip_s();
    let net = zoo::squeezenet();
    let batch = 2;
    let compiled = compile(&net, &chip, batch, 7);
    let rounds = 4;
    let run = |schedule: ScheduleMode| {
        ChipSimulator::new(chip.clone())
            .with_schedule_mode(schedule)
            .run_batches(compiled.programs(), rounds, batch)
            .expect("simulates")
    };
    let barrier = run(ScheduleMode::Barrier);
    let interleaved = run(ScheduleMode::Interleaved);
    assert!(interleaved.makespan_ns <= barrier.makespan_ns + 1e-9);
    assert_eq!(interleaved.partitions.len(), compiled.programs().len() * rounds);
}

#[test]
fn single_partition_interleaving_is_a_noop() {
    // One partition per batch: the cross-batch resource-reuse edge
    // serializes everything, so the report must be byte-identical to
    // barrier mode.
    let chip = ChipSpec::chip_s();
    let net = zoo::tiny_cnn();
    let compiled = compile(&net, &chip, 2, 9);
    let single = &compiled.programs()[..1];
    let run = |schedule: ScheduleMode| {
        let report = ChipSimulator::new(chip.clone())
            .with_schedule_mode(schedule)
            .run_batches(single, 3, 2)
            .expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(
        run(ScheduleMode::Barrier),
        run(ScheduleMode::Interleaved),
        "single-partition chips must not notice the scheduler"
    );
}

#[test]
fn zero_round_runs_clamp_to_one_round_in_both_modes() {
    let chip = ChipSpec::chip_s();
    let programs = [mvm_on_cores(0, 4, chip.cores, 10), mvm_on_cores(4, 8, chip.cores, 10)];
    for schedule in ScheduleMode::ALL {
        let zero = ChipSimulator::new(chip.clone())
            .with_schedule_mode(schedule)
            .run_batches(&programs, 0, 1)
            .expect("zero-round runs complete");
        let one = ChipSimulator::new(chip.clone())
            .with_schedule_mode(schedule)
            .run_batches(&programs, 1, 1)
            .expect("simulates");
        assert_eq!(zero, one, "{schedule}: zero rounds clamps to one");
        assert_eq!(zero.partitions.len(), 2);
    }
}

#[test]
fn claim_conflicts_serialize_to_the_barrier_makespan() {
    // Every partition touches core 0: the exclusive crossbar-group
    // claim forces round-major order, so interleaving changes nothing.
    let chip = ChipSpec::chip_s();
    let programs = [mvm_on_cores(0, 6, chip.cores, 123), mvm_on_cores(0, 12, chip.cores, 77)];
    let run = |schedule: ScheduleMode| {
        ChipSimulator::new(chip.clone())
            .with_schedule_mode(schedule)
            .run_batches(&programs, 5, 1)
            .expect("simulates")
    };
    let barrier = run(ScheduleMode::Barrier);
    let interleaved = run(ScheduleMode::Interleaved);
    assert!(
        (interleaved.makespan_ns - barrier.makespan_ns).abs() < 1e-9,
        "conflicting claims must serialize: {} vs {}",
        interleaved.makespan_ns,
        barrier.makespan_ns
    );
}

#[test]
fn interleave_aware_packing_overlaps_compiled_stages() {
    // Scheduling with `SchedulerOptions::schedule = Interleaved`
    // shifts alternating partitions onto disjoint crossbar groups
    // when the widest one fits half the chip, so a *compiled*
    // workload — not just the hand-built disjoint programs above —
    // genuinely overlaps under the interleaved executor.
    use compass::plan::GroupPlan;
    use compass::replication::optimize_group;
    use compass::{decompose, PartitionGroup, ValidityMap};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let chip = ChipSpec::chip_l();
    let net = zoo::tiny_cnn();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    let batch = 4;
    let schedule = |plans: &GroupPlan, mode: ScheduleMode| {
        schedule_group(
            &net,
            plans.plans(),
            &chip,
            &SchedulerOptions { batch, chunks_per_sample: 2, schedule: mode },
        )
    };
    let touched = |program: &ChipProgram| -> Vec<usize> {
        (0..program.cores()).filter(|&c| program.core(CoreId(c)).iter().next().is_some()).collect()
    };
    // Find a multi-partition group the scheduler can actually spread:
    // adjacent interleaved programs touch disjoint core sets.
    let (plans, programs) = (0..64u64)
        .find_map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let group = PartitionGroup::random(&mut rng, &validity);
            let mut plans = GroupPlan::build(&net, &seq, &group);
            optimize_group(&mut plans, &chip);
            let programs = schedule(&plans, ScheduleMode::Interleaved);
            let disjoint = programs.len() > 1
                && programs.windows(2).all(|pair| {
                    let a = touched(&pair[0]);
                    touched(&pair[1]).iter().all(|c| !a.contains(c))
                });
            disjoint.then_some((plans, programs))
        })
        .expect("some seed yields a half-chip multi-partition group");
    let rounds = 4;
    let run = |programs: &[ChipProgram], mode: ScheduleMode| {
        ChipSimulator::new(chip.clone())
            .with_schedule_mode(mode)
            .run_batches(programs, rounds, batch)
            .expect("simulates")
    };
    let barrier = run(&schedule(&plans, ScheduleMode::Barrier), ScheduleMode::Barrier);
    let interleaved = run(&programs, ScheduleMode::Interleaved);
    assert!(
        interleaved.makespan_ns < barrier.makespan_ns,
        "disjoint compiled stages must overlap: {} vs {} ns",
        interleaved.makespan_ns,
        barrier.makespan_ns
    );
    assert_eq!(interleaved.partitions.len(), barrier.partitions.len());
}

#[test]
fn interleaved_schedules_are_deterministic_per_seed() {
    let chip = ChipSpec::chip_s();
    let net = zoo::squeezenet();
    let batch = 4;
    for seed in [3u64, 42] {
        let compiled = compile(&net, &chip, batch, seed);
        let run = || {
            let report = ChipSimulator::new(chip.clone())
                .with_schedule_mode(ScheduleMode::Interleaved)
                .run_batches(compiled.programs(), 4, batch)
                .expect("simulates");
            serde_json::to_string(&report).expect("serializes")
        };
        assert_eq!(run(), run(), "seed {seed}: interleaved reports must be byte-identical");
    }
}

/// Builds a 1-producer / 2-consumer fan-out schedule by hand: the
/// front half of the compiled partitions on chip 0 at the full batch,
/// the back half replicated on chips 1 and 2 at half the batch each.
fn fan_out_schedule(
    net: &pim_model::Network,
    chip: &ChipSpec,
    compiled: &CompiledModel,
    batch: usize,
) -> SystemSchedule {
    let plans = compiled.partitions();
    assert!(plans.len() >= 2, "needs at least two partitions to fan out");
    let m = plans.len() / 2;
    let entry = plans[m].entry_bytes_per_sample();
    let shard = batch / 2;
    let schedule_at = |range: std::ops::Range<usize>, shard: usize| {
        schedule_group(
            net,
            &plans[range],
            chip,
            &SchedulerOptions { batch: shard, chunks_per_sample: 4, ..Default::default() },
        )
    };
    SystemSchedule {
        topology: Topology::fully_connected(3),
        strategy: SystemStrategy::FanOut,
        chips: vec![
            SystemChipPlan {
                chip: 0,
                programs: schedule_at(0..m, batch),
                partition_range: (0, m),
                samples: batch,
                handoffs: vec![(1, entry * shard), (2, entry * (batch - shard))],
            },
            SystemChipPlan {
                chip: 1,
                programs: schedule_at(m..plans.len(), shard),
                partition_range: (m, plans.len()),
                samples: shard,
                handoffs: Vec::new(),
            },
            SystemChipPlan {
                chip: 2,
                programs: schedule_at(m..plans.len(), batch - shard),
                partition_range: (m, plans.len()),
                samples: batch - shard,
                handoffs: Vec::new(),
            },
        ],
        samples_per_round: batch,
    }
}

#[test]
fn fan_out_simulates_deterministically_and_matches_the_estimate() {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let batch = 4;
    let rounds = 4;
    let compiled = compile(&net, &chip, batch, 5);
    let schedule = fan_out_schedule(&net, &chip, &compiled, batch);
    assert_eq!(schedule.max_fan_out(), 2, "one producer feeds two consumers");
    for schedule_mode in ScheduleMode::ALL {
        let run = || -> SimReport {
            let loads = system_loads(&schedule);
            pim_sim::SystemSimulator::new(chip.clone(), schedule.topology.clone())
                .with_schedule_mode(schedule_mode)
                .run(&loads, rounds, schedule.samples_per_round)
                .expect("simulates")
        };
        let report = run();
        // Deterministic per seed: bit-identical on a re-run.
        let again = serde_json::to_string(&run()).expect("serializes");
        assert_eq!(serde_json::to_string(&report).unwrap(), again, "{schedule_mode}");
        // Every chip completed every round; both consumers were fed.
        let chips = report.chips.as_ref().expect("multi-chip summary");
        assert!(chips.iter().all(|c| c.rounds == rounds));
        assert!(chips[1].handoff_wait_ns > 0.0);
        assert!(chips[2].handoff_wait_ns > 0.0);
        // The analytic system estimate lands within a bounded factor
        // of the simulated cycles (it is a model, not the simulator).
        let predicted =
            estimate_system_makespan(&schedule, compiled.estimate(), rounds, schedule_mode);
        let ratio = report.makespan_ns / predicted;
        assert!(
            (0.2..5.0).contains(&ratio),
            "{schedule_mode}: simulated {} vs predicted {predicted} (ratio {ratio})",
            report.makespan_ns
        );
    }
}

#[test]
fn planned_fan_out_round_trips_through_the_simulator() {
    // plan_system's own fan-out allocation must produce a runnable,
    // deterministic system too (whatever replica shape it chooses).
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let batch = 4;
    let compiled = compile(&net, &chip, batch, 3);
    let target = SystemTarget::new(Topology::fully_connected(3), SystemStrategy::FanOut);
    let schedule = plan_system(&net, &compiled, &chip, &target, batch, 4).expect("plans");
    let samples: usize = schedule.chips.iter().map(|c| c.samples).sum();
    assert!(samples >= batch, "every sample lands on some chip");
    let run = || {
        let loads = system_loads(&schedule);
        let report = pim_sim::SystemSimulator::new(chip.clone(), schedule.topology.clone())
            .with_timing_mode(TimingMode::from_env())
            .run(&loads, 2, schedule.samples_per_round)
            .expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(run(), run(), "planned fan-out must simulate deterministically");
}
