//! Open-loop serving invariants.
//!
//! Pins the serving-frontend contract: a Poisson-driven ring:2 run
//! reports tail percentiles and goodput, is byte-deterministic per
//! seed, batching policies trade queueing delay against round count,
//! admission control drops overload instead of queueing unboundedly,
//! and the SLO accounting separates goodput from raw throughput.

use pim_arch::{ChipSpec, Topology};
use pim_isa::{ChipProgram, CoreId, Instruction};
use pim_sim::{
    BatchPolicy, ChipLoad, RequestTrace, ServingConfig, SimReport, SystemSimulator, TrafficModel,
    TrafficSpec,
};

fn mvm_program(cores: usize, waves: usize) -> ChipProgram {
    let mut program = ChipProgram::new(cores);
    for c in 0..4 {
        program.core_mut(CoreId(c)).push(Instruction::Mvmul { waves, activations: 64, node: 0 });
    }
    program
}

/// A 2-chip ring pipeline: chip 0 runs a stage and hands off to
/// chip 1, per round.
fn ring2_run(serving: &ServingConfig, waves: usize) -> SimReport {
    let chip = ChipSpec::chip_s();
    let stage = mvm_program(chip.cores, waves);
    let loads = [
        ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 4096),
        ChipLoad::new(std::slice::from_ref(&stage)),
    ];
    SystemSimulator::new(chip, Topology::ring(2)).run_serving(&loads, serving).expect("serves")
}

fn poisson(rate_per_s: f64, seed: u64, requests: usize) -> TrafficSpec {
    TrafficSpec::Synthetic { model: TrafficModel::Poisson { rate_per_s }, seed, requests }
}

#[test]
fn ring2_poisson_run_reports_percentiles_and_goodput() {
    let config = ServingConfig::new(poisson(2e5, 42, 40));
    let report = ring2_run(&config, 50);
    let serving = report.serving.as_ref().expect("serving section present");
    assert_eq!(serving.requests, 40);
    assert_eq!(serving.dropped, 0);
    assert_eq!(serving.rounds, 40, "immediate dispatch forms one round per request");
    assert!(serving.p50_ns > 0.0);
    assert!(serving.p50_ns <= serving.p99_ns, "percentiles are monotone");
    assert!(serving.p99_ns <= serving.p999_ns, "percentiles are monotone");
    assert!(serving.goodput_rps > 0.0);
    assert_eq!(serving.records.len(), 40);
    assert_eq!(report.batch, 40, "batch reflects the served requests");
    // The per-request timeline is causally ordered.
    for r in &serving.records {
        assert!(r.start_ns >= r.arrival_ns, "no request starts before it arrives");
        assert!(r.finish_ns > r.start_ns);
    }
    // Both chips executed every round.
    let chips = report.chips.as_ref().expect("multi-chip section");
    assert_eq!(chips[0].rounds, 40);
    assert_eq!(chips[1].rounds, 40);
}

#[test]
fn serving_is_byte_deterministic_per_seed() {
    let config = ServingConfig::new(poisson(3e5, 7, 24));
    let a = serde_json::to_string(&ring2_run(&config, 20)).unwrap();
    let b = serde_json::to_string(&ring2_run(&config, 20)).unwrap();
    assert_eq!(a, b, "same seed, same bytes");
    let other = ServingConfig::new(poisson(3e5, 8, 24));
    let c = serde_json::to_string(&ring2_run(&other, 20)).unwrap();
    assert_ne!(a, c, "a different seed reshapes the arrival stream");
}

#[test]
fn mmpp_bursts_fatten_the_tail() {
    // Same mean rate: the bursty source must queue harder at the tail
    // than the memoryless one.
    let mmpp = TrafficModel::Mmpp {
        calm_rate_per_s: 4e4,
        burst_rate_per_s: 1.2e6,
        mean_calm_s: 2e-3,
        mean_burst_s: 4e-4,
    };
    let requests = 120;
    let bursty = ServingConfig::new(TrafficSpec::Synthetic { model: mmpp, seed: 5, requests });
    let steady = ServingConfig::new(poisson(mmpp.mean_rate_per_s(), 5, requests));
    let bursty_run = ring2_run(&bursty, 100);
    let steady_run = ring2_run(&steady, 100);
    let p99 = |r: &SimReport| r.serving.as_ref().unwrap().p99_ns;
    assert!(
        p99(&bursty_run) > p99(&steady_run),
        "MMPP p99 ({} ns) must exceed Poisson p99 ({} ns) at equal mean load",
        p99(&bursty_run),
        p99(&steady_run)
    );
}

#[test]
fn max_size_batching_trades_queueing_for_rounds() {
    // Underloaded on purpose (arrivals far slower than service): the
    // immediate policy then serves each request nearly on arrival,
    // while max-size batching makes early requests wait for the batch
    // to fill — the policy's cost, isolated from backlog queueing.
    let traffic = poisson(1e5, 11, 32);
    let immediate = ring2_run(&ServingConfig::new(traffic.clone()), 10);
    let batched = ring2_run(&ServingConfig::new(traffic).with_policy(BatchPolicy::MaxSize(8)), 10);
    let imm = immediate.serving.as_ref().unwrap();
    let bat = batched.serving.as_ref().unwrap();
    assert_eq!(imm.rounds, 32);
    assert_eq!(bat.rounds, 32 / 8, "batching collapses rounds");
    assert_eq!(bat.requests, 32, "every request is still served");
    assert!(
        bat.mean_queue_ns > imm.mean_queue_ns,
        "waiting for a full batch queues longer ({} vs {} ns)",
        bat.mean_queue_ns,
        imm.mean_queue_ns
    );
}

#[test]
fn deadline_policy_bounds_the_wait_for_stragglers() {
    // Two requests: one at t=0, one far later. A pure max-size-2
    // policy holds the first hostage until the second arrives; the
    // deadline cuts a partial batch after the timeout.
    let trace = TrafficSpec::Trace(RequestTrace { arrivals_ns: vec![0.0, 5e6] });
    let hostage =
        ring2_run(&ServingConfig::new(trace.clone()).with_policy(BatchPolicy::MaxSize(2)), 10);
    let bounded = ring2_run(
        &ServingConfig::new(trace)
            .with_policy(BatchPolicy::Deadline { max_size: 2, timeout_ns: 1e4 }),
        10,
    );
    let h = hostage.serving.as_ref().unwrap();
    let b = bounded.serving.as_ref().unwrap();
    assert_eq!(h.rounds, 1, "max-size waits for the straggler");
    assert_eq!(b.rounds, 2, "the deadline flushes a partial batch");
    // The first request's latency collapses from ~5 ms to ~the
    // timeout plus service.
    assert!(h.records[0].latency_ns() > 5e6);
    assert!(
        b.records[0].latency_ns() < 1e6,
        "deadline-bounded latency was {} ns",
        b.records[0].latency_ns()
    );
}

#[test]
fn full_queues_drop_instead_of_queueing_unboundedly() {
    // A tight burst against a long service time and a 4-slot queue:
    // admission control must shed load, and the books must balance.
    let arrivals_ns: Vec<f64> = (0..32).map(|i| i as f64).collect();
    let trace = TrafficSpec::Trace(RequestTrace { arrivals_ns });
    let config = ServingConfig::new(trace).with_queue_capacity(4).with_max_inflight(1);
    let report = ring2_run(&config, 2_000);
    let serving = report.serving.as_ref().unwrap();
    assert!(serving.dropped > 0, "the overload must shed");
    assert_eq!(serving.requests + serving.dropped, 32, "served + dropped = offered");
    assert_eq!(serving.records.len(), serving.requests);
}

#[test]
fn slo_violations_split_goodput_from_throughput() {
    let traffic = poisson(2e5, 19, 24);
    let lax = ring2_run(&ServingConfig::new(traffic.clone()).with_slo_ns(1e12), 200);
    let strict = ring2_run(&ServingConfig::new(traffic).with_slo_ns(1.0), 200);
    let lax_s = lax.serving.as_ref().unwrap();
    let strict_s = strict.serving.as_ref().unwrap();
    assert_eq!(lax_s.slo_violations, 0);
    assert!(lax_s.goodput_rps > 0.0);
    assert_eq!(strict_s.slo_violations, strict_s.requests, "a 1 ns SLO fails everything");
    assert_eq!(strict_s.goodput_rps, 0.0);
    // Identical traffic and system: the SLO only reclassifies.
    assert_eq!(lax_s.p99_ns, strict_s.p99_ns);
}

#[test]
fn serving_rejects_nonsense_configs() {
    use pim_sim::SimError;
    let chip = ChipSpec::chip_s();
    let stage = mvm_program(chip.cores, 10);
    let loads = [
        ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 4096),
        ChipLoad::new(std::slice::from_ref(&stage)),
    ];
    let sim = SystemSimulator::new(chip.clone(), Topology::ring(2));
    let traffic = poisson(1e5, 1, 4);
    let zero_queue = ServingConfig::new(traffic.clone()).with_queue_capacity(0);
    assert!(matches!(sim.run_serving(&loads, &zero_queue), Err(SimError::InvalidServing(_))));
    let zero_inflight = ServingConfig::new(traffic.clone()).with_max_inflight(0);
    assert!(matches!(sim.run_serving(&loads, &zero_inflight), Err(SimError::InvalidServing(_))));
    let zero_batch = ServingConfig::new(traffic.clone()).with_policy(BatchPolicy::MaxSize(0));
    assert!(matches!(sim.run_serving(&loads, &zero_batch), Err(SimError::InvalidServing(_))));
    // An all-idle system has nothing to serve on.
    let idle = [ChipLoad::new(&[]), ChipLoad::new(&[])];
    assert!(matches!(
        sim.run_serving(&idle, &ServingConfig::new(traffic)),
        Err(SimError::InvalidServing(_))
    ));
}

#[test]
fn empty_traffic_serves_nothing_gracefully() {
    let config = ServingConfig::new(poisson(0.0, 3, 100));
    let report = ring2_run(&config, 10);
    let serving = report.serving.as_ref().unwrap();
    assert_eq!(serving.requests, 0);
    assert_eq!(serving.rounds, 0);
    assert_eq!(serving.p999_ns, 0.0, "empty buffer reports zero percentiles");
    assert_eq!(report.makespan_ns, 0.0);
}

#[test]
fn arrival_chunk_size_never_changes_the_report() {
    // The chunked request source is a scheduling-cost optimization,
    // not a semantic knob: every chunk size replays the identical
    // arrival stream, so the reports are byte-identical.
    let chip = ChipSpec::chip_s();
    let stage = mvm_program(chip.cores, 30);
    let loads = [
        ChipLoad::new(std::slice::from_ref(&stage)).with_handoff(1, 4096),
        ChipLoad::new(std::slice::from_ref(&stage)),
    ];
    let config = ServingConfig::new(poisson(2.5e5, 13, 48)).with_policy(BatchPolicy::MaxSize(4));
    let run = |chunk: usize| {
        let report = SystemSimulator::new(chip.clone(), Topology::ring(2))
            .with_arrival_chunk(chunk)
            .run_serving(&loads, &config)
            .expect("serves");
        serde_json::to_string(&report).expect("serializes")
    };
    let default = run(512);
    for chunk in [1usize, 7, 48, 4096] {
        assert_eq!(run(chunk), default, "chunk {chunk} must replay the same stream");
    }
}

/// Sharded serving must reproduce the single-threaded oracle byte for
/// byte: the admission frontend lives on the shard boundary, cuts the
/// same batches at the same instants, and the folded report — request
/// records, tails, drops, goodput — serializes identically.
#[cfg(feature = "sharded")]
mod sharded_serving {
    use super::*;
    use pim_sim::EngineMode;

    /// A `chips`-long hand-off chain on `topology`, every chip active,
    /// run on the requested engine.
    fn chain_run(
        topology: Topology,
        serving: &ServingConfig,
        waves: usize,
        sharded: bool,
    ) -> SimReport {
        let chip = ChipSpec::chip_s();
        let stage = mvm_program(chip.cores, waves);
        let chips = topology.chips();
        let loads: Vec<ChipLoad<'_>> = (0..chips)
            .map(|c| {
                let load = ChipLoad::new(std::slice::from_ref(&stage));
                if c + 1 < chips {
                    load.with_handoff(c + 1, 4096)
                } else {
                    load
                }
            })
            .collect();
        SystemSimulator::new(chip, topology)
            .with_sharded(sharded)
            .run_serving(&loads, serving)
            .expect("serves")
    }

    fn bursty() -> TrafficModel {
        TrafficModel::Mmpp {
            calm_rate_per_s: 8e4,
            burst_rate_per_s: 9e5,
            mean_calm_s: 1e-3,
            mean_burst_s: 3e-4,
        }
    }

    /// Poisson, MMPP, and replayed-trace sources for one seed.
    fn sources(seed: u64) -> Vec<TrafficSpec> {
        vec![
            poisson(2.5e5, seed, 30),
            TrafficSpec::Synthetic { model: bursty(), seed, requests: 30 },
            TrafficSpec::Trace(RequestTrace::synthesize(
                TrafficModel::Poisson { rate_per_s: 3e5 },
                seed ^ 0x5eed,
                24,
            )),
        ]
    }

    fn policies() -> [BatchPolicy; 3] {
        [
            BatchPolicy::Immediate,
            BatchPolicy::MaxSize(4),
            BatchPolicy::Deadline { max_size: 6, timeout_ns: 2e4 },
        ]
    }

    #[test]
    fn sharded_serving_matches_single_threaded_across_the_matrix() {
        for topology in [Topology::ring(2), Topology::fully_connected(4)] {
            for seed in [3u64, 17, 29] {
                for source in sources(seed) {
                    for policy in policies() {
                        let config = ServingConfig::new(source.clone()).with_policy(policy);
                        let single = chain_run(topology.clone(), &config, 40, false);
                        let shard = chain_run(topology.clone(), &config, 40, true);
                        assert!(
                            matches!(single.engine, Some(EngineMode::SingleThread)),
                            "oracle runs single-threaded"
                        );
                        assert!(
                            matches!(shard.engine, Some(EngineMode::Sharded { .. })),
                            "honored sharding must be recorded, not silently dropped"
                        );
                        assert_eq!(
                            serde_json::to_string(&single).expect("serializes"),
                            serde_json::to_string(&shard).expect("serializes"),
                            "sharded vs single ({topology}, seed {seed}, {policy:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_serving_is_deterministic_per_seed() {
        for seed in [5u64, 21] {
            let config =
                ServingConfig::new(poisson(3e5, seed, 24)).with_policy(BatchPolicy::MaxSize(4));
            let run = || {
                serde_json::to_string(&chain_run(Topology::ring(2), &config, 40, true))
                    .expect("serializes")
            };
            assert_eq!(run(), run(), "seed {seed}: repeated sharded runs must be byte-identical");
        }
        let a = serde_json::to_string(&chain_run(
            Topology::ring(2),
            &ServingConfig::new(poisson(3e5, 5, 24)),
            40,
            true,
        ))
        .expect("serializes");
        let b = serde_json::to_string(&chain_run(
            Topology::ring(2),
            &ServingConfig::new(poisson(3e5, 6, 24)),
            40,
            true,
        ))
        .expect("serializes");
        assert_ne!(a, b, "a different seed reshapes the sharded arrival stream too");
    }

    #[test]
    fn backpressure_under_sharding_agrees_with_the_oracle() {
        // A tight burst against a long service time, a 3-slot queue
        // and one round in flight: admission control must shed the
        // same requests at the same instants on both engines.
        let arrivals_ns: Vec<f64> = (0..40).map(|i| 25.0 * i as f64).collect();
        let trace = TrafficSpec::Trace(RequestTrace { arrivals_ns });
        let config = ServingConfig::new(trace).with_queue_capacity(3).with_max_inflight(1);
        let single = chain_run(Topology::ring(2), &config, 1_500, false);
        let shard = chain_run(Topology::ring(2), &config, 1_500, true);
        let serving = shard.serving.as_ref().expect("serving section present");
        assert!(serving.dropped > 0, "the overload must shed");
        assert_eq!(serving.requests + serving.dropped, 40, "served + dropped = offered");
        assert_eq!(
            serde_json::to_string(&single).expect("serializes"),
            serde_json::to_string(&shard).expect("serializes"),
            "drop accounting must agree byte for byte"
        );
    }
}
