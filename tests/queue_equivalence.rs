//! Calendar-queue ↔ reference-heap equivalence.
//!
//! PR 5 replaced the engine's binary-heap event queue with a two-tier
//! calendar queue. The heap survives as the *reference
//! implementation* (`pim-engine`'s `reference-queue` feature); this
//! suite runs whole simulations on both queues and demands
//! **byte-identical serialized [`pim_sim::SimReport`]s** — the
//! strongest statement that the calendar queue preserves exact
//! `(time, seq)` dispatch order, across:
//!
//! * both timing modes (`analytic`, `closed-loop`) × both CI
//!   topologies (`single`, `ring:2`) — the four env matrix legs,
//! * the interleaved schedule mode (multi-stage in flight, mid-run
//!   `add_component` core spawns with same-instant follow-up events),
//! * FR-FCFS DRAM reordering (same-instant service-order sensitivity).

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::{ChipSpec, ScheduleMode, TimingMode, Topology};
use pim_sim::{ChipLoad, ChipSimulator, SystemSimulator};

fn compiled_programs(batch: usize) -> compass::CompiledModel {
    let chip = ChipSpec::chip_s();
    Compiler::new(chip)
        .compile(
            &pim_model::zoo::tiny_cnn(),
            &CompileOptions::new()
                .with_strategy(Strategy::Greedy)
                .with_batch_size(batch)
                .with_ga(GaParams::fast())
                .with_seed(11),
        )
        .expect("compiles")
}

/// Serialized report of a single-chip run on either queue.
fn chip_report(timing: TimingMode, schedule: ScheduleMode, reference: bool) -> String {
    let compiled = compiled_programs(2);
    let sim = ChipSimulator::new(ChipSpec::chip_s())
        .with_timing_mode(timing)
        .with_schedule_mode(schedule)
        .with_reference_queue(reference);
    let rounds = match schedule {
        ScheduleMode::Barrier => 1,
        ScheduleMode::Interleaved => 4,
    };
    let report = sim.run_batches(compiled.programs(), rounds, 2).expect("simulates");
    serde_json::to_string(&report).expect("serializes")
}

/// Serialized report of a 2-chip pipelined system run on either queue.
fn system_report(timing: TimingMode, reference: bool) -> String {
    let compiled = compiled_programs(2);
    let loads = [
        ChipLoad::new(compiled.programs()).with_handoff(1, 4096),
        ChipLoad::new(compiled.programs()),
    ];
    let report = SystemSimulator::new(ChipSpec::chip_s(), Topology::ring(2))
        .with_timing_mode(timing)
        .with_reference_queue(reference)
        .run(&loads, 3, 2)
        .expect("simulates");
    serde_json::to_string(&report).expect("serializes")
}

#[test]
fn single_chip_analytic_reports_are_byte_identical() {
    let a = chip_report(TimingMode::Analytic, ScheduleMode::Barrier, false);
    let b = chip_report(TimingMode::Analytic, ScheduleMode::Barrier, true);
    assert_eq!(a, b, "calendar vs reference queue (analytic, single)");
}

#[test]
fn single_chip_closed_loop_reports_are_byte_identical() {
    let a = chip_report(TimingMode::ClosedLoop, ScheduleMode::Barrier, false);
    let b = chip_report(TimingMode::ClosedLoop, ScheduleMode::Barrier, true);
    assert_eq!(a, b, "calendar vs reference queue (closed-loop, single)");
}

#[test]
fn ring2_analytic_reports_are_byte_identical() {
    let a = system_report(TimingMode::Analytic, false);
    let b = system_report(TimingMode::Analytic, true);
    assert_eq!(a, b, "calendar vs reference queue (analytic, ring:2)");
}

#[test]
fn ring2_closed_loop_reports_are_byte_identical() {
    let a = system_report(TimingMode::ClosedLoop, false);
    let b = system_report(TimingMode::ClosedLoop, true);
    assert_eq!(a, b, "calendar vs reference queue (closed-loop, ring:2)");
}

#[test]
fn interleaved_schedule_reports_are_byte_identical() {
    // Interleaving keeps several stages in flight: mid-run core spawns
    // (`EngineCtx::add_component`) plus same-instant cross-stage
    // events — the dispatch pattern most sensitive to queue order.
    for timing in [TimingMode::Analytic, TimingMode::ClosedLoop] {
        let a = chip_report(timing, ScheduleMode::Interleaved, false);
        let b = chip_report(timing, ScheduleMode::Interleaved, true);
        assert_eq!(a, b, "calendar vs reference queue (interleaved, {timing})");
    }
}

#[test]
fn dram_reorder_reports_are_byte_identical() {
    // FR-FCFS reordering groups same-instant accesses: the service
    // order depends directly on the queue's same-instant FIFO
    // guarantee.
    let run = |reference: bool| {
        let compiled = compiled_programs(4);
        let report = ChipSimulator::new(ChipSpec::chip_s())
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_dram_channels(2)
            .with_dram_reorder(true)
            .with_reference_queue(reference)
            .run(compiled.programs(), 4)
            .expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(run(false), run(true), "calendar vs reference queue (FR-FCFS)");
}

/// Sharded ↔ single-threaded equivalence (PR 6).
///
/// One engine thread per chip with the interconnect as the
/// conservative-lookahead boundary must produce **byte-identical**
/// serialized reports to the single-threaded engine, across
/// topologies × timing modes × schedule modes, with a hand-off chain
/// keeping cross-shard traffic live every round.
#[cfg(feature = "sharded")]
mod sharded {
    use super::*;

    fn compiled_with_seed(batch: usize, seed: u64) -> compass::CompiledModel {
        Compiler::new(ChipSpec::chip_s())
            .compile(
                &pim_model::zoo::tiny_cnn(),
                &CompileOptions::new()
                    .with_strategy(Strategy::Greedy)
                    .with_batch_size(batch)
                    .with_ga(GaParams::fast())
                    .with_seed(seed),
            )
            .expect("compiles")
    }

    fn report(
        topology: Topology,
        timing: TimingMode,
        schedule: ScheduleMode,
        sharded: bool,
        seed: u64,
    ) -> String {
        let compiled = compiled_with_seed(2, seed);
        let chips = topology.chips();
        // Hand-off chain: every chip feeds its successor, so shard
        // boundaries carry traffic every round.
        let loads: Vec<ChipLoad<'_>> = (0..chips)
            .map(|c| {
                let load = ChipLoad::new(compiled.programs());
                if c + 1 < chips {
                    load.with_handoff(c + 1, 4096)
                } else {
                    load
                }
            })
            .collect();
        let report = SystemSimulator::new(ChipSpec::chip_s(), topology)
            .with_timing_mode(timing)
            .with_schedule_mode(schedule)
            .with_sharded(sharded)
            .run(&loads, 3, 2)
            .expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    }

    #[test]
    fn sharded_reports_match_single_threaded_across_the_matrix() {
        for topology in [Topology::ring(2), Topology::ring(4), Topology::fully_connected(4)] {
            for timing in [TimingMode::Analytic, TimingMode::ClosedLoop] {
                for schedule in ScheduleMode::ALL {
                    let single = report(topology.clone(), timing, schedule, false, 11);
                    let sharded = report(topology.clone(), timing, schedule, true, 11);
                    assert_eq!(
                        single, sharded,
                        "sharded vs single ({topology}, {timing}, {schedule})"
                    );
                }
            }
        }
    }

    /// Degenerate-window shapes for the dynamic-lookahead protocol:
    /// the horizon is now derived from each shard's actual inbound
    /// links and in-flight transfers, so the cases that stress it are
    /// the ones where those quantities are lopsided.
    #[test]
    fn degenerate_windows_stay_byte_identical() {
        // (a) Heterogeneous link latencies: one fast edge (40 ns) and
        // one slow edge (600 ns) on the same ring, so per-destination
        // horizons differ by over an order of magnitude.
        let mut skewed = Topology::ring(4);
        skewed.links[0].spec.latency_ns = 40.0;
        skewed.links[1].spec.latency_ns = 600.0;
        assert_eq!(
            report(skewed.clone(), TimingMode::Analytic, ScheduleMode::Interleaved, false, 11),
            report(skewed, TimingMode::Analytic, ScheduleMode::Interleaved, true, 11),
            "heterogeneous link latencies"
        );
        // (b) A chip that receives no hand-offs at all: its shard has
        // no inbound producer, so its horizon is unbounded and it runs
        // each round in a single window.
        let compiled = compiled_with_seed(2, 11);
        let loads = [
            ChipLoad::new(compiled.programs()).with_handoff(1, 4096),
            ChipLoad::new(compiled.programs()),
            ChipLoad::new(compiled.programs()),
        ];
        let run = |sharded: bool| {
            let report = SystemSimulator::new(ChipSpec::chip_s(), Topology::fully_connected(3))
                .with_sharded(sharded)
                .run(&loads, 2, 2)
                .expect("simulates");
            serde_json::to_string(&report).expect("serializes")
        };
        assert_eq!(run(false), run(true), "chip without inbound hand-offs");
        // (c) Round-count clamps: zero rounds (clamped up to one) and
        // a single round exercise start-up and tear-down with no
        // steady state in between.
        for rounds in [0usize, 1] {
            let run = |sharded: bool| {
                let report = SystemSimulator::new(ChipSpec::chip_s(), Topology::ring(2))
                    .with_sharded(sharded)
                    .run(
                        &[
                            ChipLoad::new(compiled.programs()).with_handoff(1, 4096),
                            ChipLoad::new(compiled.programs()),
                        ],
                        rounds,
                        1,
                    )
                    .expect("simulates");
                serde_json::to_string(&report).expect("serializes")
            };
            assert_eq!(run(false), run(true), "round clamp (rounds = {rounds})");
        }
    }

    #[test]
    fn sharded_runs_are_deterministic_across_seeds() {
        for seed in [11u64, 23] {
            let run = || {
                report(
                    Topology::ring(4),
                    TimingMode::Analytic,
                    ScheduleMode::Interleaved,
                    true,
                    seed,
                )
            };
            assert_eq!(run(), run(), "seed {seed}: repeated sharded runs must be byte-identical");
        }
    }
}

#[test]
fn env_selected_leg_is_byte_identical() {
    // Whatever PIM_TIMING_MODE / PIM_TOPOLOGY the CI matrix selects,
    // the two queues agree on it.
    let timing = TimingMode::from_env();
    let topology = Topology::from_env();
    let compiled = compiled_programs(2);
    let loads: Vec<ChipLoad<'_>> =
        (0..topology.chips()).map(|_| ChipLoad::new(compiled.programs())).collect();
    let run = |reference: bool| {
        let report = SystemSimulator::new(ChipSpec::chip_s(), topology.clone())
            .with_timing_mode(timing)
            .with_reference_queue(reference)
            .run(&loads, 2, 2)
            .expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    assert_eq!(run(false), run(true), "calendar vs reference queue ({timing}, {topology})");
}
