//! Cross-mode sanity: the analytic and closed-loop memory timing
//! models must agree on everything the timing mode cannot touch, and
//! closed-loop latency must respect the compute-only floor.

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::{ChipSpec, TimingMode};
use pim_model::zoo;
use pim_sim::{ChipSimulator, SimReport};

const WORKLOADS: [&str; 3] = ["vgg16", "resnet18", "squeezenet"];

fn workload(name: &str) -> pim_model::Network {
    match name {
        "vgg16" => zoo::vgg16(),
        "resnet18" => zoo::resnet18(),
        "squeezenet" => zoo::squeezenet(),
        other => unreachable!("unknown workload {other}"),
    }
}

fn compile(chip: &ChipSpec, name: &str, batch: usize) -> compass::CompiledModel {
    Compiler::new(chip.clone())
        .compile(
            &workload(name),
            &CompileOptions::new()
                .with_strategy(Strategy::Greedy)
                .with_batch_size(batch)
                .with_ga(GaParams::fast())
                .with_seed(7),
        )
        .unwrap_or_else(|e| panic!("{name} compiles: {e}"))
}

fn run(
    chip: &ChipSpec,
    compiled: &compass::CompiledModel,
    batch: usize,
    mode: TimingMode,
) -> SimReport {
    ChipSimulator::new(chip.clone())
        .with_timing_mode(mode)
        .run(compiled.programs(), batch)
        .unwrap_or_else(|e| panic!("simulates in {mode} mode: {e}"))
}

#[test]
fn closed_loop_respects_compute_floor_on_every_workload() {
    // The compute-only floor: the same programs on a chip whose memory
    // channel is free (zero latency, near-infinite bandwidth) in
    // analytic mode. Closed-loop DRAM can only add time on top.
    let batch = 2;
    for name in WORKLOADS {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&chip, name, batch);
        let closed = run(&chip, &compiled, batch, TimingMode::ClosedLoop);

        let mut free_mem = chip.clone();
        free_mem.memory.access_latency_ns = 0.0;
        free_mem.memory.bandwidth_gbps = 1e12;
        let floor = ChipSimulator::new(free_mem)
            .with_dram_replay(false)
            .run(compiled.programs(), batch)
            .expect("floor simulates");

        assert!(
            closed.makespan_ns >= floor.makespan_ns - 1e-6,
            "{name}: closed-loop {} ns beat the compute floor {} ns",
            closed.makespan_ns,
            floor.makespan_ns
        );
    }
}

#[test]
fn identical_request_streams_charge_identical_dynamic_energy() {
    // Timing modes reshape *when* transfers happen, never *what* moves:
    // the instruction-derived dynamic energy and the DRAM request
    // stream must match field-for-field (only the makespan-dependent
    // static term may differ).
    let batch = 2;
    for name in WORKLOADS {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&chip, name, batch);
        let analytic = run(&chip, &compiled, batch, TimingMode::Analytic);
        let closed = run(&chip, &compiled, batch, TimingMode::ClosedLoop);

        assert_eq!(analytic.dram_trace, closed.dram_trace, "{name}: request streams diverged");
        let (a, c) = (&analytic.energy, &closed.energy);
        assert_eq!(a.mvm_nj, c.mvm_nj, "{name}");
        assert_eq!(a.weight_write_nj, c.weight_write_nj, "{name}");
        assert_eq!(a.weight_load_nj, c.weight_load_nj, "{name}");
        assert_eq!(a.activation_dram_nj, c.activation_dram_nj, "{name}");
        assert_eq!(a.interconnect_nj, c.interconnect_nj, "{name}");
        assert_eq!(a.vfu_nj, c.vfu_nj, "{name}");
        // Per-partition dynamic energy matches too.
        for (pa, pc) in analytic.partitions.iter().zip(&closed.partitions) {
            assert_eq!(pa.energy, pc.energy, "{name} partition {}", pa.index);
            assert_eq!(pa.stats, pc.stats, "{name} partition {}", pa.index);
        }
    }
}

#[test]
fn closed_loop_completes_every_workload_with_channel_stats() {
    let batch = 2;
    for name in WORKLOADS {
        let chip = ChipSpec::chip_s();
        let compiled = compile(&chip, name, batch);
        let closed = run(&chip, &compiled, batch, TimingMode::ClosedLoop);
        assert!(closed.makespan_ns > 0.0, "{name} must run to completion");
        let channels = closed
            .dram_channels
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: closed loop must report per-channel stats"));
        assert!(!channels.is_empty());
        let moved: u64 = channels.iter().map(|c| c.total_bytes()).sum();
        assert_eq!(moved as usize, closed.dram_trace.total_bytes(), "{name}");
        assert!(channels.iter().any(|c| c.row_hits + c.activates > 0), "{name}");
        for c in channels {
            assert!(c.utilization() <= 1.0, "{name}");
        }
    }
}
