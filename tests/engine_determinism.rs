//! Engine determinism and seed-loop regression guarantees.
//!
//! The chip simulator is rebuilt on `pim-engine`'s event queue; these
//! tests pin down the two properties that rebuild must preserve:
//!
//! 1. **Bit determinism** — the same seed and the same programs give a
//!    byte-identical serialized [`pim_sim::SimReport`], run after run.
//! 2. **Seed-loop equivalence** — on a fixed program, the event-driven
//!    simulator produces the same cycle counts as the original
//!    hand-rolled earliest-core-first loop (re-implemented here as the
//!    reference model).

use compass::{CompileOptions, Compiler, GaParams, Strategy};
use pim_arch::ChipSpec;
use pim_isa::{ChipProgram, CoreId, Instruction, Tag};
use pim_model::zoo;
use pim_sim::ChipSimulator;
use std::collections::HashMap;
use std::path::PathBuf;

/// Compares `serialized` against the golden fixture committed at
/// `tests/golden/<name>.json`, which pins the `Analytic`-mode report
/// bytes to the pre-timing-mode `main`. Regenerate (only when a byte
/// change is intended and reviewed) with `GOLDEN_REGEN=1 cargo test`.
fn assert_matches_golden(name: &str, serialized: &str) {
    let path: PathBuf =
        [env!("CARGO_MANIFEST_DIR"), "tests", "golden", &format!("{name}.json")].iter().collect();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, serialized).expect("write golden fixture");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        golden, serialized,
        "Analytic-mode report for {name} must stay byte-identical to the pinned fixture"
    );
}

#[test]
fn same_seed_same_program_byte_identical_reports() {
    let chip = ChipSpec::chip_s();
    let compiled = Compiler::new(chip.clone())
        .compile(
            &zoo::tiny_cnn(),
            &CompileOptions::new()
                .with_strategy(Strategy::Compass)
                .with_batch_size(4)
                .with_ga(GaParams::fast())
                .with_seed(11),
        )
        .expect("compiles");
    let run = || {
        let report =
            ChipSimulator::new(chip.clone()).run(compiled.programs(), 4).expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "two runs must serialize to identical bytes");
    assert!(first.contains("makespan_ns"));
    assert_matches_golden("tiny_cnn_compass_b4_s11", &first);
}

#[test]
fn analytic_fixed_program_matches_golden_fixture() {
    // No compiler in the loop: the hand-written fixture program pins
    // the simulator (and the in-line DRAM energy refinement) alone.
    let chip = ChipSpec::chip_s();
    let program = fixed_program(chip.cores);
    let report =
        ChipSimulator::new(chip).run(std::slice::from_ref(&program), 1).expect("simulates");
    let serialized = serde_json::to_string(&report).expect("serializes");
    assert_matches_golden("fixed_program_chip_s", &serialized);
}

#[test]
fn full_pipeline_byte_identical_across_fresh_compilations() {
    // Stronger: recompile from scratch both times (GA + scheduler +
    // simulator), so the whole stack must be deterministic for a
    // fixed seed.
    let chip = ChipSpec::chip_s();
    let net = zoo::squeezenet();
    let run = || {
        let compiled = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new().with_batch_size(2).with_ga(GaParams::fast()).with_seed(77),
            )
            .expect("compiles");
        let report =
            ChipSimulator::new(chip.clone()).run(compiled.programs(), 2).expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    let first = run();
    assert_eq!(first, run());
    assert_matches_golden("squeezenet_b2_s77", &first);
}

/// The original (pre-engine) simulator loop for one partition:
/// repeatedly execute the earliest-time ready core, serializing the
/// memory channel and the bus through `free` timestamps. Kept here as
/// the reference model the event-driven simulator must reproduce.
struct Reference {
    end_ns: f64,
    replace_ns: f64,
    busy_ns: Vec<f64>,
    recv_wait_ns: Vec<f64>,
    dram_wait_ns: Vec<f64>,
}

fn reference_run(chip: &ChipSpec, program: &ChipProgram) -> Reference {
    let cores = program.cores();
    let mut pc = vec![0usize; cores];
    let mut time = vec![0.0f64; cores];
    let mut busy = vec![0.0f64; cores];
    let mut recv_wait = vec![0.0f64; cores];
    let mut dram_wait = vec![0.0f64; cores];
    let mut dram_free = 0.0f64;
    let mut bus_free = 0.0f64;
    let mut deliveries: HashMap<Tag, f64> = HashMap::new();
    let mut replace_done = 0.0f64;
    let vfu_rate = chip.core.vfu_throughput_per_ns();
    let dram_bw = chip.memory.bandwidth_gbps;
    let dram_lat = chip.memory.access_latency_ns;
    let bus = chip.interconnect;

    loop {
        let mut candidate: Option<usize> = None;
        let mut all_done = true;
        for core in 0..cores {
            let stream = program.core(CoreId(core)).instructions();
            if pc[core] >= stream.len() {
                continue;
            }
            all_done = false;
            let ready = match stream[pc[core]] {
                Instruction::Recv { tag, .. } => deliveries.contains_key(&tag),
                _ => true,
            };
            if ready && candidate.map(|c| time[core] < time[c]).unwrap_or(true) {
                candidate = Some(core);
            }
        }
        if all_done {
            break;
        }
        let core = candidate.expect("reference program must not deadlock");
        match program.core(CoreId(core)).instructions()[pc[core]] {
            Instruction::LoadWeight { bytes }
            | Instruction::LoadData { bytes }
            | Instruction::StoreData { bytes } => {
                let start = time[core].max(dram_free);
                let dur = dram_lat + bytes as f64 / dram_bw;
                dram_free = start + bytes as f64 / dram_bw;
                dram_wait[core] += start - time[core];
                busy[core] += dur;
                time[core] = start + dur;
            }
            Instruction::WriteWeight { crossbars, .. } => {
                let dur = crossbars as f64 * chip.crossbar.full_write_latency_ns();
                busy[core] += dur;
                time[core] += dur;
                replace_done = replace_done.max(time[core]);
            }
            Instruction::Mvmul { waves, .. } => {
                let dur = waves as f64 * chip.crossbar.mvm_latency_ns;
                busy[core] += dur;
                time[core] += dur;
            }
            Instruction::VectorOp { elements, .. } => {
                let dur = elements as f64 / vfu_rate;
                busy[core] += dur;
                time[core] += dur;
            }
            Instruction::Send { bytes, tag, .. } => {
                let start = time[core].max(bus_free);
                let done = start + bus.arbitration_ns + bus.transfer_ns(bytes);
                bus_free = done;
                deliveries.insert(tag, done);
                busy[core] += start + bus.arbitration_ns - time[core];
                time[core] = start + bus.arbitration_ns;
            }
            Instruction::Recv { tag, .. } => {
                let delivered = deliveries[&tag];
                if delivered > time[core] {
                    recv_wait[core] += delivered - time[core];
                    time[core] = delivered;
                }
            }
        }
        pc[core] += 1;
    }

    Reference {
        end_ns: time.iter().fold(0.0, |a, &b| a.max(b)),
        replace_ns: replace_done,
        busy_ns: busy,
        recv_wait_ns: recv_wait,
        dram_wait_ns: dram_wait,
    }
}

/// A fixed two-producer/one-consumer program exercising every
/// instruction class: weight loads + writes, MVMs, vector ops, DRAM
/// data traffic, and a SEND/RECV pipeline over the shared bus.
fn fixed_program(cores: usize) -> ChipProgram {
    use Instruction as I;
    let mut program = ChipProgram::new(cores);
    let c0 = program.core_mut(CoreId(0));
    c0.push(I::LoadWeight { bytes: 96 * 1024 });
    c0.push(I::WriteWeight { crossbars: 4, bits: 1 << 16 });
    for chunk in 0..6u64 {
        c0.push(I::Mvmul { waves: 9, activations: 32, node: 0 });
        c0.push(I::Send { to: CoreId(2), bytes: 384, tag: Tag(chunk) });
    }
    let c1 = program.core_mut(CoreId(1));
    c1.push(I::LoadWeight { bytes: 33 * 1024 });
    c1.push(I::WriteWeight { crossbars: 2, bits: 1 << 14 });
    c1.push(I::LoadData { bytes: 10_000 });
    for chunk in 0..6u64 {
        c1.push(I::Mvmul { waves: 5, activations: 16, node: 1 });
        c1.push(I::Send { to: CoreId(2), bytes: 112, tag: Tag(100 + chunk) });
    }
    let c2 = program.core_mut(CoreId(2));
    for chunk in 0..6u64 {
        c2.push(I::Recv { from: CoreId(0), bytes: 384, tag: Tag(chunk) });
        c2.push(I::Recv { from: CoreId(1), bytes: 112, tag: Tag(100 + chunk) });
        c2.push(I::VectorOp { op: pim_isa::VectorOpKind::Relu, elements: 500 });
    }
    c2.push(I::StoreData { bytes: 3_000 });
    program
}

#[test]
fn event_driven_simulator_matches_seed_loop_cycle_counts() {
    let chip = ChipSpec::chip_s();
    let program = fixed_program(chip.cores);
    let reference = reference_run(&chip, &program);

    let report = ChipSimulator::new(chip.clone())
        .with_dram_replay(false)
        .run(std::slice::from_ref(&program), 1)
        .expect("simulates");
    assert_eq!(report.partitions.len(), 1);
    let partition = &report.partitions[0];

    let tolerance = 1e-9;
    assert!(
        (report.makespan_ns - reference.end_ns).abs() < tolerance,
        "makespan: event-driven {} vs seed loop {}",
        report.makespan_ns,
        reference.end_ns
    );
    assert!(
        (partition.replace_ns - reference.replace_ns).abs() < tolerance,
        "replace: event-driven {} vs seed loop {}",
        partition.replace_ns,
        reference.replace_ns
    );
    for (core, activity) in partition.core_activity.iter().enumerate() {
        assert!(
            (activity.busy_ns() - reference.busy_ns[core]).abs() < tolerance,
            "core {core} busy: {} vs {}",
            activity.busy_ns(),
            reference.busy_ns[core]
        );
        assert!(
            (activity.recv_wait_ns - reference.recv_wait_ns[core]).abs() < tolerance,
            "core {core} recv wait: {} vs {}",
            activity.recv_wait_ns,
            reference.recv_wait_ns[core]
        );
        assert!(
            (activity.dram_wait_ns - reference.dram_wait_ns[core]).abs() < tolerance,
            "core {core} dram wait: {} vs {}",
            activity.dram_wait_ns,
            reference.dram_wait_ns[core]
        );
    }
}

#[test]
fn closed_loop_reports_are_byte_identical_across_runs() {
    // Bit determinism must hold in both timing modes: the closed-loop
    // handshake adds events, not nondeterminism.
    use pim_arch::TimingMode;
    let chip = ChipSpec::chip_s();
    let compiled = Compiler::new(chip.clone())
        .compile(
            &zoo::tiny_cnn(),
            &CompileOptions::new()
                .with_strategy(Strategy::Compass)
                .with_batch_size(4)
                .with_ga(GaParams::fast())
                .with_seed(11),
        )
        .expect("compiles");
    let run = || {
        let report = ChipSimulator::new(chip.clone())
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_dram_channels(2)
            .run(compiled.programs(), 4)
            .expect("simulates");
        serde_json::to_string(&report).expect("serializes")
    };
    let first = run();
    assert_eq!(first, run(), "closed-loop runs must serialize to identical bytes");
    assert!(first.contains("dram_channels"), "closed-loop reports carry per-channel stats");
}

#[test]
fn closed_loop_timing_diverges_from_analytic_on_fixture() {
    // The two modes model different machines: on the DRAM-heavy
    // fixture program their makespans must not coincide, and the
    // closed-loop report must carry channel stats while the analytic
    // one must not.
    use pim_arch::TimingMode;
    let chip = ChipSpec::chip_s();
    let program = fixed_program(chip.cores);
    let analytic =
        ChipSimulator::new(chip.clone()).run(std::slice::from_ref(&program), 1).expect("simulates");
    let closed = ChipSimulator::new(chip)
        .with_timing_mode(TimingMode::ClosedLoop)
        .run(std::slice::from_ref(&program), 1)
        .expect("simulates");
    assert!(analytic.dram_channels.is_none());
    assert!(closed.dram_channels.is_some());
    assert_ne!(
        analytic.makespan_ns, closed.makespan_ns,
        "closed-loop timing must actually feed back into the critical path"
    );
}

#[test]
fn timing_is_independent_of_dram_model() {
    // The in-line DRAM model refines energy only; enabling it must
    // not move a single timestamp.
    let chip = ChipSpec::chip_s();
    let program = fixed_program(chip.cores);
    let with =
        ChipSimulator::new(chip.clone()).run(std::slice::from_ref(&program), 1).expect("simulates");
    let without = ChipSimulator::new(chip)
        .with_dram_replay(false)
        .run(std::slice::from_ref(&program), 1)
        .expect("simulates");
    assert_eq!(with.makespan_ns, without.makespan_ns);
    assert_eq!(with.partitions[0].core_activity, without.partitions[0].core_activity);
    assert!(with.dram_energy.is_some());
    assert!(without.dram_energy.is_none());
}
