//! Human- and machine-readable compilation reports.
//!
//! [`CompileReport`] summarizes what the compiler decided — per
//! partition: layers, crossbar usage, replication, DRAM transfers —
//! in a form suitable for logs, regression goldens, and JSON export
//! (everything here derives `Serialize`).

use crate::compiler::CompiledModel;
use pim_arch::ChipSpec;
use pim_model::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One layer slice row in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceReport {
    /// Layer name (from the network).
    pub layer: String,
    /// Fraction of the layer mapped in this partition (1.0 = whole).
    pub fraction: f64,
    /// Crossbars at replication 1.
    pub crossbars: usize,
    /// Chosen replication count.
    pub replication: usize,
    /// MVM waves per sample after replication.
    pub waves_per_sample: usize,
}

/// One partition's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionReport {
    /// Execution order index.
    pub index: usize,
    /// Layer slices mapped here.
    pub slices: Vec<SliceReport>,
    /// Names of attached non-crossbar layers.
    pub attached: Vec<String>,
    /// Crossbars used including replication.
    pub crossbars_used: usize,
    /// Fraction of the chip's crossbars occupied.
    pub utilization: f64,
    /// Weight bytes streamed from DRAM during replacement.
    pub weight_load_bytes: usize,
    /// Activation bytes loaded per sample (partition entries).
    pub entry_bytes_per_sample: usize,
    /// Activation bytes stored per sample (partition exits).
    pub exit_bytes_per_sample: usize,
    /// Estimated latency contribution in nanoseconds.
    pub latency_ns: f64,
}

/// The full report for one compilation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Network name.
    pub network: String,
    /// Chip name.
    pub chip: String,
    /// Strategy used (display form).
    pub strategy: String,
    /// Batch size compiled for.
    pub batch: usize,
    /// Decomposition size `M`.
    pub unit_count: usize,
    /// Per-partition details.
    pub partitions: Vec<PartitionReport>,
    /// Estimated throughput, inferences/s.
    pub throughput_ips: f64,
    /// Estimated energy per inference, µJ.
    pub energy_per_inference_uj: f64,
    /// Estimated EDP per inference, µJ·ms.
    pub edp_per_inference: f64,
    /// Total instructions across all partition programs.
    pub total_instructions: usize,
}

impl CompileReport {
    /// Builds a report from a compilation result.
    pub fn new(network: &Network, chip: &ChipSpec, compiled: &CompiledModel) -> Self {
        let estimate = compiled.estimate();
        let partitions = compiled
            .partitions()
            .iter()
            .zip(&estimate.partitions)
            .map(|(plan, est)| PartitionReport {
                index: plan.index,
                slices: plan
                    .slices
                    .iter()
                    .map(|s| SliceReport {
                        layer: network.node(s.node).name.clone(),
                        fraction: s.fraction,
                        crossbars: s.crossbars,
                        replication: s.replication,
                        waves_per_sample: s.waves_per_sample(),
                    })
                    .collect(),
                attached: plan.attached.iter().map(|&id| network.node(id).name.clone()).collect(),
                crossbars_used: plan.replicated_crossbars(),
                utilization: plan.replicated_crossbars() as f64 / chip.total_crossbars() as f64,
                weight_load_bytes: plan.weight_load_bytes(),
                entry_bytes_per_sample: plan.entry_bytes_per_sample(),
                exit_bytes_per_sample: plan.exit_bytes_per_sample(),
                latency_ns: est.latency_ns,
            })
            .collect();
        Self {
            network: network.name().to_string(),
            chip: chip.name.clone(),
            strategy: compiled.strategy().to_string(),
            batch: estimate.batch,
            unit_count: compiled.unit_count(),
            partitions,
            throughput_ips: estimate.throughput_ips(),
            energy_per_inference_uj: estimate.energy_per_inference_uj(),
            edp_per_inference: estimate.edp_per_inference(),
            total_instructions: compiled.programs().iter().map(|p| p.total_instructions()).sum(),
        }
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} on Chip-{} ({}, batch {}): {} units -> {} partitions, {:.1} inf/s, {:.1} uJ/inf",
            self.network,
            self.chip,
            self.strategy,
            self.batch,
            self.unit_count,
            self.partitions.len(),
            self.throughput_ips,
            self.energy_per_inference_uj,
        )?;
        for p in &self.partitions {
            writeln!(
                f,
                "  P{}: {:4.1}% chip, {:6.1} us, {} layers, {} B weights, IO {}+{} B/sample",
                p.index,
                p.utilization * 100.0,
                p.latency_ns / 1000.0,
                p.slices.len(),
                p.weight_load_bytes,
                p.entry_bytes_per_sample,
                p.exit_bytes_per_sample,
            )?;
            for s in &p.slices {
                writeln!(
                    f,
                    "      {:<20} x{:<3} {:3} xbars, {:5} waves/sample{}",
                    s.layer,
                    s.replication,
                    s.crossbars,
                    s.waves_per_sample,
                    if s.fraction < 1.0 {
                        format!(" ({:.0}% of layer)", s.fraction * 100.0)
                    } else {
                        String::new()
                    },
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Compiler, GaParams, Strategy};
    use pim_model::zoo;

    fn report() -> CompileReport {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_resnet();
        let compiled = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new()
                    .with_batch_size(4)
                    .with_strategy(Strategy::Layerwise)
                    .with_ga(GaParams::fast()),
            )
            .expect("compiles");
        CompileReport::new(&net, &chip, &compiled)
    }

    #[test]
    fn report_covers_all_partitions_and_layers() {
        let r = report();
        assert!(!r.partitions.is_empty());
        let layer_rows: usize = r.partitions.iter().map(|p| p.slices.len()).sum();
        // tiny_resnet has 8 weighted layers; layerwise maps 1/partition.
        assert_eq!(layer_rows, 8);
        assert_eq!(r.partitions.len(), 8);
        for p in &r.partitions {
            assert!(p.utilization > 0.0 && p.utilization <= 1.0);
            assert!(p.latency_ns > 0.0);
        }
    }

    #[test]
    fn report_totals_are_consistent() {
        let r = report();
        assert!(r.throughput_ips > 0.0);
        assert!(r.energy_per_inference_uj > 0.0);
        assert!(
            (r.edp_per_inference
                - r.energy_per_inference_uj
                    * (r.partitions.iter().map(|p| p.latency_ns).sum::<f64>() * 1e-6))
                .abs()
                < r.edp_per_inference * 0.01
        );
        assert!(r.total_instructions > 0);
    }

    #[test]
    fn display_mentions_every_layer() {
        let r = report();
        let text = r.to_string();
        for p in &r.partitions {
            for s in &p.slices {
                assert!(text.contains(&s.layer), "missing {}", s.layer);
            }
        }
    }
}
