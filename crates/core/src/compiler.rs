//! The top-level COMPASS compiler API.

use crate::baselines;
use crate::decompose::{decompose, UnitSequence};
use crate::error::CompileError;
use crate::estimate::{Estimator, GroupEstimate};
use crate::fitness::FitnessContext;
pub use crate::fitness::FitnessKind;
use crate::ga::{self, GaParams, GaTrace};
use crate::partition::PartitionGroup;
use crate::plan::{GroupPlan, PartitionPlan};
use crate::replication::optimize_group;
use crate::scheduler::{schedule_group, SchedulerOptions};
use crate::system::SystemTarget;
use crate::validity::ValidityMap;
use pim_arch::{ChipSpec, ScheduleMode, TimingMode};
use pim_isa::ChipProgram;
use pim_model::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which partitioning strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Strategy {
    /// The COMPASS genetic algorithm (the paper's contribution).
    #[default]
    Compass,
    /// Greedy baseline: maximal consecutive packing.
    Greedy,
    /// Layerwise baseline: one Conv/Linear layer per partition.
    Layerwise,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Compass => write!(f, "COMPASS"),
            Strategy::Greedy => write!(f, "greedy"),
            Strategy::Layerwise => write!(f, "layerwise"),
        }
    }
}

/// Compilation options (builder style).
///
/// # Example
///
/// ```
/// use compass::{CompileOptions, FitnessKind, Strategy};
///
/// let options = CompileOptions::new()
///     .with_batch_size(16)
///     .with_strategy(Strategy::Compass)
///     .with_fitness(FitnessKind::Latency)
///     .with_seed(42);
/// assert_eq!(options.batch_size, 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Samples processed per weight-residency period (paper §II-B).
    pub batch_size: usize,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// GA fitness mode.
    pub fitness: FitnessKind,
    /// GA hyper-parameters (ignored by the baselines).
    pub ga: GaParams,
    /// RNG seed for reproducible compilations.
    pub seed: u64,
    /// Pipeline chunks per sample in the generated programs.
    pub chunks_per_sample: usize,
    /// Memory timing model the GA fitness and the final estimate are
    /// computed under ([`TimingMode::Analytic`] reproduces the paper).
    pub timing_mode: TimingMode,
    /// Intra-chip stage dispatch the GA fitness and the final
    /// estimate model ([`ScheduleMode::Barrier`] reproduces the
    /// paper's serial batch cycle; [`ScheduleMode::Interleaved`] makes
    /// the GA optimize the bottleneck stage the interleaved executor
    /// is paced by).
    pub schedule_mode: ScheduleMode,
    /// Multi-chip deployment the GA fitness and the final estimate
    /// target (`None` — the default — is the paper's single chip).
    pub system: Option<SystemTarget>,
}

impl CompileOptions {
    /// Paper-default options: batch 1, COMPASS strategy, latency
    /// fitness, paper GA parameters.
    pub fn new() -> Self {
        Self {
            batch_size: 1,
            strategy: Strategy::Compass,
            fitness: FitnessKind::Latency,
            ga: GaParams::paper(),
            seed: 0,
            chunks_per_sample: 4,
            timing_mode: TimingMode::Analytic,
            schedule_mode: ScheduleMode::Barrier,
            system: None,
        }
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the fitness mode.
    pub fn with_fitness(mut self, fitness: FitnessKind) -> Self {
        self.fitness = fitness;
        self
    }

    /// Sets the GA parameters.
    pub fn with_ga(mut self, ga: GaParams) -> Self {
        self.ga = ga;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets pipeline chunking granularity.
    pub fn with_chunks_per_sample(mut self, chunks: usize) -> Self {
        self.chunks_per_sample = chunks;
        self
    }

    /// Sets the memory timing model the GA tunes against (pair with
    /// the simulator's matching mode).
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        self.timing_mode = mode;
        self
    }

    /// Sets the intra-chip stage dispatch the GA tunes against (pair
    /// with the simulator's matching `with_schedule_mode`).
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        self.schedule_mode = mode;
        self
    }

    /// Sets the multi-chip deployment the GA tunes against (pair with
    /// `plan_system` + the system simulator's matching topology).
    pub fn with_system_target(mut self, target: SystemTarget) -> Self {
        self.system = Some(target);
        self
    }

    fn validate(&self) -> Result<(), CompileError> {
        if self.batch_size == 0 {
            return Err(CompileError::InvalidOptions("batch size must be >= 1".into()));
        }
        if self.chunks_per_sample == 0 {
            return Err(CompileError::InvalidOptions("chunks per sample must be >= 1".into()));
        }
        Ok(())
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of a compilation: partition plans, per-partition core
/// programs, the analytical estimate, and (for COMPASS runs) the GA
/// trace.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    strategy: Strategy,
    group: PartitionGroup,
    plans: GroupPlan,
    programs: Vec<ChipProgram>,
    estimate: GroupEstimate,
    ga_trace: Option<GaTrace>,
    unit_count: usize,
}

impl CompiledModel {
    /// The strategy that produced this compilation.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The chosen partition group.
    pub fn group(&self) -> &PartitionGroup {
        &self.group
    }

    /// The resolved, replication-optimized partition plans.
    pub fn partitions(&self) -> &[PartitionPlan] {
        self.plans.plans()
    }

    /// Per-partition core programs, in execution order.
    pub fn programs(&self) -> &[ChipProgram] {
        &self.programs
    }

    /// The analytical performance estimate at the compiled batch size.
    pub fn estimate(&self) -> &GroupEstimate {
        &self.estimate
    }

    /// The GA evolution trace (present for [`Strategy::Compass`]).
    pub fn ga_trace(&self) -> Option<&GaTrace> {
        self.ga_trace.as_ref()
    }

    /// Number of partition units `M` the model decomposed into.
    pub fn unit_count(&self) -> usize {
        self.unit_count
    }
}

impl fmt::Display for CompiledModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} compilation: {} partitions over {} units",
            self.strategy,
            self.partitions().len(),
            self.unit_count
        )?;
        write!(f, "  {}", self.estimate)
    }
}

/// The COMPASS compiler for a fixed chip.
pub struct Compiler {
    chip: ChipSpec,
}

impl Compiler {
    /// Creates a compiler for `chip`.
    pub fn new(chip: ChipSpec) -> Self {
        Self { chip }
    }

    /// The chip this compiler targets.
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// Decomposes and partitions `network`, optimizes each partition
    /// on-chip, estimates performance, and generates per-core
    /// programs.
    ///
    /// # Errors
    ///
    /// * [`CompileError::InvalidChip`] if the chip fails validation,
    /// * [`CompileError::NoWeightedLayers`] if nothing maps to
    ///   crossbars,
    /// * [`CompileError::UnitTooLarge`] if a layer cannot be sliced to
    ///   fit one core,
    /// * [`CompileError::InvalidOptions`] for degenerate options.
    pub fn compile(
        &self,
        network: &Network,
        options: &CompileOptions,
    ) -> Result<CompiledModel, CompileError> {
        options.validate()?;
        self.chip.validate().map_err(|e| CompileError::InvalidChip(e.detail().to_string()))?;
        let seq = decompose(network, &self.chip);
        if seq.is_empty() {
            return Err(CompileError::NoWeightedLayers);
        }
        self.check_units(network, &seq)?;
        let validity = ValidityMap::build(&seq, &self.chip);

        let (group, ga_trace) = match options.strategy {
            Strategy::Greedy => (baselines::greedy(&validity), None),
            Strategy::Layerwise => (baselines::layerwise(&seq, &validity), None),
            Strategy::Compass => {
                let ctx = FitnessContext::new(
                    network,
                    &seq,
                    &validity,
                    &self.chip,
                    options.batch_size,
                    options.fitness,
                )
                .with_timing_mode(options.timing_mode)
                .with_schedule_mode(options.schedule_mode)
                .with_system_target(options.system.clone());
                let mut rng = StdRng::seed_from_u64(options.seed);
                let (best, trace) = ga::run(&ctx, &options.ga, &mut rng);
                (best.group, Some(trace))
            }
        };

        let mut plans = GroupPlan::build(network, &seq, &group);
        optimize_group(&mut plans, &self.chip);
        let mut estimator = Estimator::new(&self.chip)
            .with_timing_mode(options.timing_mode)
            .with_schedule_mode(options.schedule_mode);
        if let Some(target) = &options.system {
            estimator = estimator.with_system(target);
        }
        let estimate = estimator.estimate_group(&plans, options.batch_size);
        let scheduler_options = SchedulerOptions {
            batch: options.batch_size,
            chunks_per_sample: options.chunks_per_sample,
            schedule: options.schedule_mode,
        };
        let programs = schedule_group(network, plans.plans(), &self.chip, &scheduler_options);

        Ok(CompiledModel {
            strategy: options.strategy,
            group,
            unit_count: seq.len(),
            plans,
            programs,
            estimate,
            ga_trace,
        })
    }

    fn check_units(&self, network: &Network, seq: &UnitSequence) -> Result<(), CompileError> {
        for u in seq.units() {
            if u.crossbars > self.chip.crossbars_per_core {
                return Err(CompileError::UnitTooLarge {
                    layer: network.node(u.node).name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_model::zoo;

    fn fast_options() -> CompileOptions {
        CompileOptions::new().with_ga(GaParams::fast()).with_seed(1)
    }

    #[test]
    fn compiles_all_three_paper_networks_on_all_chips() {
        for chip in [ChipSpec::chip_s(), ChipSpec::chip_m(), ChipSpec::chip_l()] {
            for net in [zoo::vgg16(), zoo::resnet18(), zoo::squeezenet()] {
                let compiler = Compiler::new(chip.clone());
                let compiled = compiler
                    .compile(&net, &fast_options().with_strategy(Strategy::Greedy))
                    .unwrap_or_else(|e| panic!("{} on Chip-{}: {e}", net.name(), chip.name));
                assert!(compiled.estimate().throughput_ips() > 0.0);
            }
        }
    }

    #[test]
    fn compass_beats_or_ties_baselines_on_resnet18() {
        let chip = ChipSpec::chip_m();
        let net = zoo::resnet18();
        let compiler = Compiler::new(chip);
        let batch = 8;
        let throughput = |strategy: Strategy| {
            compiler
                .compile(&net, &fast_options().with_batch_size(batch).with_strategy(strategy))
                .expect("compiles")
                .estimate()
                .throughput_ips()
        };
        let compass = throughput(Strategy::Compass);
        let greedy = throughput(Strategy::Greedy);
        let layerwise = throughput(Strategy::Layerwise);
        assert!(
            compass >= greedy * 0.99,
            "COMPASS ({compass:.1}) should not lose to greedy ({greedy:.1})"
        );
        assert!(
            compass >= layerwise * 0.99,
            "COMPASS ({compass:.1}) should not lose to layerwise ({layerwise:.1})"
        );
    }

    #[test]
    fn compass_produces_trace_baselines_do_not() {
        let chip = ChipSpec::chip_s();
        let net = zoo::squeezenet();
        let compiler = Compiler::new(chip);
        let c = compiler.compile(&net, &fast_options()).unwrap();
        assert!(c.ga_trace().is_some());
        let g = compiler.compile(&net, &fast_options().with_strategy(Strategy::Greedy)).unwrap();
        assert!(g.ga_trace().is_none());
    }

    #[test]
    fn rejects_zero_batch() {
        let compiler = Compiler::new(ChipSpec::chip_s());
        let err =
            compiler.compile(&zoo::tiny_cnn(), &fast_options().with_batch_size(0)).unwrap_err();
        assert!(matches!(err, CompileError::InvalidOptions(_)));
    }

    #[test]
    fn rejects_weightless_network() {
        use pim_model::{NetworkBuilder, TensorShape};
        let mut b = NetworkBuilder::new("empty");
        let i = b.input(TensorShape::new(3, 8, 8));
        let _ = b.relu("r", i);
        let net = b.build().unwrap();
        let compiler = Compiler::new(ChipSpec::chip_s());
        assert_eq!(
            compiler.compile(&net, &fast_options()).unwrap_err(),
            CompileError::NoWeightedLayers
        );
    }

    #[test]
    fn deterministic_compilation() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let compiler = Compiler::new(chip);
        let a = compiler.compile(&net, &fast_options()).unwrap();
        let b = compiler.compile(&net, &fast_options()).unwrap();
        assert_eq!(a.group(), b.group());
        assert_eq!(a.estimate().batch_latency_ns, b.estimate().batch_latency_ns);
    }

    #[test]
    fn programs_match_partitions() {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_resnet();
        let compiler = Compiler::new(chip);
        let c = compiler.compile(&net, &fast_options().with_strategy(Strategy::Layerwise)).unwrap();
        assert_eq!(c.programs().len(), c.partitions().len());
        assert!(c.to_string().contains("partitions"));
    }
}
