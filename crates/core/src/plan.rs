//! Partition plans: the semantic content of each partition.
//!
//! A [`PartitionPlan`] resolves a unit span into: the weighted-layer
//! *slices* it computes, the non-crossbar nodes attached to it (paper
//! §III-B2), and the DRAM entry/exit transfers implied by the data
//! dependence graph (§III-B3) — including the multi-entry/exit cases
//! residual networks create.

use crate::decompose::UnitSequence;
use crate::packing::Packing;
use crate::partition::{Partition, PartitionGroup};
use pim_model::{LayerKind, Network, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

/// The portion of one weighted node mapped inside one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSlice {
    /// The Conv/Linear node.
    pub node: NodeId,
    /// Unit indices (within the global sequence) in this partition.
    pub units: Range<usize>,
    /// Crossbars at replication 1.
    pub crossbars: usize,
    /// Weight bits at replication 1.
    pub weight_bits: usize,
    /// Exact crossbar footprint of each unit in `units` (same order).
    pub unit_crossbars: Vec<usize>,
    /// Exact weight bits of each unit in `units` (same order).
    pub unit_weight_bits: Vec<usize>,
    /// Fraction of the node's weights (and outputs) this slice covers
    /// (1.0 when the node is wholly inside the partition).
    pub fraction: f64,
    /// MVM waves per sample at replication 1 (= output spatial
    /// positions of the layer).
    pub mvms_per_sample: usize,
    /// Crossbar activations per sample (spatial × crossbars; invariant
    /// under replication).
    pub activations_per_sample: usize,
    /// Extra VFU element-ops per sample for partial-sum reduction of
    /// row-split units.
    pub reduction_elements: usize,
    /// Weight replication count (≥ 1); set by the replication
    /// optimizer, 1 until then.
    pub replication: usize,
}

impl NodeSlice {
    /// Crossbars including replication.
    pub fn replicated_crossbars(&self) -> usize {
        self.crossbars * self.replication
    }

    /// Weight bits including replication (cells written during the
    /// weight-replace phase).
    pub fn replicated_weight_bits(&self) -> usize {
        self.weight_bits * self.replication
    }

    /// MVM waves per sample after replication.
    pub fn waves_per_sample(&self) -> usize {
        self.mvms_per_sample.div_ceil(self.replication)
    }
}

/// A tensor moved between a partition and global memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TensorTransfer {
    /// The node whose output tensor is moved.
    pub node: NodeId,
    /// Bytes per sample.
    pub bytes_per_sample: usize,
}

/// Everything the compiler knows about one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Position in the execution order.
    pub index: usize,
    /// The unit span.
    pub partition: Partition,
    /// Weighted-layer slices computed here, in topological order.
    pub slices: Vec<NodeSlice>,
    /// Non-crossbar nodes executed here (ReLU, pool, BN, Add, ...).
    pub attached: Vec<NodeId>,
    /// Tensors loaded from global memory at partition entry.
    pub entries: Vec<TensorTransfer>,
    /// Tensors stored to global memory at partition exit.
    pub exits: Vec<TensorTransfer>,
    /// VFU element-ops per sample (attached layers + partial-sum
    /// reductions).
    pub vfu_elements_per_sample: usize,
    /// Bytes per sample moved core-to-core inside the partition.
    pub intra_traffic_bytes_per_sample: usize,
    /// Core assignment of replicated slice instances (filled by the
    /// replication optimizer).
    pub packing: Option<Packing>,
}

impl PartitionPlan {
    /// Total crossbars including replication.
    pub fn replicated_crossbars(&self) -> usize {
        self.slices.iter().map(NodeSlice::replicated_crossbars).sum()
    }

    /// Total weight bits written during the replace phase (replication
    /// included).
    pub fn replicated_weight_bits(&self) -> usize {
        self.slices.iter().map(NodeSlice::replicated_weight_bits).sum()
    }

    /// Weight bytes streamed from DRAM during the replace phase.
    ///
    /// Replicas are written from a single DRAM stream (broadcast on
    /// chip), so DRAM traffic is *not* multiplied by replication.
    pub fn weight_load_bytes(&self) -> usize {
        self.slices.iter().map(|s| s.weight_bits.div_ceil(8)).sum()
    }

    /// Entry bytes per sample.
    pub fn entry_bytes_per_sample(&self) -> usize {
        self.entries.iter().map(|t| t.bytes_per_sample).sum()
    }

    /// Exit bytes per sample.
    pub fn exit_bytes_per_sample(&self) -> usize {
        self.exits.iter().map(|t| t.bytes_per_sample).sum()
    }

    /// The pipeline-bottleneck MVM wave count per sample at current
    /// replication.
    pub fn bottleneck_waves(&self) -> usize {
        self.slices.iter().map(NodeSlice::waves_per_sample).max().unwrap_or(0)
    }

    /// Sum of per-stage waves (pipeline fill time for one sample).
    pub fn total_waves(&self) -> usize {
        self.slices.iter().map(NodeSlice::waves_per_sample).sum()
    }

    /// Crossbar activations per sample (replication-invariant).
    pub fn activations_per_sample(&self) -> usize {
        self.slices.iter().map(|s| s.activations_per_sample).sum()
    }
}

/// Precomputed, group-independent planning state for one
/// `(network, decomposition)` pair.
///
/// The key fact behind it: a partition's plan depends **only on its
/// own `[start, end)` unit span**, never on where the group's other
/// cuts fall. Slices are the units inside the span; a non-crossbar
/// node attaches to the span containing its latest-produced transitive
/// input's *unit position* (a group-independent number, since the
/// unit→partition map is monotone); and entries/exits reduce to
/// "is this producer/consumer wholly (or partially) inside the span".
/// The planner precomputes those per-node positions once, after which
/// [`SegmentPlanner::plan`] resolves any contiguous segment in
/// isolation — the foundation of the fitness cache's segment memo,
/// which reuses one segment's plan across every partition group in a
/// GA population that shares it.
pub struct SegmentPlanner<'a> {
    network: &'a Network,
    seq: &'a UnitSequence,
    /// `(node, start, end)` per weighted node, in unit order.
    node_ranges: Vec<(NodeId, usize, usize)>,
    /// Unit index -> index into `node_ranges` of the owning node.
    unit_owner: Vec<usize>,
    /// Production unit position of every node (by `NodeId::index`):
    /// a weighted node produces at its last unit; an Input "before
    /// unit 0"; any other node at the max over its inputs.
    produced_pos: Vec<usize>,
    /// Non-weighted, non-Input nodes sorted by (production position,
    /// id): the nodes attached to a segment are one contiguous range.
    attach_order: Vec<(usize, NodeId)>,
}

// The planner is shared by `&` across the fitness batch fan-out and
// the GA's speculative pool; it must stay immutable shared state
// (references plus owned plain data, no interior mutability).
#[allow(dead_code)]
fn _planner_is_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<SegmentPlanner<'static>>();
}

impl<'a> SegmentPlanner<'a> {
    /// Number of partition units in the decomposition — the segment
    /// key space is `(start, end)` spans over these units, so callers
    /// sizing memo tables cap reservations at `n·(n+1)/2`.
    pub fn unit_count(&self) -> usize {
        self.seq.len()
    }

    /// Precomputes the planning state (one pass over the network).
    pub fn new(network: &'a Network, seq: &'a UnitSequence) -> Self {
        let node_ranges: Vec<(NodeId, usize, usize)> =
            seq.node_ranges().map(|(n, r)| (n, r.start, r.end)).collect();
        let mut unit_owner = vec![usize::MAX; seq.len()];
        for (ri, &(_, start, end)) in node_ranges.iter().enumerate() {
            for slot in &mut unit_owner[start..end] {
                *slot = ri;
            }
        }
        let mut produced_pos = vec![0usize; network.nodes().len()];
        for &(node, _, end) in &node_ranges {
            produced_pos[node.index()] = end - 1;
        }
        let mut attach_order = Vec::new();
        for node in network.nodes() {
            if node.kind.is_weighted() || matches!(node.kind, LayerKind::Input { .. }) {
                continue;
            }
            // Inputs precede their consumers (topological id order),
            // so transitive positions are already resolved.
            let mut latest = 0usize;
            for &input in &node.inputs {
                latest = latest.max(produced_pos[input.index()]);
            }
            produced_pos[node.id.index()] = latest;
            attach_order.push((latest, node.id));
        }
        attach_order.sort_unstable();
        Self { network, seq, node_ranges, unit_owner, produced_pos, attach_order }
    }

    /// `true` when `id` is computed *wholly* inside `[start, end)`:
    /// a weighted node with its full unit range in the span, or a
    /// non-weighted node attached to it (Input nodes never are).
    fn computed_whole(&self, id: NodeId, start: usize, end: usize) -> bool {
        let node = self.network.node(id);
        if node.kind.is_weighted() {
            match self.seq.range_of(id) {
                Some(r) => start <= r.start && r.end <= end,
                None => false,
            }
        } else if matches!(node.kind, LayerKind::Input { .. }) {
            false
        } else {
            let pos = self.produced_pos[id.index()];
            (start..end).contains(&pos)
        }
    }

    /// Resolves the plan of the `[start, end)` segment as partition
    /// number `index`. Identical to the corresponding plan of any
    /// [`GroupPlan::build`] whose group cuts this exact span.
    pub fn plan(&self, index: usize, partition: Partition) -> PartitionPlan {
        let (start, end) = (partition.start, partition.end);
        let activation_bits = 4; // matches chip precision; see Estimator.
        let network = self.network;
        let seq = self.seq;

        // 1. Slices: walk the span's units, one slice per maximal run
        //    of a single weighted node.
        let mut slices = Vec::new();
        let mut i = start;
        while i < end {
            let (node_id, node_start, node_end) = self.node_ranges[self.unit_owner[i]];
            debug_assert!((node_start..node_end).contains(&i));
            let node = network.node(node_id);
            let node_bits: usize = seq.span_weight_bits(node_start..node_end);
            let span_end = node_end.min(end);
            let units = i..span_end;
            let crossbars = seq.span_crossbars(units.clone());
            let weight_bits = seq.span_weight_bits(units.clone());
            let unit_crossbars: Vec<usize> = units.clone().map(|u| seq.unit(u).crossbars).collect();
            let unit_weight_bits: Vec<usize> =
                units.clone().map(|u| seq.unit(u).weight_bits).collect();
            let spatial = seq.unit(i).mvms_per_sample;
            let row_chunks_extra =
                seq.units()[units.clone()].iter().filter(|u| u.row_split).count().saturating_sub(1);
            let out_elems = node.output_shape.elements();
            let fraction = if node_bits == 0 { 1.0 } else { weight_bits as f64 / node_bits as f64 };
            slices.push(NodeSlice {
                node: node_id,
                units: units.clone(),
                crossbars,
                weight_bits,
                unit_crossbars,
                unit_weight_bits,
                fraction,
                mvms_per_sample: spatial,
                activations_per_sample: spatial * crossbars,
                reduction_elements: row_chunks_extra
                    * ((out_elems as f64 * fraction).ceil() as usize),
                replication: 1,
            });
            i = span_end;
        }

        // 2. Attached non-crossbar nodes: production position inside
        //    the span (paper §III-B2 — the latest-produced input).
        let lo = self.attach_order.partition_point(|&(pos, _)| pos < start);
        let hi = self.attach_order.partition_point(|&(pos, _)| pos < end);
        let mut attached: Vec<NodeId> =
            self.attach_order[lo..hi].iter().map(|&(_, id)| id).collect();
        attached.sort_unstable();

        // 3. Entries, exits, VFU work, intra-partition traffic.
        let mut entry_bytes: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut exit_bytes: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut intra = 0usize;
        let mut vfu = 0usize;

        // Consumers of each slice/attached node.
        let local_nodes: Vec<NodeId> =
            slices.iter().map(|s| s.node).chain(attached.iter().copied()).collect();

        for &id in &local_nodes {
            let node = network.node(id);
            // Inputs: on-chip if produced (whole) here, else DRAM.
            for &input in &node.inputs {
                let in_node = network.node(input);
                let bytes = in_node.output_shape.bytes(activation_bits);
                if self.computed_whole(input, start, end) {
                    intra += bytes;
                } else {
                    // Partially-local producers only need the remote
                    // fraction.
                    let local_fraction =
                        slices.iter().find(|s| s.node == input).map(|s| s.fraction).unwrap_or(0.0);
                    let remote = ((1.0 - local_fraction) * bytes as f64).ceil() as usize;
                    if remote > 0 {
                        let e = entry_bytes.entry(input).or_insert(0);
                        *e = (*e).max(remote);
                    }
                    if local_fraction > 0.0 {
                        intra += bytes - ((1.0 - local_fraction) * bytes as f64).ceil() as usize;
                    }
                }
            }
            // VFU work for attached layers.
            if !node.kind.is_weighted() {
                vfu += vfu_elements(network, id);
            }
        }
        for slice in &slices {
            vfu += slice.reduction_elements;
        }

        // Exits: a locally computed value leaves the chip if any
        // consumer is not computed here, if it is a network output,
        // or if it is a partial slice (stored for later reassembly).
        for &id in &local_nodes {
            let node = network.node(id);
            let bytes = node.output_shape.bytes(activation_bits);
            let slice_fraction = slices.iter().find(|s| s.node == id).map(|s| s.fraction);
            let is_partial = slice_fraction.map(|f| f < 1.0).unwrap_or(false);
            let consumers = network.consumers(id);
            let leaves = consumers.is_empty()
                || consumers.iter().any(|&c| !local_consumer(network, c, &local_nodes));
            if is_partial {
                let frac = slice_fraction.unwrap_or(1.0);
                exit_bytes.insert(id, (bytes as f64 * frac).ceil() as usize);
            } else if leaves {
                exit_bytes.insert(id, bytes);
            }
        }

        PartitionPlan {
            index,
            partition,
            slices,
            attached,
            entries: entry_bytes
                .into_iter()
                .map(|(node, bytes_per_sample)| TensorTransfer { node, bytes_per_sample })
                .collect(),
            exits: exit_bytes
                .into_iter()
                .map(|(node, bytes_per_sample)| TensorTransfer { node, bytes_per_sample })
                .collect(),
            vfu_elements_per_sample: vfu,
            intra_traffic_bytes_per_sample: intra,
            packing: None,
        }
    }
}

/// Plans for every partition of a group, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupPlan {
    plans: Vec<PartitionPlan>,
}

impl GroupPlan {
    /// Resolves `group` against the network and decomposition.
    ///
    /// Attachment rule (paper §III-B2): each non-crossbar node executes
    /// in the partition of its *latest-produced* input — found by
    /// walking the dependence graph backwards — so Add/Concat nodes
    /// land where their last operand becomes available.
    ///
    /// Each partition's plan is a pure function of its unit span (see
    /// [`SegmentPlanner`]); callers resolving many groups over one
    /// network should hold a planner and memoize per segment instead.
    pub fn build(network: &Network, seq: &UnitSequence, group: &PartitionGroup) -> Self {
        let planner = SegmentPlanner::new(network, seq);
        Self {
            plans: (0..group.partition_count())
                .map(|k| planner.plan(k, group.partition(k)))
                .collect(),
        }
    }

    /// Assembles a group plan from already-resolved partition plans
    /// (the fitness cache's segment-memo path). Plans must be in
    /// execution order with correct `index` fields.
    pub(crate) fn from_plans(plans: Vec<PartitionPlan>) -> Self {
        debug_assert!(plans.iter().enumerate().all(|(k, p)| p.index == k));
        Self { plans }
    }

    /// The plans in execution order.
    pub fn plans(&self) -> &[PartitionPlan] {
        &self.plans
    }

    /// Mutable access for the replication optimizer.
    pub fn plans_mut(&mut self) -> &mut [PartitionPlan] {
        &mut self.plans
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// `true` if the group had no partitions (cannot happen for valid
    /// groups).
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

fn local_consumer(network: &Network, consumer: NodeId, local: &[NodeId]) -> bool {
    let _ = network;
    local.contains(&consumer)
}

/// VFU element-ops to execute one non-crossbar node per sample.
fn vfu_elements(network: &Network, id: NodeId) -> usize {
    let node = network.node(id);
    match node.kind {
        LayerKind::Pool2d { kernel, .. } => node.output_shape.elements() * kernel * kernel,
        LayerKind::GlobalAvgPool => {
            // Reduce each channel's full spatial extent.
            network.node(node.inputs[0]).output_shape.elements()
        }
        LayerKind::Softmax => node.output_shape.elements() * 3, // exp, sum, div
        LayerKind::Flatten => 0,
        _ => node.output_shape.elements(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::validity::ValidityMap;
    use pim_arch::ChipSpec;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(net: &Network, chip: &ChipSpec, seed: u64) -> (UnitSequence, PartitionGroup) {
        let seq = decompose(net, chip);
        let validity = ValidityMap::build(&seq, chip);
        let mut rng = StdRng::seed_from_u64(seed);
        let group = PartitionGroup::random(&mut rng, &validity);
        (seq, group)
    }

    #[test]
    fn slices_cover_every_unit_once() {
        let net = zoo::resnet18();
        let chip = ChipSpec::chip_s();
        let (seq, group) = setup(&net, &chip, 11);
        let plan = GroupPlan::build(&net, &seq, &group);
        let mut covered = vec![0usize; seq.len()];
        for p in plan.plans() {
            for s in &p.slices {
                for i in s.units.clone() {
                    covered[i] += 1;
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "every unit in exactly one slice");
    }

    #[test]
    fn every_nonweighted_node_attached_exactly_once() {
        let net = zoo::squeezenet();
        let chip = ChipSpec::chip_s();
        let (seq, group) = setup(&net, &chip, 3);
        let plan = GroupPlan::build(&net, &seq, &group);
        let mut count: BTreeMap<NodeId, usize> = BTreeMap::new();
        for p in plan.plans() {
            for &a in &p.attached {
                *count.entry(a).or_insert(0) += 1;
            }
        }
        let expected = net
            .nodes()
            .iter()
            .filter(|n| !n.kind.is_weighted() && !matches!(n.kind, LayerKind::Input { .. }))
            .count();
        assert_eq!(count.len(), expected);
        assert!(count.values().all(|&c| c == 1));
    }

    #[test]
    fn first_partition_loads_network_input() {
        let net = zoo::tiny_cnn();
        let chip = ChipSpec::chip_m();
        let (seq, group) = setup(&net, &chip, 5);
        let plan = GroupPlan::build(&net, &seq, &group);
        let first = &plan.plans()[0];
        let input_id = net.input_nodes().next().unwrap().id;
        assert!(
            first.entries.iter().any(|t| t.node == input_id),
            "partition 0 must load the input: {:?}",
            first.entries
        );
    }

    #[test]
    fn last_partition_stores_network_output() {
        let net = zoo::tiny_cnn();
        let chip = ChipSpec::chip_m();
        let (seq, group) = setup(&net, &chip, 5);
        let plan = GroupPlan::build(&net, &seq, &group);
        let stored: Vec<NodeId> =
            plan.plans().iter().flat_map(|p| p.exits.iter().map(|t| t.node)).collect();
        let output_id = net.output_nodes().next().unwrap().id;
        assert!(stored.contains(&output_id), "network output must be stored");
    }

    #[test]
    fn multi_partition_group_has_intermediate_transfers() {
        let net = zoo::resnet18();
        let chip = ChipSpec::chip_s();
        let (seq, group) = setup(&net, &chip, 7);
        let plan = GroupPlan::build(&net, &seq, &group);
        assert!(plan.len() > 1, "ResNet18 needs multiple partitions on Chip-S");
        // Every partition after the first loads something; every
        // partition before the last stores something.
        for p in &plan.plans()[1..] {
            assert!(!p.entries.is_empty(), "partition {} has no entries", p.index);
        }
        for p in &plan.plans()[..plan.len() - 1] {
            assert!(!p.exits.is_empty(), "partition {} has no exits", p.index);
        }
    }

    #[test]
    fn residual_spanning_cut_creates_multiple_entries() {
        // Force tiny_resnet into per-node partitions so residual edges
        // cross partitions: each Add then needs its shortcut operand
        // loaded -> multiple entry tensors somewhere.
        let net = zoo::tiny_resnet();
        let chip = ChipSpec::chip_s();
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        // One partition per unit where possible.
        let cuts: Vec<usize> = (1..seq.len()).collect();
        let group = PartitionGroup::from_cuts(cuts, &validity).expect("unit-wise split valid");
        let plan = GroupPlan::build(&net, &seq, &group);
        let multi_entry = plan.plans().iter().filter(|p| p.entries.len() >= 2).count();
        assert!(multi_entry > 0, "residuals must create multi-entry partitions");
    }

    #[test]
    fn fractions_sum_to_one_per_node() {
        let net = zoo::vgg16();
        let chip = ChipSpec::chip_s();
        let (seq, group) = setup(&net, &chip, 13);
        let plan = GroupPlan::build(&net, &seq, &group);
        let mut frac: BTreeMap<NodeId, f64> = BTreeMap::new();
        for p in plan.plans() {
            for s in &p.slices {
                *frac.entry(s.node).or_insert(0.0) += s.fraction;
            }
        }
        for (node, f) in frac {
            assert!((f - 1.0).abs() < 1e-9, "{node} fractions sum to {f}");
        }
    }

    #[test]
    fn single_partition_squeezenet_has_one_entry_one_exit() {
        let net = zoo::squeezenet();
        let chip = ChipSpec::chip_s();
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let group = PartitionGroup::from_cuts(vec![], &validity).expect("fits whole");
        let plan = GroupPlan::build(&net, &seq, &group);
        assert_eq!(plan.len(), 1);
        let p = &plan.plans()[0];
        assert_eq!(p.entries.len(), 1, "only the network input enters");
        assert_eq!(p.exits.len(), 1, "only the network output leaves");
    }
}
