//! Batch-size auto-tuning (the §II-B trade-off, automated).
//!
//! The paper: "the batch size should be kept relatively small to
//! balance the throughput and the end-to-end inference latency."
//! [`tune_batch`] sweeps candidate batch sizes, compiling at each
//! (partitioning interacts with the batch, so each candidate gets its
//! own compilation), and selects per a user [`TuneObjective`].

use crate::compiler::{CompileOptions, CompiledModel, Compiler};
use crate::error::CompileError;
use pim_model::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the batch tuner optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TuneObjective {
    /// Maximize throughput subject to an end-to-end latency budget
    /// (milliseconds). Samples wait for their whole batch, so larger
    /// batches trade latency for throughput.
    ThroughputUnderLatencyMs(f64),
    /// Minimize EDP per inference.
    MinEdp,
    /// Maximize throughput outright (will pick the largest batch).
    MaxThroughput,
}

/// One evaluated batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPoint {
    /// Candidate batch size.
    pub batch: usize,
    /// Estimated throughput, inf/s.
    pub throughput_ips: f64,
    /// End-to-end latency, ms.
    pub latency_ms: f64,
    /// Energy per inference, µJ.
    pub energy_per_inference_uj: f64,
    /// EDP per inference, µJ·ms.
    pub edp: f64,
}

/// Tuning outcome: the chosen compilation plus the whole sweep.
pub struct TuneResult {
    /// The winning batch size.
    pub batch: usize,
    /// The compilation at the winning batch.
    pub compiled: CompiledModel,
    /// All evaluated points in ascending batch order.
    pub sweep: Vec<BatchPoint>,
}

impl fmt::Debug for TuneResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TuneResult")
            .field("batch", &self.batch)
            .field("sweep", &self.sweep)
            .finish_non_exhaustive()
    }
}

/// Sweeps `candidates` (typically powers of two up to 16, as in the
/// paper) and returns the best compilation under `objective`.
///
/// # Errors
///
/// Propagates the first [`CompileError`]; returns
/// [`CompileError::InvalidOptions`] when `candidates` is empty or no
/// candidate satisfies the objective's constraint.
pub fn tune_batch(
    compiler: &Compiler,
    network: &Network,
    base_options: &CompileOptions,
    candidates: &[usize],
    objective: TuneObjective,
) -> Result<TuneResult, CompileError> {
    if candidates.is_empty() {
        return Err(CompileError::InvalidOptions("no batch candidates".into()));
    }
    let mut sweep = Vec::with_capacity(candidates.len());
    let mut evaluated: Vec<(usize, CompiledModel)> = Vec::with_capacity(candidates.len());
    for &batch in candidates {
        let options = base_options.clone().with_batch_size(batch);
        let compiled = compiler.compile(network, &options)?;
        let est = compiled.estimate();
        sweep.push(BatchPoint {
            batch,
            throughput_ips: est.throughput_ips(),
            latency_ms: est.latency_ms(),
            energy_per_inference_uj: est.energy_per_inference_uj(),
            edp: est.edp_per_inference(),
        });
        evaluated.push((batch, compiled));
    }

    let winner = match objective {
        TuneObjective::ThroughputUnderLatencyMs(budget) => sweep
            .iter()
            .enumerate()
            .filter(|(_, p)| p.latency_ms <= budget)
            .max_by(|a, b| a.1.throughput_ips.total_cmp(&b.1.throughput_ips))
            .map(|(i, _)| i),
        TuneObjective::MinEdp => {
            sweep.iter().enumerate().min_by(|a, b| a.1.edp.total_cmp(&b.1.edp)).map(|(i, _)| i)
        }
        TuneObjective::MaxThroughput => sweep
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.throughput_ips.total_cmp(&b.1.throughput_ips))
            .map(|(i, _)| i),
    };
    let Some(idx) = winner else {
        return Err(CompileError::InvalidOptions(format!(
            "no batch size satisfies {objective:?} (latencies: {:?} ms)",
            sweep.iter().map(|p| p.latency_ms).collect::<Vec<_>>()
        )));
    };
    let (batch, compiled) = evaluated.swap_remove(idx);
    Ok(TuneResult { batch, compiled, sweep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaParams, Strategy};
    use pim_arch::ChipSpec;
    use pim_model::zoo;

    fn setup() -> (Compiler, Network, CompileOptions) {
        let compiler = Compiler::new(ChipSpec::chip_s());
        let net = zoo::resnet18();
        let options = CompileOptions::new()
            .with_strategy(Strategy::Greedy)
            .with_ga(GaParams::fast())
            .with_seed(1);
        (compiler, net, options)
    }

    #[test]
    fn max_throughput_picks_largest_batch() {
        let (compiler, net, options) = setup();
        let result =
            tune_batch(&compiler, &net, &options, &[1, 2, 4, 8, 16], TuneObjective::MaxThroughput)
                .expect("tunes");
        assert_eq!(result.batch, 16, "throughput grows with batch");
        assert_eq!(result.sweep.len(), 5);
    }

    #[test]
    fn latency_budget_caps_the_batch() {
        let (compiler, net, options) = setup();
        // First find the batch-16 latency, then set a budget below it.
        let unconstrained =
            tune_batch(&compiler, &net, &options, &[1, 16], TuneObjective::MaxThroughput)
                .expect("tunes");
        let b16_latency = unconstrained.sweep.iter().find(|p| p.batch == 16).unwrap().latency_ms;
        let result = tune_batch(
            &compiler,
            &net,
            &options,
            &[1, 2, 4, 8, 16],
            TuneObjective::ThroughputUnderLatencyMs(b16_latency * 0.9),
        )
        .expect("tunes");
        assert!(result.batch < 16, "budget must exclude batch 16");
        let chosen = result.sweep.iter().find(|p| p.batch == result.batch).unwrap();
        assert!(chosen.latency_ms <= b16_latency * 0.9);
    }

    #[test]
    fn impossible_budget_errors() {
        let (compiler, net, options) = setup();
        let err = tune_batch(
            &compiler,
            &net,
            &options,
            &[1, 2],
            TuneObjective::ThroughputUnderLatencyMs(1e-9),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::InvalidOptions(_)));
    }

    #[test]
    fn min_edp_is_an_interior_or_boundary_point() {
        let (compiler, net, options) = setup();
        let result =
            tune_batch(&compiler, &net, &options, &[1, 2, 4, 8, 16], TuneObjective::MinEdp)
                .expect("tunes");
        let best = result.sweep.iter().find(|p| p.batch == result.batch).unwrap();
        for p in &result.sweep {
            assert!(best.edp <= p.edp + 1e-9);
        }
    }

    #[test]
    fn empty_candidates_error() {
        let (compiler, net, options) = setup();
        assert!(matches!(
            tune_batch(&compiler, &net, &options, &[], TuneObjective::MaxThroughput),
            Err(CompileError::InvalidOptions(_))
        ));
    }
}
