//! Baseline partitioning schemes (paper §IV-A2).
//!
//! * **Greedy** packs as many consecutive partition units as possible
//!   into each partition, tracking the remaining chip footprint.
//! * **Layerwise** maps one Conv/Linear layer per partition (the
//!   trailing non-crossbar nodes ride along with their producer, as in
//!   all schemes); layers exceeding the chip are chopped at the widest
//!   valid span.

use crate::decompose::UnitSequence;
use crate::partition::PartitionGroup;
use crate::validity::ValidityMap;

/// Greedy partitioning: each partition takes the maximal valid span
/// from its start position.
///
/// # Example
///
/// ```
/// use compass::{baselines, decompose, ValidityMap};
/// use pim_arch::ChipSpec;
/// use pim_model::zoo;
///
/// let chip = ChipSpec::chip_s();
/// let seq = decompose(&zoo::resnet18(), &chip);
/// let map = ValidityMap::build(&seq, &chip);
/// let group = baselines::greedy(&map);
/// assert!(group.partition_count() >= 2); // ResNet18 > Chip-S capacity
/// ```
pub fn greedy(validity: &ValidityMap) -> PartitionGroup {
    let m = validity.len();
    assert!(m > 0, "cannot partition an empty unit sequence");
    let mut cuts = Vec::new();
    let mut start = 0usize;
    while start < m {
        let end = validity.max_end(start);
        if end < m {
            cuts.push(end);
        }
        start = end;
    }
    PartitionGroup::from_cuts(cuts, validity).expect("greedy spans are maximal valid spans")
}

/// Layerwise partitioning: one weighted layer per partition; oversized
/// layers split into maximal valid sub-spans.
pub fn layerwise(seq: &UnitSequence, validity: &ValidityMap) -> PartitionGroup {
    let m = validity.len();
    assert!(m > 0, "cannot partition an empty unit sequence");
    let mut cuts = Vec::new();
    for (_, range) in seq.node_ranges() {
        let mut start = range.start;
        while start < range.end {
            let end = validity.max_end(start).min(range.end);
            if end < m {
                cuts.push(end);
            }
            start = end;
        }
    }
    // The loop appends each layer's final boundary; the last layer's
    // boundary equals M and is excluded above. Dedup guards against
    // node ranges that already ended on a previous cut.
    cuts.dedup();
    PartitionGroup::from_cuts(cuts, validity)
        .expect("layerwise spans are within single valid spans")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use pim_arch::ChipSpec;
    use pim_model::zoo;

    fn setup(chip: &ChipSpec, net: &pim_model::Network) -> (UnitSequence, ValidityMap) {
        let seq = decompose(net, chip);
        let validity = ValidityMap::build(&seq, chip);
        (seq, validity)
    }

    #[test]
    fn greedy_partitions_are_maximal() {
        let chip = ChipSpec::chip_s();
        let (_, validity) = setup(&chip, &zoo::vgg16());
        let group = greedy(&validity);
        for p in group.partitions() {
            // Each greedy span reaches its max_end (except possibly at
            // M where it just ends).
            let max = validity.max_end(p.start);
            assert!(p.end == max || p.end == validity.len());
        }
    }

    #[test]
    fn greedy_single_partition_when_model_fits() {
        let chip = ChipSpec::chip_s();
        let (_, validity) = setup(&chip, &zoo::squeezenet());
        let group = greedy(&validity);
        assert_eq!(group.partition_count(), 1, "SqueezeNet fits Chip-S entirely");
    }

    #[test]
    fn layerwise_has_one_partition_per_layer_when_layers_fit() {
        let chip = ChipSpec::chip_m();
        let net = zoo::squeezenet();
        let (seq, validity) = setup(&chip, &net);
        let group = layerwise(&seq, &validity);
        // Every SqueezeNet conv fits Chip-M individually: partitions =
        // weighted layers = 26.
        assert_eq!(group.partition_count(), 26);
        // Each partition covers exactly one node's units.
        for p in group.partitions() {
            let nodes = seq.nodes_in_span(p.range());
            assert_eq!(nodes.len(), 1, "partition {p} spans {nodes:?}");
        }
    }

    #[test]
    fn layerwise_splits_oversized_layers() {
        let chip = ChipSpec::chip_s();
        let net = zoo::vgg16();
        let (seq, validity) = setup(&chip, &net);
        let group = layerwise(&seq, &validity);
        let weighted_layers = seq.node_ranges().count();
        assert!(
            group.partition_count() > weighted_layers,
            "fc6 alone needs several partitions: {} vs {} layers",
            group.partition_count(),
            weighted_layers
        );
    }

    #[test]
    fn layerwise_never_mixes_two_layers() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let (seq, validity) = setup(&chip, &net);
        let group = layerwise(&seq, &validity);
        for p in group.partitions() {
            assert_eq!(seq.nodes_in_span(p.range()).len(), 1);
        }
    }

    #[test]
    fn greedy_has_fewer_partitions_than_layerwise() {
        let chip = ChipSpec::chip_m();
        let net = zoo::resnet18();
        let (seq, validity) = setup(&chip, &net);
        let g = greedy(&validity).partition_count();
        let l = layerwise(&seq, &validity).partition_count();
        assert!(g < l, "greedy {g} should be coarser than layerwise {l}");
    }
}
