//! # compass — a compiler for resource-constrained crossbar PIM DNN accelerators
//!
//! Reproduction of *COMPASS: A Compiler Framework for
//! Resource-Constrained Crossbar-Array Based In-Memory Deep Learning
//! Accelerators* (DATE 2025). COMPASS compiles DNNs **larger than the
//! chip's in-memory footprint** by partitioning the network into
//! chip-sized partitions that execute sequentially with *weight
//! replacement* between them, while layers inside a partition pipeline
//! with *weight replication* for stage balance.
//!
//! The pipeline (paper Fig. 3):
//!
//! 1. **Partition generation** ([`mod@decompose`], [`validity`]) — weight
//!    matrices split along the output dimension into *partition units*
//!    sized for one core; a validity map precomputes which unit spans
//!    fit the chip.
//! 2. **Partition optimization** ([`ga`], [`fitness`], [`mutation`],
//!    [`replication`], [`estimate`]) — a genetic algorithm over
//!    partition groups; each partition is optimized on-chip
//!    (replication + core mapping) and scored with an analytical
//!    latency/energy model; the *partition score* steers mutations
//!    (merge / split / move / fixed-random).
//! 3. **Instruction scheduling** ([`scheduler`]) — per-core
//!    `pim-isa` programs with weight writes and inter-partition
//!    activation load/stores.
//!
//! Baseline partitioners (*greedy*, *layerwise*) live in [`baselines`].
//!
//! # Example
//!
//! ```
//! use compass::{Compiler, CompileOptions};
//! use pim_arch::ChipSpec;
//! use pim_model::zoo;
//!
//! # fn main() -> Result<(), compass::CompileError> {
//! let compiler = Compiler::new(ChipSpec::chip_m());
//! let options = CompileOptions::new().with_batch_size(4).with_seed(7);
//! let compiled = compiler.compile(&zoo::squeezenet(), &options)?;
//! assert!(!compiled.partitions().is_empty());
//! assert!(compiled.estimate().throughput_ips() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod compiler;
pub mod decompose;
pub mod estimate;
pub mod fitness;
pub mod ga;
pub mod memo;
pub mod mutation;
pub mod packing;
pub mod partition;
pub mod plan;
pub mod replication;
pub mod report;
pub mod scheduler;
pub mod system;
pub mod tuner;
pub mod validity;

mod error;

pub use compiler::{CompileOptions, CompiledModel, Compiler, FitnessKind, Strategy};
pub use decompose::{decompose, PartitionUnit, UnitSequence};
pub use error::CompileError;
pub use estimate::{GroupEstimate, PartitionEstimate};
pub use fitness::ServingSlo;
pub use ga::{GaParams, GaTrace, GenerationRecord};
pub use memo::MemoShards;
pub use partition::{Partition, PartitionGroup};
pub use plan::{GroupPlan, PartitionPlan};
pub use report::CompileReport;
pub use system::{
    estimate_system_makespan, fan_out_allocation, plan_system, SystemChipPlan, SystemSchedule,
    SystemStrategy, SystemTarget,
};
pub use tuner::{tune_batch, TuneObjective, TuneResult};
pub use validity::ValidityMap;

/// Re-export of the memory timing-fidelity selector shared with
/// `pim-arch` and `pim-sim`.
pub use pim_arch::TimingMode;

/// Re-export of the intra-chip stage dispatch selector shared with
/// `pim-arch` and `pim-sim`.
pub use pim_arch::ScheduleMode;

/// Re-export of the multi-chip topology description shared with
/// `pim-arch` and `pim-sim`.
pub use pim_arch::Topology;
