//! Sharded concurrent memo tables for the GA's fitness pipeline.
//!
//! [`MemoShards`] splits one hash map into a power-of-two array of
//! `RwLock<FxHashMap>` shards, picked by key hash. The hot read path
//! (a memo *hit*) takes only a shared read lock on one shard, so a
//! whole population's worth of concurrent lookups never contend with
//! each other; a write lock is taken only on miss-insert, and only on
//! the one shard owning the key. Inserts are *first-writer-wins*:
//! when two threads race to memoize the same key, the first value is
//! retained and handed back to both — which is only sound because
//! every value stored here is a pure function of its key, so racing
//! writers always carry interchangeable values.

use fxhash::{FxHashMap, FxHasher};
use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

/// Default shard count: plenty of spread for tens of worker threads
/// without wasting locks on tiny populations.
const DEFAULT_SHARDS: usize = 32;

/// A concurrent insert-mostly memo map sharded by key hash. See the
/// module docs for the locking discipline and the purity requirement
/// on values.
pub struct MemoShards<K, V> {
    shards: Box<[RwLock<FxHashMap<K, V>>]>,
}

impl<K: Hash + Eq, V: Clone> Default for MemoShards<K, V> {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl<K: Hash + Eq, V: Clone> MemoShards<K, V> {
    /// A memo with `shard_count` shards (rounded up to a power of
    /// two, clamped to `1..=1024`).
    pub fn with_shards(shard_count: usize) -> Self {
        let count = shard_count.next_power_of_two().clamp(1, 1024);
        let shards = (0..count).map(|_| RwLock::new(FxHashMap::default())).collect();
        Self { shards }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lives in. Exposed so tests can construct
    /// same-shard key sets and hammer a single lock.
    pub fn shard_index<Q>(&self, key: &Q) -> usize
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        // Multiply-shift range reduction keeps the well-mixed high
        // bits of the Fx hash and never shifts by the full width.
        ((hasher.finish() as u128 * self.shards.len() as u128) >> 64) as usize
    }

    fn shard_for<Q>(&self, key: &Q) -> &RwLock<FxHashMap<K, V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        &self.shards[self.shard_index(key)]
    }

    /// Recalls a memoized value (clones the stored `V`, which callers
    /// keep cheap — an `Arc` here — so the read lock is held only for
    /// the lookup).
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).read().expect("memo shard poisoned").get(key).cloned()
    }

    /// Whether a key is memoized.
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).read().expect("memo shard poisoned").contains_key(key)
    }

    /// Memoizes `value` under `key` unless the key is already present
    /// (first writer wins), and returns the value the memo retains —
    /// callers must continue with the returned value, not their
    /// argument, so every holder shares the one stored allocation.
    pub fn insert(&self, key: K, value: V) -> V {
        let mut shard =
            self.shards[self.shard_index::<K>(&key)].write().expect("memo shard poisoned");
        shard.entry(key).or_insert(value).clone()
    }

    /// Drops one entry, returning the retained value if it was
    /// present.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).write().expect("memo shard poisoned").remove(key)
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().expect("memo shard poisoned").len()).sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().expect("memo shard poisoned").is_empty())
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.write().expect("memo shard poisoned").clear();
        }
    }

    /// Pre-sizes every shard for `additional` more entries spread
    /// evenly, so a batch of inserts never rehashes mid-flight.
    pub fn reserve(&self, additional: usize) {
        let per_shard = additional / self.shards.len() + 1;
        for shard in self.shards.iter() {
            shard.write().expect("memo shard poisoned").reserve(per_shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove_roundtrip() {
        let memo: MemoShards<(usize, usize), Arc<usize>> = MemoShards::default();
        assert!(memo.is_empty());
        assert_eq!(memo.get(&(1, 2)), None);
        let kept = memo.insert((1, 2), Arc::new(7));
        assert_eq!(*kept, 7);
        assert_eq!(memo.len(), 1);
        assert!(memo.contains(&(1, 2)));
        assert_eq!(*memo.get(&(1, 2)).unwrap(), 7);
        assert_eq!(*memo.remove(&(1, 2)).unwrap(), 7);
        assert!(memo.is_empty());
    }

    #[test]
    fn first_writer_wins() {
        let memo: MemoShards<usize, Arc<usize>> = MemoShards::default();
        let first = memo.insert(9, Arc::new(1));
        let second = memo.insert(9, Arc::new(2));
        assert_eq!(*first, 1);
        assert_eq!(*second, 1, "a later insert must hand back the retained value");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn borrowed_key_lookups() {
        let memo: MemoShards<Arc<[usize]>, Arc<usize>> = MemoShards::default();
        let key: Arc<[usize]> = vec![3, 5, 8].into();
        memo.insert(Arc::clone(&key), Arc::new(42));
        // Lookups by `&[usize]` hash and shard identically to the
        // owned `Arc<[usize]>` key.
        let slice: &[usize] = &[3, 5, 8];
        assert_eq!(memo.shard_index(slice), memo.shard_index::<[usize]>(key.as_ref()));
        assert_eq!(*memo.get(slice).unwrap(), 42);
        assert!(memo.contains(slice));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(MemoShards::<usize, usize>::with_shards(0).shard_count(), 1);
        assert_eq!(MemoShards::<usize, usize>::with_shards(5).shard_count(), 8);
        assert_eq!(MemoShards::<usize, usize>::with_shards(64).shard_count(), 64);
    }

    #[test]
    fn clear_and_reserve() {
        let memo: MemoShards<usize, usize> = MemoShards::with_shards(4);
        memo.reserve(1000);
        for i in 0..100 {
            memo.insert(i, i * i);
        }
        assert_eq!(memo.len(), 100);
        memo.clear();
        assert!(memo.is_empty());
    }

    #[test]
    fn keys_spread_across_shards() {
        let memo: MemoShards<(usize, usize), usize> = MemoShards::with_shards(16);
        let mut hit = vec![false; memo.shard_count()];
        for start in 0..64 {
            for end in start + 1..start + 9 {
                hit[memo.shard_index(&(start, end))] = true;
            }
        }
        let used = hit.iter().filter(|&&h| h).count();
        assert!(used >= memo.shard_count() / 2, "segment keys bunch onto {used} shards");
    }

    /// The ISSUE's shard hammer: many scope workers race get/insert
    /// against keys all living in one shard; every reader must see
    /// the first writer's value and the shard must never lose or
    /// duplicate entries.
    #[cfg(feature = "parallel")]
    #[test]
    fn one_shard_survives_concurrent_hammering() {
        let memo: MemoShards<(usize, usize), Arc<usize>> = MemoShards::with_shards(8);
        // Collect keys that all map to shard 0.
        let keys: Vec<(usize, usize)> = (0..10_000)
            .flat_map(|a| [(a, a + 1), (a, a + 2)])
            .filter(|k| memo.shard_index(k) == 0)
            .take(64)
            .collect();
        assert!(keys.len() >= 32, "need a same-shard key population");
        let observed = std::sync::Mutex::new(Vec::new());
        rayon::scope(|s| {
            for worker in 0..16 {
                let memo = &memo;
                let keys = &keys;
                let observed = &observed;
                s.spawn(move |_| {
                    let mut seen = Vec::new();
                    for round in 0..50 {
                        for (i, key) in keys.iter().enumerate() {
                            // Writers disagree on purpose: the memo's
                            // first-writer-wins contract is what keeps
                            // racing values interchangeable in prod.
                            let kept = memo.insert(*key, Arc::new(worker * 1000 + round));
                            seen.push((i, *kept));
                            let read = memo.get(key).expect("inserted above");
                            seen.push((i, *read));
                        }
                    }
                    observed.lock().unwrap().extend(seen);
                });
            }
        });
        // Exactly one value per key, seen consistently by every
        // worker on every round.
        let mut winner: FxHashMap<usize, usize> = FxHashMap::default();
        for (key_idx, value) in observed.into_inner().unwrap() {
            let entry = winner.entry(key_idx).or_insert(value);
            assert_eq!(*entry, value, "key {key_idx} changed value mid-run");
        }
        assert_eq!(memo.len(), keys.len());
    }
}
