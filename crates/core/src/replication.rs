//! On-chip partition optimization: weight replication + core mapping.
//!
//! Each partition is a sub-model mapped fully on chip, so the paper
//! reuses PIMCOMP-style intra-partition optimization (§III-C1). The
//! pass below implements the equivalent: bottleneck-driven weight
//! replication under the chip's core/crossbar constraints, then
//! first-fit-decreasing core assignment of all replica units.
//!
//! Replicating the pipeline-bottleneck layer divides its MVM waves per
//! sample (`ceil(spatial / r)`), raising pipeline throughput at the
//! cost of extra crossbars and extra weight-write work during the
//! replace phase — the joint trade-off COMPASS's GA explores.

use crate::packing::{pack_ffd, PackItem};
use crate::plan::{GroupPlan, PartitionPlan};
use pim_arch::ChipSpec;

/// Optimizes one partition in place: raises replication counts
/// greedily on the bottleneck slice while everything still packs onto
/// the chip, then records the final core packing.
///
/// Condition 2 of §III-B is honored by construction: replication is a
/// per-slice (per-kernel) property, so all units of a kernel share one
/// count. Condition 3 (chip memory) is enforced by the packing check.
pub fn optimize_partition(plan: &mut PartitionPlan, chip: &ChipSpec) {
    if plan.slices.is_empty() {
        return;
    }
    let mut saturated = vec![false; plan.slices.len()];
    while let Some(bottleneck) = plan
        .slices
        .iter()
        .enumerate()
        .filter(|(i, s)| !saturated[*i] && improves(s.mvms_per_sample, s.replication))
        .max_by_key(|(_, s)| s.waves_per_sample())
    {
        let idx = bottleneck.0;
        // The true pipeline bottleneck may be a saturated slice; if so,
        // replicating others cannot help.
        let best_waves = plan.bottleneck_waves();
        if plan.slices[idx].waves_per_sample() < best_waves {
            break;
        }
        plan.slices[idx].replication += 1;
        if pack(plan, chip).is_none() {
            plan.slices[idx].replication -= 1;
            saturated[idx] = true;
        }
    }
    plan.packing = pack(plan, chip);
    debug_assert!(plan.packing.is_some(), "replication-1 partitions must pack");
}

/// Runs [`optimize_partition`] over every partition of a group.
pub fn optimize_group(group: &mut GroupPlan, chip: &ChipSpec) {
    for plan in group.plans_mut() {
        optimize_partition(plan, chip);
    }
}

fn improves(spatial: usize, replication: usize) -> bool {
    spatial.div_ceil(replication + 1) < spatial.div_ceil(replication)
}

/// One physical crossbar-group instance: a unit of one replica of one
/// slice. The scheduler uses this enumeration, which is exactly the
/// item order behind [`PartitionPlan::packing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaItem {
    /// Index into `plan.slices`.
    pub slice_idx: usize,
    /// Replica number within the slice (`0..replication`).
    pub replica: usize,
    /// Ordinal of the unit within the slice.
    pub unit_ordinal: usize,
    /// Crossbars of this instance.
    pub crossbars: usize,
    /// Weight bits of this instance.
    pub weight_bits: usize,
}

/// Enumerates every replica instance of every unit of `plan`, in the
/// deterministic order used for core packing.
pub fn replica_items(plan: &PartitionPlan) -> Vec<ReplicaItem> {
    let mut items = Vec::new();
    for (slice_idx, slice) in plan.slices.iter().enumerate() {
        for replica in 0..slice.replication {
            for (unit_ordinal, (&crossbars, &weight_bits)) in
                slice.unit_crossbars.iter().zip(&slice.unit_weight_bits).enumerate()
            {
                items.push(ReplicaItem {
                    slice_idx,
                    replica,
                    unit_ordinal,
                    crossbars,
                    weight_bits,
                });
            }
        }
    }
    items
}

/// Packs every replica of every unit of the partition onto the chip.
fn pack(plan: &PartitionPlan, chip: &ChipSpec) -> Option<crate::packing::Packing> {
    let items: Vec<PackItem> = replica_items(plan)
        .iter()
        .enumerate()
        .map(|(id, item)| PackItem { id, crossbars: item.crossbars })
        .collect();
    pack_ffd(&items, chip.cores, chip.crossbars_per_core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::partition::PartitionGroup;
    use crate::validity::ValidityMap;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plans_for(net: &pim_model::Network, chip: &ChipSpec, seed: u64) -> GroupPlan {
        let seq = decompose(net, chip);
        let validity = ValidityMap::build(&seq, chip);
        let mut rng = StdRng::seed_from_u64(seed);
        let group = PartitionGroup::random(&mut rng, &validity);
        GroupPlan::build(net, &seq, &group)
    }

    #[test]
    fn replication_never_violates_chip_capacity() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let mut plans = plans_for(&net, &chip, 42);
        optimize_group(&mut plans, &chip);
        for p in plans.plans() {
            assert!(
                p.replicated_crossbars() <= chip.total_crossbars(),
                "partition {} uses {} xbars > {}",
                p.index,
                p.replicated_crossbars(),
                chip.total_crossbars()
            );
            assert!(p.packing.is_some());
        }
    }

    #[test]
    fn replication_reduces_bottleneck_waves() {
        let chip = ChipSpec::chip_l();
        let net = zoo::squeezenet();
        let mut plans = plans_for(&net, &chip, 7);
        let before: Vec<usize> = plans.plans().iter().map(|p| p.bottleneck_waves()).collect();
        optimize_group(&mut plans, &chip);
        let after: Vec<usize> = plans.plans().iter().map(|p| p.bottleneck_waves()).collect();
        assert!(
            after.iter().zip(&before).all(|(a, b)| a <= b),
            "waves must not increase: {after:?} vs {before:?}"
        );
        assert!(
            after.iter().zip(&before).any(|(a, b)| a < b),
            "a big chip should find replication headroom"
        );
    }

    #[test]
    fn replication_counts_are_at_least_one() {
        let chip = ChipSpec::chip_m();
        let net = zoo::tiny_cnn();
        let mut plans = plans_for(&net, &chip, 9);
        optimize_group(&mut plans, &chip);
        for p in plans.plans() {
            for s in &p.slices {
                assert!(s.replication >= 1);
            }
        }
    }

    #[test]
    fn tight_partition_keeps_replication_one() {
        // A partition that (nearly) fills the chip at r=1 cannot
        // replicate. Greedy partitioning produces exactly this case.
        let chip = ChipSpec::chip_s();
        let net = zoo::vgg16();
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        // Greedy-style first span: maximal from 0.
        let first_end = validity.max_end(0);
        let mut cuts = vec![first_end];
        let mut start = first_end;
        while start < seq.len() {
            let e = validity.max_end(start);
            if e < seq.len() {
                cuts.push(e);
            }
            start = e;
        }
        let group = PartitionGroup::from_cuts(cuts, &validity).unwrap();
        let mut plans = GroupPlan::build(&net, &seq, &group);
        optimize_group(&mut plans, &chip);
        // After optimization a maximal greedy span should leave the
        // chip highly utilized, and never exceed it.
        let p0 = &plans.plans()[0];
        let used = p0.replicated_crossbars();
        assert!(used <= chip.total_crossbars());
        assert!(
            used * 2 > chip.total_crossbars(),
            "maximal span should utilize over half the chip: {used}/{}",
            chip.total_crossbars()
        );
    }

    #[test]
    fn single_mvm_layers_do_not_replicate() {
        // Linear layers run one MVM per sample; replication cannot
        // reduce ceil(1/r), so the optimizer must leave them at 1.
        let chip = ChipSpec::chip_m();
        let net = zoo::mlp(1024, &[512, 256], 10);
        let mut plans = plans_for(&net, &chip, 1);
        optimize_group(&mut plans, &chip);
        for p in plans.plans() {
            for s in &p.slices {
                assert_eq!(s.replication, 1, "linear layer must not replicate");
            }
        }
    }
}
