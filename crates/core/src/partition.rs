//! Partitions and partition groups (chromosomes of the GA).

use crate::validity::ValidityMap;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A partition `P = { xᵢ | start ≤ i < end }`: a contiguous span of
/// partition units executed together on chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    /// First unit (inclusive).
    pub start: usize,
    /// One past the last unit.
    pub end: usize,
}

impl Partition {
    /// Creates a partition covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (empty partitions are meaningless).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "partition [{start}, {end}) is empty");
        Self { start, end }
    }

    /// The unit index range.
    pub const fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of units `|P|`.
    pub const fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always `false` (partitions are non-empty by construction);
    /// provided for API completeness.
    pub const fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P[{}..{})", self.start, self.end)
    }
}

/// A partition group `PG`: an ordered, gap-free division of all `M`
/// units into partitions — one chromosome of the COMPASS GA.
///
/// Stored as cut positions; invariants (enforced by constructors):
/// cuts are strictly increasing, in `(0, M)`, and every resulting span
/// is valid under the chip's [`ValidityMap`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionGroup {
    cuts: Vec<usize>,
    len: usize,
}

impl PartitionGroup {
    /// Builds a group from cut positions over `M = len` units.
    /// Returns `None` if any span violates `validity` (or cuts are
    /// malformed).
    pub fn from_cuts(cuts: Vec<usize>, validity: &ValidityMap) -> Option<Self> {
        let len = validity.len();
        if len == 0 {
            return None;
        }
        let mut prev = 0usize;
        for &cut in &cuts {
            if cut <= prev || cut >= len || !validity.is_valid(prev, cut) {
                return None;
            }
            prev = cut;
        }
        if !validity.is_valid(prev, len) {
            return None;
        }
        Some(Self { cuts, len })
    }

    /// Samples a random valid group: repeatedly chooses an end position
    /// uniformly within the valid range of the current start (always
    /// terminates because a single unit is always valid).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, validity: &ValidityMap) -> Self {
        let len = validity.len();
        assert!(len > 0, "cannot partition an empty unit sequence");
        let mut cuts = Vec::new();
        let mut start = 0usize;
        while start < len {
            let max_end = validity.max_end(start);
            let end = rng.gen_range((start + 1)..=max_end);
            if end < len {
                cuts.push(end);
            }
            start = end;
        }
        Self { cuts, len }
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Number of units `M`.
    pub fn unit_count(&self) -> usize {
        self.len
    }

    /// The partitions in execution order.
    pub fn partitions(&self) -> Vec<Partition> {
        let mut out = Vec::with_capacity(self.partition_count());
        let mut start = 0usize;
        for &cut in &self.cuts {
            out.push(Partition::new(start, cut));
            start = cut;
        }
        out.push(Partition::new(start, self.len));
        out
    }

    /// The k-th partition.
    pub fn partition(&self, k: usize) -> Partition {
        let start = if k == 0 { 0 } else { self.cuts[k - 1] };
        let end = if k == self.cuts.len() { self.len } else { self.cuts[k] };
        Partition::new(start, end)
    }

    /// The raw cut positions.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Which partition contains unit `i`.
    pub fn partition_of_unit(&self, i: usize) -> usize {
        self.cuts.partition_point(|&c| c <= i)
    }
}

impl fmt::Display for PartitionGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PG{{")?;
        for (i, p) in self.partitions().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use pim_arch::ChipSpec;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn map() -> ValidityMap {
        let chip = ChipSpec::chip_s();
        let seq = decompose(&zoo::resnet18(), &chip);
        ValidityMap::build(&seq, &chip)
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_partition_panics() {
        let _ = Partition::new(3, 3);
    }

    #[test]
    fn partitions_cover_all_units_without_gaps() {
        let validity = map();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let group = PartitionGroup::random(&mut rng, &validity);
            let parts = group.partitions();
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, validity.len());
            for pair in parts.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "gap-free");
            }
            for p in &parts {
                assert!(validity.is_valid(p.start, p.end), "{p} must be valid");
            }
        }
    }

    #[test]
    fn from_cuts_validates() {
        let validity = map();
        // Whole-model span is invalid on Chip-S (ResNet18 > 1.125 MiB).
        assert!(PartitionGroup::from_cuts(vec![], &validity).is_none());
        // A random group's cuts round-trip.
        let mut rng = StdRng::seed_from_u64(2);
        let group = PartitionGroup::random(&mut rng, &validity);
        let rebuilt = PartitionGroup::from_cuts(group.cuts().to_vec(), &validity).unwrap();
        assert_eq!(rebuilt, group);
        // Decreasing cuts are rejected.
        assert!(PartitionGroup::from_cuts(vec![5, 3], &validity).is_none());
    }

    #[test]
    fn partition_of_unit_is_consistent() {
        let validity = map();
        let mut rng = StdRng::seed_from_u64(3);
        let group = PartitionGroup::random(&mut rng, &validity);
        for (k, p) in group.partitions().iter().enumerate() {
            for i in p.range() {
                assert_eq!(group.partition_of_unit(i), k);
            }
            assert_eq!(group.partition(k), *p);
        }
    }

    #[test]
    fn random_groups_vary() {
        let validity = map();
        let mut rng = StdRng::seed_from_u64(4);
        let a = PartitionGroup::random(&mut rng, &validity);
        let b = PartitionGroup::random(&mut rng, &validity);
        // Overwhelmingly likely to differ for a large model.
        assert_ne!(a, b);
    }

    #[test]
    fn display_shows_spans() {
        let validity = map();
        let mut rng = StdRng::seed_from_u64(5);
        let group = PartitionGroup::random(&mut rng, &validity);
        assert!(group.to_string().starts_with("PG{"));
    }
}
