//! Compiler errors.

use std::error::Error;
use std::fmt;

/// Compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The chip configuration is invalid.
    InvalidChip(String),
    /// The network has no crossbar-mappable (Conv/Linear) layers.
    NoWeightedLayers,
    /// A single partition unit cannot fit the chip (one core cannot
    /// hold even a minimal slice — the chip is too small for this
    /// network at this precision).
    UnitTooLarge {
        /// The offending layer's name.
        layer: String,
    },
    /// Options are inconsistent (e.g. zero batch size).
    InvalidOptions(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidChip(detail) => write!(f, "invalid chip configuration: {detail}"),
            CompileError::NoWeightedLayers => {
                write!(f, "network has no conv/linear layers to map onto crossbars")
            }
            CompileError::UnitTooLarge { layer } => {
                write!(f, "layer {layer} cannot be decomposed to fit a single core")
            }
            CompileError::InvalidOptions(detail) => write!(f, "invalid options: {detail}"),
        }
    }
}

impl Error for CompileError {}
