//! The four mutation schemes of the COMPASS GA (paper §III-C3).

use crate::partition::PartitionGroup;
use crate::validity::ValidityMap;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which mutation was applied (for tracing/ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutationKind {
    /// Merge two neighboring partitions (removes small, inefficient
    /// partitions).
    Merge,
    /// Split one partition at a random point (removes ill-performing
    /// partitions holding too many layers with low replication).
    Split,
    /// Move one unit across a partition boundary (fine-grained
    /// adjustment of the cut position).
    Move,
    /// Keep the best partition, regenerate everything else randomly
    /// (escapes local optima).
    FixedRandom,
}

impl MutationKind {
    /// All schemes, selected with equal probability (paper §IV-A3).
    pub const ALL: [MutationKind; 4] =
        [MutationKind::Merge, MutationKind::Split, MutationKind::Move, MutationKind::FixedRandom];
}

/// Merges the consecutive partition pair `(k, k+1)` whose combined
/// partition score is worst. `scores[k]` are the per-partition scores;
/// returns `None` if no adjacent pair can legally merge.
pub fn merge(
    group: &PartitionGroup,
    scores: &[f64],
    validity: &ValidityMap,
) -> Option<PartitionGroup> {
    let cuts = group.cuts();
    if cuts.is_empty() {
        return None;
    }
    // Rank cut indices by combined score of the two partitions they
    // separate, worst (largest) first.
    let mut order: Vec<usize> = (0..cuts.len()).collect();
    order.sort_by(|&a, &b| {
        let sa = scores[a] + scores[a + 1];
        let sb = scores[b] + scores[b + 1];
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    for k in order {
        let mut new_cuts = cuts.to_vec();
        new_cuts.remove(k);
        if let Some(merged) = PartitionGroup::from_cuts(new_cuts, validity) {
            return Some(merged);
        }
    }
    None
}

/// Splits partition `k` at a uniformly random interior point. Any
/// interior split of a valid span is itself valid (packing is monotone
/// under item removal), so this only fails for single-unit partitions.
pub fn split<R: Rng + ?Sized>(
    group: &PartitionGroup,
    k: usize,
    rng: &mut R,
    validity: &ValidityMap,
) -> Option<PartitionGroup> {
    let part = group.partition(k);
    if part.len() < 2 {
        return None;
    }
    let cut = rng.gen_range((part.start + 1)..part.end);
    let mut cuts = group.cuts().to_vec();
    let pos = cuts.partition_point(|&c| c < cut);
    cuts.insert(pos, cut);
    PartitionGroup::from_cuts(cuts, validity)
}

/// Moves one unit across the boundary between partition `k` and a
/// random neighbor (shifts a cut by ±1), searching for an optimal
/// partitioning position. Returns `None` when no legal shift exists.
pub fn move_unit<R: Rng + ?Sized>(
    group: &PartitionGroup,
    k: usize,
    rng: &mut R,
    validity: &ValidityMap,
) -> Option<PartitionGroup> {
    let cuts = group.cuts();
    if cuts.is_empty() {
        return None;
    }
    // Candidate cut indices adjacent to partition k: cut k-1 (left
    // boundary) and cut k (right boundary).
    let mut candidates: Vec<usize> = Vec::new();
    if k > 0 {
        candidates.push(k - 1);
    }
    if k < cuts.len() {
        candidates.push(k);
    }
    // Try both shift directions per candidate in random order.
    let mut attempts: Vec<(usize, isize)> =
        candidates.iter().flat_map(|&c| [(c, 1isize), (c, -1isize)]).collect();
    for i in (1..attempts.len()).rev() {
        let j = rng.gen_range(0..=i);
        attempts.swap(i, j);
    }
    for (c, delta) in attempts {
        let new_cut = cuts[c] as isize + delta;
        if new_cut <= 0 || new_cut as usize >= group.unit_count() {
            continue;
        }
        let mut new_cuts = cuts.to_vec();
        new_cuts[c] = new_cut as usize;
        // Shifting may collide with a neighboring cut; skip those.
        if c > 0 && new_cuts[c] <= new_cuts[c - 1] {
            continue;
        }
        if c + 1 < new_cuts.len() && new_cuts[c] >= new_cuts[c + 1] {
            continue;
        }
        if let Some(moved) = PartitionGroup::from_cuts(new_cuts, validity) {
            return Some(moved);
        }
    }
    None
}

/// Keeps the best-fitness partition (index `best`) fixed and
/// regenerates all cuts before and after it randomly.
pub fn fixed_random<R: Rng + ?Sized>(
    group: &PartitionGroup,
    best: usize,
    rng: &mut R,
    validity: &ValidityMap,
) -> Option<PartitionGroup> {
    let part = group.partition(best);
    let m = group.unit_count();
    let mut cuts = Vec::new();
    // Random walk from 0 forced to land exactly on part.start.
    let mut pos = 0usize;
    while pos < part.start {
        let max_end = validity.max_end(pos).min(part.start);
        let end = rng.gen_range((pos + 1)..=max_end);
        cuts.push(end);
        pos = end;
    }
    if part.start > 0 && *cuts.last().unwrap() != part.start {
        // Unreachable by construction, but stay defensive.
        return None;
    }
    if part.end < m {
        cuts.push(part.end);
        let mut pos = part.end;
        while pos < m {
            let max_end = validity.max_end(pos);
            let end = rng.gen_range((pos + 1)..=max_end);
            if end < m {
                cuts.push(end);
            }
            pos = end;
        }
    }
    PartitionGroup::from_cuts(cuts, validity)
}

/// One-point crossover (extension beyond the paper's Algorithm 1):
/// the child takes `a`'s cuts before a random point and `b`'s cuts
/// after it. If the bridging span is too large, a repair cut at the
/// crossover point is inserted — the repaired child is always valid
/// because every resulting span is a subset of a valid parent span.
pub fn crossover<R: Rng + ?Sized>(
    a: &PartitionGroup,
    b: &PartitionGroup,
    rng: &mut R,
    validity: &ValidityMap,
) -> Option<PartitionGroup> {
    let m = a.unit_count();
    if m < 2 || b.unit_count() != m {
        return None;
    }
    let point = rng.gen_range(1..m);
    let head: Vec<usize> = a.cuts().iter().copied().filter(|&c| c < point).collect();
    let tail: Vec<usize> = b.cuts().iter().copied().filter(|&c| c > point).collect();
    let mut joined = head.clone();
    joined.extend(&tail);
    if let Some(child) = PartitionGroup::from_cuts(joined, validity) {
        return Some(child);
    }
    let mut repaired = head;
    repaired.push(point);
    repaired.extend(&tail);
    PartitionGroup::from_cuts(repaired, validity)
}

/// Applies `kind` to `group`, mutating the worst-scoring partition
/// (or pair, for merges). Falls back to `None` when the scheme cannot
/// produce a legal offspring.
pub fn apply<R: Rng + ?Sized>(
    kind: MutationKind,
    group: &PartitionGroup,
    scores: &[f64],
    rng: &mut R,
    validity: &ValidityMap,
) -> Option<PartitionGroup> {
    let worst = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(k, _)| k)
        .unwrap_or(0);
    let best = scores
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(k, _)| k)
        .unwrap_or(0);
    match kind {
        MutationKind::Merge => merge(group, scores, validity),
        MutationKind::Split => split(group, worst, rng, validity),
        MutationKind::Move => move_unit(group, worst, rng, validity),
        MutationKind::FixedRandom => fixed_random(group, best, rng, validity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use pim_arch::ChipSpec;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ValidityMap, PartitionGroup) {
        let chip = ChipSpec::chip_s();
        let seq = decompose(&zoo::resnet18(), &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let mut rng = StdRng::seed_from_u64(99);
        let group = PartitionGroup::random(&mut rng, &validity);
        (validity, group)
    }

    fn uniform_scores(group: &PartitionGroup) -> Vec<f64> {
        vec![1.0; group.partition_count()]
    }

    #[test]
    fn merge_reduces_partition_count_by_one() {
        let (validity, group) = setup();
        if let Some(merged) = merge(&group, &uniform_scores(&group), &validity) {
            assert_eq!(merged.partition_count(), group.partition_count() - 1);
            assert_eq!(merged.unit_count(), group.unit_count());
        }
        // (merge may legally fail when every adjacent union is too big
        // — not for a random ResNet18 group in practice, but allowed.)
    }

    #[test]
    fn split_increases_partition_count_by_one() {
        let (validity, group) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        // Find a splittable partition.
        let k = (0..group.partition_count())
            .find(|&k| group.partition(k).len() >= 2)
            .expect("some partition has >= 2 units");
        let split_group = split(&group, k, &mut rng, &validity).expect("split is always valid");
        assert_eq!(split_group.partition_count(), group.partition_count() + 1);
    }

    #[test]
    fn split_single_unit_fails() {
        let (validity, group) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        if let Some(k) = (0..group.partition_count()).find(|&k| group.partition(k).len() == 1) {
            assert!(split(&group, k, &mut rng, &validity).is_none());
        }
    }

    #[test]
    fn move_preserves_partition_count() {
        let (validity, group) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        for k in 0..group.partition_count() {
            if let Some(moved) = move_unit(&group, k, &mut rng, &validity) {
                assert_eq!(moved.partition_count(), group.partition_count());
                assert_ne!(moved, group);
                return;
            }
        }
        panic!("some move should succeed on a multi-partition group");
    }

    #[test]
    fn fixed_random_keeps_best_partition_span() {
        let (validity, group) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let best = 1.min(group.partition_count() - 1);
        let regenerated = fixed_random(&group, best, &mut rng, &validity)
            .expect("fixed-random regeneration succeeds");
        let span = group.partition(best);
        // The kept span must appear as a partition in the offspring.
        let found =
            regenerated.partitions().iter().any(|p| p.start == span.start && p.end == span.end);
        assert!(found, "kept partition {span} missing from {regenerated}");
    }

    #[test]
    fn apply_produces_valid_offspring_for_all_kinds() {
        let (validity, group) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let scores: Vec<f64> = (0..group.partition_count()).map(|k| 1.0 + (k % 3) as f64).collect();
        let mut successes = 0;
        for kind in MutationKind::ALL {
            if let Some(child) = apply(kind, &group, &scores, &mut rng, &validity) {
                assert_eq!(child.unit_count(), group.unit_count());
                successes += 1;
            }
        }
        assert!(successes >= 3, "most mutation kinds should succeed: {successes}/4");
    }

    #[test]
    fn crossover_produces_valid_children() {
        let (validity, a) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let b = PartitionGroup::random(&mut rng, &validity);
        let mut produced = 0;
        for _ in 0..50 {
            if let Some(child) = crossover(&a, &b, &mut rng, &validity) {
                assert_eq!(child.unit_count(), a.unit_count());
                assert!(PartitionGroup::from_cuts(child.cuts().to_vec(), &validity).is_some());
                produced += 1;
            }
        }
        assert!(produced >= 45, "repair makes crossover nearly always succeed: {produced}");
    }

    #[test]
    fn crossover_mixes_parent_cuts() {
        let (validity, a) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let b = PartitionGroup::random(&mut rng, &validity);
        // Some child should differ from both parents.
        let mut differs = false;
        for _ in 0..20 {
            if let Some(child) = crossover(&a, &b, &mut rng, &validity) {
                if child != a && child != b {
                    differs = true;
                }
            }
        }
        assert!(differs, "crossover should create novel children");
    }

    #[test]
    fn mutations_always_yield_valid_groups_proptest_style() {
        let (validity, mut group) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        // Chain 100 random mutations; every offspring must validate.
        for i in 0..100 {
            let kind = MutationKind::ALL[i % 4];
            let scores = uniform_scores(&group);
            if let Some(child) = apply(kind, &group, &scores, &mut rng, &validity) {
                assert!(
                    PartitionGroup::from_cuts(child.cuts().to_vec(), &validity).is_some(),
                    "offspring of {kind:?} must be valid"
                );
                group = child;
            }
        }
    }
}
