//! Instruction scheduling (paper Fig. 3 step (iii)).
//!
//! Produces one [`ChipProgram`] per partition: every core first runs
//! its weight-replace phase (`LOAD_WEIGHT` + `WRITE_WEIGHT`), then the
//! batch streams through the partition's layer pipeline in
//! `chunks_per_sample` chunks — entry cores `LOAD_DATA`, producers
//! `SEND_DATA` to consumers, exit cores `STORE_DATA`. Send is
//! buffered (non-blocking) and Recv blocks, so emitting instructions
//! in topological slice order guarantees deadlock freedom.

use crate::plan::PartitionPlan;
use crate::replication::replica_items;
use pim_arch::{ChipSpec, ScheduleMode};
use pim_isa::{ChipProgram, CoreId, Instruction, Tag, VectorOpKind};
use pim_model::{LayerKind, Network, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scheduling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerOptions {
    /// Samples per batch (weights are reused across the batch).
    pub batch: usize,
    /// Pipeline chunks per sample: producers hand off partial feature
    /// maps this many times per sample, enabling intra-sample
    /// pipelining in the simulator.
    pub chunks_per_sample: usize,
    /// Stage dispatch the programs are scheduled for. Under
    /// [`ScheduleMode::Interleaved`], alternating partitions shift
    /// onto disjoint crossbar groups where capacity allows (see
    /// [`interleave_offsets`]), so the interleaved executor can
    /// actually overlap adjacent stages instead of serializing on the
    /// core-0 claim every packing otherwise starts from.
    pub schedule: ScheduleMode,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        Self { batch: 1, chunks_per_sample: 4, schedule: ScheduleMode::Barrier }
    }
}

/// Schedules one partition into per-core instruction streams.
///
/// `tag_base` is advanced past all rendezvous tags this partition
/// consumed, so successive partitions never collide.
pub fn schedule_partition(
    network: &Network,
    plan: &PartitionPlan,
    chip: &ChipSpec,
    options: &SchedulerOptions,
    tag_base: &mut u64,
) -> ChipProgram {
    schedule_partition_at(network, plan, chip, options, tag_base, 0)
}

/// [`schedule_partition`] with every core assignment shifted up by
/// `core_offset` — how interleaved groups land alternating partitions
/// on disjoint crossbar groups (see [`interleave_offsets`]).
fn schedule_partition_at(
    network: &Network,
    plan: &PartitionPlan,
    chip: &ChipSpec,
    options: &SchedulerOptions,
    tag_base: &mut u64,
    core_offset: usize,
) -> ChipProgram {
    let mut program = ChipProgram::new(chip.cores);
    let chunks = options.chunks_per_sample.max(1);
    let batch = options.batch.max(1);
    let activation_bits = chip.precision.bits();

    // --- Weight replacement phase -----------------------------------
    let items = replica_items(plan);
    let assignment: Vec<usize> = plan
        .packing
        .as_ref()
        .map(|p| p.assignment.iter().map(|&c| c + core_offset).collect())
        .unwrap_or_else(|| {
            items.iter().enumerate().map(|(i, _)| (i + core_offset) % chip.cores).collect()
        });
    debug_assert!(
        assignment.iter().all(|&c| c < chip.cores),
        "core offset must keep every assignment on-chip"
    );
    // Weights stream from DRAM once (replica 0) and are broadcast to
    // replica crossbars on chip (paper §II-A: "loaded from global
    // memory and broadcast to the crossbars for writing"), so DRAM
    // load traffic is not multiplied by replication while cell writes
    // are.
    let mut per_core_load_bits = vec![0usize; chip.cores];
    let mut per_core_write_bits = vec![0usize; chip.cores];
    let mut per_core_xbars = vec![0usize; chip.cores];
    for (item, &core) in items.iter().zip(&assignment) {
        if item.replica == 0 {
            per_core_load_bits[core] += item.weight_bits;
        }
        per_core_write_bits[core] += item.weight_bits;
        per_core_xbars[core] += item.crossbars;
    }
    for core in 0..chip.cores {
        if per_core_write_bits[core] == 0 {
            continue;
        }
        let stream = program.core_mut(CoreId(core));
        if per_core_load_bits[core] > 0 {
            stream.push(Instruction::LoadWeight { bytes: per_core_load_bits[core].div_ceil(8) });
        }
        stream.push(Instruction::WriteWeight {
            bits: per_core_write_bits[core],
            crossbars: per_core_xbars[core],
        });
    }

    // --- Home core per slice (replica 0, first unit) -----------------
    let mut home = vec![CoreId(0); plan.slices.len()];
    for (pos, item) in items.iter().enumerate() {
        if item.replica == 0 && item.unit_ordinal == 0 {
            home[item.slice_idx] = CoreId(assignment[pos]);
        }
    }

    // --- Dataflow edges ----------------------------------------------
    // slice j receives from slice i when i's node is a weighted
    // ancestor of j's node and both slices are in this partition.
    let node_to_slice: BTreeMap<NodeId, usize> =
        plan.slices.iter().enumerate().map(|(i, s)| (s.node, i)).collect();
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (from, to, bytes/sample)
    for (j, slice) in plan.slices.iter().enumerate() {
        for ancestor in network.weighted_ancestors(slice.node) {
            if let Some(&i) = node_to_slice.get(&ancestor) {
                if i != j {
                    let bytes = network.node(ancestor).output_shape.bytes(activation_bits);
                    edges.push((i, j, bytes));
                }
            }
        }
    }

    // Entry transfers feed their first consuming slice; exits come
    // from the producing slice (or the last slice for attached-only
    // outputs).
    let mut entry_of: Vec<(usize, usize)> = Vec::new(); // (slice, bytes/sample)
    for t in &plan.entries {
        let consumer = plan
            .slices
            .iter()
            .position(|s| {
                network.weighted_ancestors(s.node).contains(&t.node)
                    || network.node(s.node).inputs.contains(&t.node)
            })
            .unwrap_or(0);
        entry_of.push((consumer, t.bytes_per_sample));
    }
    let mut exit_of: Vec<(usize, usize)> = Vec::new();
    for t in &plan.exits {
        let producer = node_to_slice.get(&t.node).copied().unwrap_or_else(|| {
            // Attached node: store from the slice of its nearest
            // weighted ancestor in this partition, else the last slice.
            network
                .weighted_ancestors(t.node)
                .iter()
                .find_map(|a| node_to_slice.get(a).copied())
                .unwrap_or(plan.slices.len().saturating_sub(1))
        });
        exit_of.push((producer, t.bytes_per_sample));
    }

    // VFU share per slice: attach each non-crossbar node's work to the
    // slice of its nearest local weighted ancestor.
    let mut vfu_share = vec![0usize; plan.slices.len()];
    if !plan.slices.is_empty() {
        for &attached in &plan.attached {
            let target = network
                .weighted_ancestors(attached)
                .iter()
                .find_map(|a| node_to_slice.get(a).copied())
                .unwrap_or(plan.slices.len() - 1);
            vfu_share[target] += vfu_elements_of(network, attached);
        }
        for (i, slice) in plan.slices.iter().enumerate() {
            vfu_share[i] += slice.reduction_elements;
        }
    }

    // --- Pipelined batch execution ----------------------------------
    let edge_count = edges.len().max(1) as u64;
    for sample in 0..batch {
        for chunk in 0..chunks {
            let step = (sample * chunks + chunk) as u64;
            for (j, slice) in plan.slices.iter().enumerate() {
                let core = home[j];
                // Entry loads for this slice.
                for &(consumer, bytes) in &entry_of {
                    if consumer == j {
                        let share = chunk_share(bytes, chunk, chunks);
                        if share > 0 {
                            program.core_mut(core).push(Instruction::LoadData { bytes: share });
                        }
                    }
                }
                // Receives from producers on other cores.
                for (e, &(from, to, bytes)) in edges.iter().enumerate() {
                    if to == j && home[from] != core {
                        let share = chunk_share(bytes, chunk, chunks);
                        if share > 0 {
                            program.core_mut(core).push(Instruction::Recv {
                                from: home[from],
                                bytes: share,
                                tag: Tag(*tag_base + step * edge_count + e as u64),
                            });
                        }
                    }
                }
                // Compute.
                let waves = chunk_share(slice.waves_per_sample(), chunk, chunks);
                let activations = chunk_share(slice.activations_per_sample, chunk, chunks);
                if waves > 0 {
                    program.core_mut(core).push(Instruction::Mvmul {
                        waves,
                        activations,
                        node: slice.node.index(),
                    });
                }
                let vfu = chunk_share(vfu_share[j], chunk, chunks);
                if vfu > 0 {
                    program
                        .core_mut(core)
                        .push(Instruction::VectorOp { op: VectorOpKind::Relu, elements: vfu });
                }
                // Sends to consumers on other cores.
                for (e, &(from, to, bytes)) in edges.iter().enumerate() {
                    if from == j && home[to] != core {
                        let share = chunk_share(bytes, chunk, chunks);
                        if share > 0 {
                            program.core_mut(core).push(Instruction::Send {
                                to: home[to],
                                bytes: share,
                                tag: Tag(*tag_base + step * edge_count + e as u64),
                            });
                        }
                    }
                }
                // Exit stores produced by this slice.
                for &(producer, bytes) in &exit_of {
                    if producer == j {
                        let share = chunk_share(bytes, chunk, chunks);
                        if share > 0 {
                            program.core_mut(core).push(Instruction::StoreData { bytes: share });
                        }
                    }
                }
            }
        }
    }
    *tag_base += (batch * chunks) as u64 * edge_count;
    program
}

/// Schedules every partition of a group, returning one program per
/// partition in execution order.
///
/// Under [`ScheduleMode::Interleaved`] alternating partitions are
/// shifted onto disjoint crossbar groups where capacity allows, so
/// the interleaved executor overlaps adjacent stages instead of
/// serializing on shared cores (see [`interleave_offsets`]).
pub fn schedule_group(
    network: &Network,
    plans: &[PartitionPlan],
    chip: &ChipSpec,
    options: &SchedulerOptions,
) -> Vec<ChipProgram> {
    let offsets = match options.schedule {
        ScheduleMode::Barrier => vec![0; plans.len()],
        ScheduleMode::Interleaved => interleave_offsets(plans, chip),
    };
    let mut tag_base = 0u64;
    plans
        .iter()
        .zip(&offsets)
        .map(|(p, &off)| schedule_partition_at(network, p, chip, options, &mut tag_base, off))
        .collect()
}

/// Per-partition core offsets that let [`ScheduleMode::Interleaved`]
/// overlap adjacent stages on disjoint crossbar groups.
///
/// The packer assigns every partition's crossbars from core 0 up, so
/// consecutive stages collide on core 0 and the interleaved executor
/// serializes them round-major. When every partition is packed and
/// the widest one occupies at most half the chip, odd-indexed
/// partitions shift onto the upper half: adjacent stages then claim
/// disjoint groups and genuinely overlap. Anything else — an unpacked
/// plan, or a partition wider than half the chip — keeps every offset
/// at zero, leaving the schedule unchanged. The estimator's occupancy
/// bound applies the same offsets so GA fitness prices exactly the
/// overlap the executor will deliver.
pub(crate) fn interleave_offsets(plans: &[PartitionPlan], chip: &ChipSpec) -> Vec<usize> {
    let zeros = vec![0usize; plans.len()];
    let mut base = 0usize;
    for plan in plans {
        let Some(packing) = plan.packing.as_ref() else { return zeros };
        let width = packing.assignment.iter().map(|&c| c + 1).max().unwrap_or(0);
        base = base.max(width);
    }
    if base == 0 || 2 * base > chip.cores {
        return zeros;
    }
    (0..plans.len()).map(|i| if i % 2 == 1 { base } else { 0 }).collect()
}

/// Splits `total` into `chunks` shares: the remainder goes to the
/// first chunk so shares sum exactly to `total`.
fn chunk_share(total: usize, chunk: usize, chunks: usize) -> usize {
    let base = total / chunks;
    if chunk == 0 {
        base + total % chunks
    } else {
        base
    }
}

fn vfu_elements_of(network: &Network, id: NodeId) -> usize {
    let node = network.node(id);
    match node.kind {
        LayerKind::Pool2d { kernel, .. } => node.output_shape.elements() * kernel * kernel,
        LayerKind::GlobalAvgPool => network.node(node.inputs[0]).output_shape.elements(),
        LayerKind::Softmax => node.output_shape.elements() * 3,
        LayerKind::Flatten => 0,
        _ => node.output_shape.elements(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::partition::PartitionGroup;
    use crate::plan::GroupPlan;
    use crate::replication::optimize_group;
    use crate::validity::ValidityMap;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compile(net: &Network, chip: &ChipSpec, seed: u64) -> (GroupPlan, Vec<ChipProgram>) {
        let seq = decompose(net, chip);
        let validity = ValidityMap::build(&seq, chip);
        let mut rng = StdRng::seed_from_u64(seed);
        let group = PartitionGroup::random(&mut rng, &validity);
        let mut plans = GroupPlan::build(net, &seq, &group);
        optimize_group(&mut plans, chip);
        let options = SchedulerOptions { batch: 4, chunks_per_sample: 2, ..Default::default() };
        let programs = schedule_group(net, plans.plans(), chip, &options);
        (plans, programs)
    }

    #[test]
    fn one_program_per_partition() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let (plans, programs) = compile(&net, &chip, 1);
        assert_eq!(programs.len(), plans.len());
        for p in &programs {
            assert_eq!(p.cores(), chip.cores);
            assert!(p.total_instructions() > 0);
        }
    }

    #[test]
    fn weight_bits_written_match_plan() {
        let chip = ChipSpec::chip_m();
        let net = zoo::squeezenet();
        let (plans, programs) = compile(&net, &chip, 2);
        for (plan, program) in plans.plans().iter().zip(&programs) {
            let stats = program.stats();
            // Bit accounting uses per-unit integer shares; allow the
            // division slack (< one bit per unit instance).
            let expected = plan.replicated_weight_bits();
            let got = stats.weight_write_bits;
            let slack = replica_items(plan).len();
            assert!(
                got <= expected && got + 8 * slack >= expected.saturating_sub(8 * slack),
                "partition {}: wrote {} bits vs plan {}",
                plan.index,
                got,
                expected
            );
        }
    }

    #[test]
    fn sends_and_recvs_pair_exactly() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let (_, programs) = compile(&net, &chip, 3);
        for program in &programs {
            let mut sends: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
            let mut recvs: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
            for core in program.iter() {
                for instr in core.iter() {
                    match *instr {
                        Instruction::Send { to, bytes, tag } => {
                            assert!(
                                sends.insert(tag.0, (to.index(), bytes)).is_none(),
                                "duplicate send tag {tag}"
                            );
                        }
                        Instruction::Recv { from, bytes, tag } => {
                            assert!(
                                recvs.insert(tag.0, (from.index(), bytes)).is_none(),
                                "duplicate recv tag {tag}"
                            );
                        }
                        _ => {}
                    }
                }
            }
            assert_eq!(sends.len(), recvs.len(), "every send has a recv");
            for (tag, (to, bytes)) in &sends {
                let (_, rbytes) = recvs.get(tag).expect("matching recv");
                assert_eq!(bytes, rbytes, "byte mismatch on tag {tag}");
                // The receive happens on the destination core.
                let dest_prog = program.core(CoreId(*to));
                assert!(dest_prog
                    .iter()
                    .any(|i| matches!(i, Instruction::Recv { tag: t, .. } if t.0 == *tag)));
            }
        }
    }

    #[test]
    fn dram_traffic_matches_plan_per_batch() {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let (plans, programs) = compile(&net, &chip, 4);
        let batch = 4;
        for (plan, program) in plans.plans().iter().zip(&programs) {
            let stats = program.stats();
            assert_eq!(
                stats.data_load_bytes,
                plan.entry_bytes_per_sample() * batch,
                "partition {} entry bytes",
                plan.index
            );
            assert_eq!(
                stats.data_store_bytes,
                plan.exit_bytes_per_sample() * batch,
                "partition {} exit bytes",
                plan.index
            );
        }
    }

    #[test]
    fn mvm_waves_scale_with_batch() {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let group = crate::baselines::greedy(&validity);
        let mut plans = GroupPlan::build(&net, &seq, &group);
        optimize_group(&mut plans, &chip);
        let mk = |batch| {
            let options = SchedulerOptions { batch, chunks_per_sample: 2, ..Default::default() };
            let programs = schedule_group(&net, plans.plans(), &chip, &options);
            programs.iter().map(|p| p.stats().mvm_waves).sum::<usize>()
        };
        assert_eq!(mk(8), 4 * mk(2));
    }

    #[test]
    fn chunk_share_sums_to_total() {
        for total in [0usize, 1, 7, 100, 12345] {
            for chunks in [1usize, 2, 3, 8] {
                let sum: usize = (0..chunks).map(|c| chunk_share(total, c, chunks)).sum();
                assert_eq!(sum, total);
            }
        }
    }

    fn touched_cores(program: &ChipProgram) -> std::collections::BTreeSet<usize> {
        program
            .iter()
            .enumerate()
            .filter(|(_, core)| core.iter().next().is_some())
            .map(|(i, _)| i)
            .collect()
    }

    fn random_plans(
        net: &Network,
        chip: &ChipSpec,
        want_offsets: bool,
    ) -> Option<crate::plan::GroupPlan> {
        let seq = decompose(net, chip);
        let validity = ValidityMap::build(&seq, chip);
        (0..64u64).find_map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let group = PartitionGroup::random(&mut rng, &validity);
            let mut plans = GroupPlan::build(net, &seq, &group);
            optimize_group(&mut plans, chip);
            let applied = interleave_offsets(plans.plans(), chip).iter().any(|&o| o > 0);
            (plans.len() > 1 && applied == want_offsets).then_some(plans)
        })
    }

    #[test]
    fn interleaved_groups_pack_alternating_partitions_disjointly() {
        // A multi-partition group whose widest partition fits half the
        // chip: offsets apply, so alternating interleaved programs must
        // land on disjoint crossbar groups.
        let chip = ChipSpec::chip_l();
        let net = zoo::tiny_cnn();
        let plans = random_plans(&net, &chip, true)
            .expect("some seed yields a half-chip multi-partition group");
        let base = SchedulerOptions { batch: 2, chunks_per_sample: 2, ..Default::default() };
        let barrier = schedule_group(&net, plans.plans(), &chip, &base);
        let interleaved = schedule_group(
            &net,
            plans.plans(),
            &chip,
            &SchedulerOptions { schedule: ScheduleMode::Interleaved, ..base },
        );
        // Adjacent interleaved stages claim disjoint groups...
        for pair in interleaved.windows(2) {
            let (a, b) = (touched_cores(&pair[0]), touched_cores(&pair[1]));
            assert!(a.is_disjoint(&b), "adjacent interleaved stages must not share cores");
        }
        // ...whereas every barrier packing starts from core 0.
        for program in &barrier {
            assert!(touched_cores(program).contains(&0));
        }
        // The shift relocates the work without changing it.
        for (a, b) in barrier.iter().zip(&interleaved) {
            assert_eq!(a.total_instructions(), b.total_instructions());
            assert_eq!(a.stats().mvm_waves, b.stats().mvm_waves);
        }
    }

    #[test]
    fn offsets_stay_zero_when_a_partition_needs_over_half_the_chip() {
        // When the widest partition exceeds half the chip, shifting
        // would fall off the end: the interleaved schedule must be
        // byte-identical to the barrier one.
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let plans =
            random_plans(&net, &chip, false).expect("some seed yields an over-half-chip group");
        let base = SchedulerOptions { batch: 2, chunks_per_sample: 2, ..Default::default() };
        let barrier = schedule_group(&net, plans.plans(), &chip, &base);
        let interleaved = schedule_group(
            &net,
            plans.plans(),
            &chip,
            &SchedulerOptions { schedule: ScheduleMode::Interleaved, ..base },
        );
        assert_eq!(barrier, interleaved, "zero offsets must leave programs untouched");
    }

    #[test]
    fn tags_unique_across_partitions() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let (_, programs) = compile(&net, &chip, 5);
        let mut all_tags = std::collections::BTreeSet::new();
        for program in &programs {
            for core in program.iter() {
                for instr in core.iter() {
                    if let Instruction::Send { tag, .. } = instr {
                        assert!(all_tags.insert(tag.0), "tag {tag} reused across partitions");
                    }
                }
            }
        }
    }
}
