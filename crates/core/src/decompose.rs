//! Model decomposition into partition units (paper §III-B, Fig. 4).
//!
//! Weight matrices are divided primarily along the **output dimension**
//! into units sized to fit the crossbar budget of a single core — the
//! minimum granularity for partitioning. Layers whose *row* (input)
//! dimension alone exceeds one core (e.g. VGG16's first FC layer) are
//! additionally split along the row dimension; such units produce
//! partial sums that are reduced on the VFUs.

use pim_arch::{crossbars_for_matrix, ChipSpec};
use pim_model::{Network, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One partition unit `xᵢ`: a tile of a weighted layer's matrix that
/// fits within a single PIM core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionUnit {
    /// Global index in the decomposition sequence (the paper's `i` in
    /// `xᵢ`).
    pub index: usize,
    /// The Conv/Linear node this unit slices.
    pub node: NodeId,
    /// Output-column range `[start, end)` of the layer matrix covered
    /// by this unit.
    pub col_range: (usize, usize),
    /// Row range `[start, end)` covered (the full matrix height unless
    /// the layer required row splitting).
    pub row_range: (usize, usize),
    /// Crossbars this unit occupies (its core footprint).
    pub crossbars: usize,
    /// Weight bits stored (cells actually used).
    pub weight_bits: usize,
    /// MVM waves this unit performs per input sample at replication 1
    /// (= the layer's output spatial positions).
    pub mvms_per_sample: usize,
    /// `true` if the unit covers only part of the layer's rows and its
    /// outputs are partial sums needing VFU reduction.
    pub row_split: bool,
}

impl PartitionUnit {
    /// Output columns covered.
    pub const fn cols(&self) -> usize {
        self.col_range.1 - self.col_range.0
    }

    /// Matrix rows covered.
    pub const fn rows(&self) -> usize {
        self.row_range.1 - self.row_range.0
    }

    /// Weight bytes (rounded up).
    pub const fn weight_bytes(&self) -> usize {
        self.weight_bits.div_ceil(8)
    }
}

impl fmt::Display for PartitionUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "x{} ({} cols {}..{} rows {}..{}, {} xbars)",
            self.index,
            self.node,
            self.col_range.0,
            self.col_range.1,
            self.row_range.0,
            self.row_range.1,
            self.crossbars
        )
    }
}

/// The full decomposition of a network for a given chip: units in
/// topological layer order (`M` units total), plus per-node index
/// ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitSequence {
    units: Vec<PartitionUnit>,
    /// `(node, first_unit, one_past_last_unit)` per weighted node in
    /// topological order.
    node_ranges: Vec<(NodeId, usize, usize)>,
}

impl UnitSequence {
    /// The units in order.
    pub fn units(&self) -> &[PartitionUnit] {
        &self.units
    }

    /// Number of units `M`.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// `true` when the network has no weighted layers.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// One unit by index.
    pub fn unit(&self, index: usize) -> &PartitionUnit {
        &self.units[index]
    }

    /// Iterates `(node, unit_range)` in topological order.
    pub fn node_ranges(&self) -> impl Iterator<Item = (NodeId, std::ops::Range<usize>)> + '_ {
        self.node_ranges.iter().map(|&(n, a, b)| (n, a..b))
    }

    /// The unit index range of a node, if it is a weighted node of the
    /// decomposed network.
    pub fn range_of(&self, node: NodeId) -> Option<std::ops::Range<usize>> {
        self.node_ranges.iter().find(|&&(n, _, _)| n == node).map(|&(_, a, b)| a..b)
    }

    /// Distinct weighted nodes whose units intersect `span`.
    pub fn nodes_in_span(&self, span: std::ops::Range<usize>) -> Vec<NodeId> {
        self.node_ranges
            .iter()
            .filter(|&&(_, a, b)| a < span.end && b > span.start)
            .map(|&(n, _, _)| n)
            .collect()
    }

    /// Total crossbars of units in `span` (replication 1).
    pub fn span_crossbars(&self, span: std::ops::Range<usize>) -> usize {
        self.units[span].iter().map(|u| u.crossbars).sum()
    }

    /// Total weight bits of units in `span` (replication 1).
    pub fn span_weight_bits(&self, span: std::ops::Range<usize>) -> usize {
        self.units[span].iter().map(|u| u.weight_bits).sum()
    }
}

/// Decomposes `network` into partition units for `chip`.
///
/// Units are emitted in topological layer order; within a layer, by
/// ascending column range then row range. Every unit is guaranteed to
/// fit a single core's crossbar budget.
///
/// # Panics
///
/// Panics if `chip` fails [`ChipSpec::validate`] (callers are expected
/// to validate configurations first; [`crate::Compiler::new`] does).
pub fn decompose(network: &Network, chip: &ChipSpec) -> UnitSequence {
    chip.validate().expect("chip configuration must be valid");
    let xpc = chip.crossbars_per_core;
    let xbar = &chip.crossbar;
    let precision = chip.precision;
    let weight_cols = xbar.weight_cols(precision).max(1);
    let mut units = Vec::new();
    let mut node_ranges = Vec::new();

    for node in network.weighted_nodes() {
        let (rows, cols) = node.kind.matrix_dims().expect("weighted nodes have matrix dims");
        let mvms = node.kind.mvms_per_sample(node.output_shape);
        let start = units.len();
        let row_tiles = rows.div_ceil(xbar.rows);

        if row_tiles <= xpc {
            // Split along the output dimension only: each unit takes as
            // many column tiles as fit a core above the full row stack.
            let col_tiles_per_unit = (xpc / row_tiles).max(1);
            let unit_cols = col_tiles_per_unit * weight_cols;
            let mut c = 0;
            while c < cols {
                let c_end = (c + unit_cols).min(cols);
                push_unit(&mut units, node.id, (c, c_end), (0, rows), mvms, chip, false);
                c = c_end;
            }
        } else {
            // Row dimension alone exceeds a core: split rows into
            // core-sized groups, one column tile wide.
            let rows_per_unit = xpc * xbar.rows;
            let mut c = 0;
            while c < cols {
                let c_end = (c + weight_cols).min(cols);
                let mut r = 0;
                while r < rows {
                    let r_end = (r + rows_per_unit).min(rows);
                    let split = !(r == 0 && r_end == rows);
                    push_unit(&mut units, node.id, (c, c_end), (r, r_end), mvms, chip, split);
                    r = r_end;
                }
                c = c_end;
            }
        }
        node_ranges.push((node.id, start, units.len()));
    }
    UnitSequence { units, node_ranges }
}

fn push_unit(
    units: &mut Vec<PartitionUnit>,
    node: NodeId,
    col_range: (usize, usize),
    row_range: (usize, usize),
    mvms: usize,
    chip: &ChipSpec,
    row_split: bool,
) {
    let rows = row_range.1 - row_range.0;
    let cols = col_range.1 - col_range.0;
    let fp = crossbars_for_matrix(rows, cols, &chip.crossbar, chip.precision);
    let index = units.len();
    units.push(PartitionUnit {
        index,
        node,
        col_range,
        row_range,
        crossbars: fp.crossbars(),
        weight_bits: rows * cols * chip.precision.bits(),
        mvms_per_sample: mvms,
        row_split,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::ChipSpec;
    use pim_model::zoo;

    #[test]
    fn every_unit_fits_one_core() {
        for chip in [ChipSpec::chip_s(), ChipSpec::chip_m(), ChipSpec::chip_l()] {
            for net in [zoo::vgg16(), zoo::resnet18(), zoo::squeezenet()] {
                let seq = decompose(&net, &chip);
                assert!(!seq.is_empty());
                for u in seq.units() {
                    assert!(
                        u.crossbars <= chip.crossbars_per_core,
                        "{} unit {} exceeds core ({} > {})",
                        net.name(),
                        u.index,
                        u.crossbars,
                        chip.crossbars_per_core
                    );
                    assert!(u.crossbars > 0);
                    assert!(u.cols() > 0 && u.rows() > 0);
                }
            }
        }
    }

    #[test]
    fn units_cover_all_weights_exactly() {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let seq = decompose(&net, &chip);
        let total_bits: usize = seq.units().iter().map(|u| u.weight_bits).sum();
        let expected =
            pim_model::stats::NetworkStats::of(&net, chip.precision).total_weight_bytes() * 8;
        // weight_bits uses exact (unpadded) cell counts, so totals match.
        assert_eq!(total_bits, expected);
    }

    #[test]
    fn node_ranges_partition_the_sequence() {
        let chip = ChipSpec::chip_m();
        let seq = decompose(&zoo::squeezenet(), &chip);
        let mut expected_start = 0;
        for (_, range) in seq.node_ranges() {
            assert_eq!(range.start, expected_start);
            assert!(range.end > range.start);
            expected_start = range.end;
        }
        assert_eq!(expected_start, seq.len());
    }

    #[test]
    fn vgg_fc6_is_row_split() {
        let chip = ChipSpec::chip_s();
        let net = zoo::vgg16();
        let seq = decompose(&net, &chip);
        let fc6 = net.nodes().iter().find(|n| n.name == "fc6").unwrap();
        let range = seq.range_of(fc6.id).unwrap();
        assert!(range.len() > 100, "fc6 splits into many units: {}", range.len());
        assert!(seq.units()[range].iter().all(|u| u.row_split));
    }

    #[test]
    fn small_conv_is_single_unit() {
        let chip = ChipSpec::chip_m();
        let net = zoo::squeezenet();
        let seq = decompose(&net, &chip);
        // fire2 squeeze: 64 -> 16 channels, 1x1: 64 x 16 matrix = 1 xbar.
        let squeeze = net.nodes().iter().find(|n| n.name == "fire2_squeeze").unwrap();
        let range = seq.range_of(squeeze.id).unwrap();
        assert_eq!(range.len(), 1);
        assert_eq!(seq.unit(range.start).crossbars, 1);
    }

    #[test]
    fn chip_size_changes_unit_count() {
        let net = zoo::vgg16();
        let m_small = decompose(&net, &ChipSpec::chip_s()).len();
        let m_large = decompose(&net, &ChipSpec::chip_l()).len();
        // Bigger cores pack more columns per unit -> fewer units.
        assert!(m_large < m_small, "L {m_large} vs S {m_small}");
    }

    #[test]
    fn nodes_in_span_intersects() {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let seq = decompose(&net, &chip);
        let all = seq.nodes_in_span(0..seq.len());
        assert_eq!(all.len(), seq.node_ranges().count());
        let first = seq.nodes_in_span(0..1);
        assert_eq!(first.len(), 1);
    }

    #[test]
    fn mvm_counts_match_output_spatial() {
        let chip = ChipSpec::chip_m();
        let net = zoo::resnet18();
        let seq = decompose(&net, &chip);
        let conv1 = net.nodes().iter().find(|n| n.name == "conv1").unwrap();
        let range = seq.range_of(conv1.id).unwrap();
        for u in &seq.units()[range] {
            assert_eq!(u.mvms_per_sample, 112 * 112);
        }
    }
}
