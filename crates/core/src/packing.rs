//! First-fit-decreasing core packing.
//!
//! Partition units (and their replicas) are assigned to PIM cores by
//! crossbar count. A unit never spans two cores (it is sized to fit
//! one), but several small units may share a core — mirroring
//! PIMCOMP-style core mapping.

use serde::{Deserialize, Serialize};

/// One item to pack: an opaque id plus its crossbar footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackItem {
    /// Caller-defined identifier (e.g. unit index or replica id).
    pub id: usize,
    /// Crossbars required.
    pub crossbars: usize,
}

/// Result of a successful packing: `assignment[i]` is the core index of
/// the item with the same position in the *input* order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packing {
    /// Core index per input item.
    pub assignment: Vec<usize>,
    /// Number of cores used.
    pub cores_used: usize,
    /// Free crossbars per used core.
    pub slack: Vec<usize>,
}

/// Packs `items` into at most `cores` bins of `capacity` crossbars each
/// using first-fit-decreasing. Returns `None` if the items do not fit
/// (or an item exceeds the capacity outright).
///
/// FFD is monotone for our purposes: adding items never reduces the
/// number of bins needed, which keeps the validity map's
/// max-end-per-start structure well-defined.
///
/// # Example
///
/// ```
/// use compass::packing::{pack_ffd, PackItem};
///
/// let items = vec![
///     PackItem { id: 0, crossbars: 5 },
///     PackItem { id: 1, crossbars: 4 },
///     PackItem { id: 2, crossbars: 4 },
/// ];
/// let packing = pack_ffd(&items, 2, 9).expect("fits in two cores");
/// assert_eq!(packing.cores_used, 2);
/// ```
pub fn pack_ffd(items: &[PackItem], cores: usize, capacity: usize) -> Option<Packing> {
    if items.is_empty() {
        return Some(Packing { assignment: Vec::new(), cores_used: 0, slack: Vec::new() });
    }
    // Sort indices by descending size (stable to keep determinism).
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].crossbars.cmp(&items[a].crossbars).then(a.cmp(&b)));

    let mut free: Vec<usize> = Vec::new();
    let mut assignment = vec![usize::MAX; items.len()];
    for &idx in &order {
        let need = items[idx].crossbars;
        if need > capacity {
            return None;
        }
        match free.iter().position(|&f| f >= need) {
            Some(bin) => {
                free[bin] -= need;
                assignment[idx] = bin;
            }
            None => {
                if free.len() == cores {
                    return None;
                }
                free.push(capacity - need);
                assignment[idx] = free.len() - 1;
            }
        }
    }
    Some(Packing { cores_used: free.len(), assignment, slack: free })
}

/// `true` if `items` fit into `cores` bins of `capacity`.
pub fn fits(items: &[PackItem], cores: usize, capacity: usize) -> bool {
    pack_ffd(items, cores, capacity).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(sizes: &[usize]) -> Vec<PackItem> {
        sizes.iter().enumerate().map(|(id, &crossbars)| PackItem { id, crossbars }).collect()
    }

    #[test]
    fn empty_input_uses_no_cores() {
        let p = pack_ffd(&[], 4, 9).unwrap();
        assert_eq!(p.cores_used, 0);
    }

    #[test]
    fn exact_fill() {
        let p = pack_ffd(&items(&[9, 9, 9]), 3, 9).unwrap();
        assert_eq!(p.cores_used, 3);
        assert!(p.slack.iter().all(|&s| s == 0));
    }

    #[test]
    fn ffd_packs_mixed_sizes_tightly() {
        // 6+3, 5+4 fit into two bins of 9; naive first-fit in input
        // order (6,5,4,3) would also work; FFD guarantees it.
        let p = pack_ffd(&items(&[3, 6, 4, 5]), 2, 9).unwrap();
        assert_eq!(p.cores_used, 2);
    }

    #[test]
    fn rejects_when_capacity_exceeded() {
        assert!(pack_ffd(&items(&[10]), 4, 9).is_none());
        assert!(pack_ffd(&items(&[9; 5]), 4, 9).is_none());
    }

    #[test]
    fn assignment_indices_match_input_order() {
        let input = items(&[2, 8, 3]);
        let p = pack_ffd(&input, 2, 9).unwrap();
        assert_eq!(p.assignment.len(), 3);
        // Each assignment is a valid core id.
        for &core in &p.assignment {
            assert!(core < p.cores_used);
        }
        // Per-core load never exceeds capacity.
        let mut load = vec![0usize; p.cores_used];
        for (item, &core) in input.iter().zip(&p.assignment) {
            load[core] += item.crossbars;
        }
        assert!(load.iter().all(|&l| l <= 9));
    }

    #[test]
    fn monotone_in_items() {
        // If a set fits, any prefix of it fits (using same bins).
        let all = items(&[4, 4, 4, 4, 4, 4]);
        assert!(fits(&all, 3, 9));
        assert!(fits(&all[..3], 3, 9));
        // Adding one more item no longer fits 3 cores of 9.
        let mut more = all.clone();
        more.push(PackItem { id: 6, crossbars: 4 });
        assert!(!fits(&more, 3, 9));
    }
}
