//! The partition validity map (paper §III-B1, Fig. 5).
//!
//! Random partition positions rarely produce valid partitions when the
//! model is large and the chip small, so COMPASS precomputes, for every
//! start position, the furthest end position that still fits the chip.
//! Partition generation then samples only within valid ranges.

use crate::decompose::UnitSequence;
use crate::packing::{fits, PackItem};
use pim_arch::ChipSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// For each start unit `i`, the largest `j` such that units `[i, j)`
/// form a valid partition (fit the chip's cores at replication 1).
///
/// Validity is *prefix-monotone*: if `[i, j)` is valid then `[i, k)` is
/// valid for all `i < k ≤ j`, because dropping units never increases
/// the packing requirement (first-fit-decreasing packing is monotone in
/// the item multiset).
///
/// # Example
///
/// ```
/// use compass::{decompose, ValidityMap};
/// use pim_arch::ChipSpec;
/// use pim_model::zoo;
///
/// let chip = ChipSpec::chip_s();
/// let seq = decompose(&zoo::resnet18(), &chip);
/// let map = ValidityMap::build(&seq, &chip);
/// assert!(map.is_valid(0, map.max_end(0)));
/// assert!(map.max_end(0) >= 1, "a single unit always fits");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidityMap {
    max_end: Vec<usize>,
    len: usize,
}

impl ValidityMap {
    /// Builds the map for a decomposed model on `chip`.
    ///
    /// Complexity: O(M · W log W) where `W` is the widest valid span —
    /// each start extends a sliding window with incremental refits.
    pub fn build(seq: &UnitSequence, chip: &ChipSpec) -> Self {
        let m = seq.len();
        let cores = chip.cores;
        let capacity = chip.crossbars_per_core;
        let total = cores * capacity;
        let mut max_end = vec![0usize; m];
        let mut window: Vec<PackItem> = Vec::new();
        let mut end = 0usize;
        #[allow(clippy::needless_range_loop)] // `start` is the algorithmic window origin
        for start in 0..m {
            if end < start {
                end = start;
                window.clear();
            }
            // Grow the window while the span remains packable. A cheap
            // total-crossbars bound prunes most failing extensions
            // before running FFD.
            loop {
                if end >= m {
                    break;
                }
                let unit = seq.unit(end);
                let sum: usize = window.iter().map(|i| i.crossbars).sum::<usize>() + unit.crossbars;
                if sum > total {
                    break;
                }
                window.push(PackItem { id: unit.index, crossbars: unit.crossbars });
                if fits(&window, cores, capacity) {
                    end += 1;
                } else {
                    window.pop();
                    break;
                }
            }
            max_end[start] = end;
            // Slide: drop the unit at `start` before the next
            // iteration.
            if let Some(pos) = window.iter().position(|i| i.id == start) {
                window.remove(pos);
            }
        }
        Self { max_end, len: m }
    }

    /// Number of units `M`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the decomposition had no units.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The largest valid end (exclusive) for a partition starting at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= len`.
    pub fn max_end(&self, start: usize) -> usize {
        self.max_end[start]
    }

    /// `true` if units `[start, end)` form a valid partition.
    pub fn is_valid(&self, start: usize, end: usize) -> bool {
        start < end && end <= self.len && end <= self.max_end[start]
    }

    /// Fraction of `(i, j)` position pairs that are valid — the
    /// "valid portion" visualized in the paper's Fig. 5 (shrinks as
    /// models grow and chips shrink).
    pub fn valid_fraction(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let valid: usize = (0..self.len).map(|i| self.max_end[i] - i).sum();
        let total = self.len * (self.len + 1) / 2;
        valid as f64 / total as f64
    }

    /// Renders an ASCII heat map of the validity matrix (rows = start,
    /// cols = end), downsampled to at most `size x size` characters —
    /// a textual rendition of the paper's Fig. 5.
    pub fn ascii_map(&self, size: usize) -> String {
        if self.len == 0 {
            return String::new();
        }
        let size = size.clamp(1, self.len);
        let step = self.len.div_ceil(size);
        let mut out = String::new();
        for r in (0..self.len).step_by(step) {
            for c in (0..self.len).step_by(step) {
                let valid = c >= r && (c + 1) <= self.max_end[r];
                out.push(if valid { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ValidityMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ascii_map(48))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use pim_model::zoo;

    #[test]
    fn single_units_always_valid() {
        let chip = ChipSpec::chip_s();
        let seq = decompose(&zoo::squeezenet(), &chip);
        let map = ValidityMap::build(&seq, &chip);
        for i in 0..map.len() {
            assert!(map.max_end(i) > i, "unit {i} must at least fit alone");
            assert!(map.is_valid(i, i + 1));
        }
    }

    #[test]
    fn prefix_monotonicity() {
        let chip = ChipSpec::chip_s();
        let seq = decompose(&zoo::resnet18(), &chip);
        let map = ValidityMap::build(&seq, &chip);
        for i in 0..map.len() {
            for j in (i + 1)..=map.max_end(i) {
                assert!(map.is_valid(i, j), "({i}, {j}) inside max_end must be valid");
            }
            if map.max_end(i) < map.len() {
                assert!(!map.is_valid(i, map.max_end(i) + 1));
            }
        }
    }

    #[test]
    fn squeezenet_fits_whole_chip_somewhere() {
        // SqueezeNet (0.587 MiB) fits Chip-S (1.125 MiB) entirely:
        // the span from 0 must reach the end.
        let chip = ChipSpec::chip_s();
        let seq = decompose(&zoo::squeezenet(), &chip);
        let map = ValidityMap::build(&seq, &chip);
        assert_eq!(map.max_end(0), map.len(), "whole SqueezeNet fits Chip-S");
        assert_eq!(map.valid_fraction(), 1.0);
    }

    #[test]
    fn vgg_on_small_chip_is_mostly_invalid() {
        // Fig. 5's lower-right corner: big model, small chip.
        let chip = ChipSpec::chip_s();
        let seq = decompose(&zoo::vgg16(), &chip);
        let map = ValidityMap::build(&seq, &chip);
        assert!(map.max_end(0) < map.len(), "VGG16 cannot fit Chip-S in one partition");
        assert!(
            map.valid_fraction() < 0.5,
            "valid fraction should be small, got {}",
            map.valid_fraction()
        );
    }

    #[test]
    fn bigger_chip_is_more_valid() {
        let net = zoo::resnet18();
        let chip_s = ChipSpec::chip_s();
        let chip_l = ChipSpec::chip_l();
        let f_s = ValidityMap::build(&decompose(&net, &chip_s), &chip_s).valid_fraction();
        let f_l = ValidityMap::build(&decompose(&net, &chip_l), &chip_l).valid_fraction();
        assert!(f_l > f_s, "Chip-L fraction {f_l} should exceed Chip-S {f_s}");
    }

    #[test]
    fn ascii_map_has_valid_diagonal() {
        let chip = ChipSpec::chip_m();
        let seq = decompose(&zoo::tiny_cnn(), &chip);
        let map = ValidityMap::build(&seq, &chip);
        let art = map.ascii_map(16);
        assert!(art.contains('#'));
    }
}
