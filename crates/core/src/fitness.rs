//! Partition-group fitness and partition scores (paper §III-C1/C2).
//!
//! ## Memoization
//!
//! The GA re-scores thousands of candidates per run, and the
//! population is massively redundant at two levels:
//!
//! * **whole chromosomes** — survivors are re-evaluated every
//!   generation, so the context memoizes full evaluations by interned
//!   cut vector and returns [`Arc`]s: a hit is a hash lookup plus a
//!   pointer bump, with no plan or estimate cloned;
//! * **segments** — different chromosomes overwhelmingly share
//!   contiguous `[start, end)` unit spans (a mutation moves one cut;
//!   every other partition is unchanged). A partition's plan,
//!   replication, packing, and estimate depend *only* on its own span
//!   (see [`crate::plan::SegmentPlanner`]), so they are memoized per
//!   segment and reused across every group in the population. A new
//!   chromosome made of known segments costs per-partition clones and
//!   the group fold — no planning, packing, or estimation.
//!
//! Both memos live behind [`crate::memo::MemoShards`]: lock-per-shard
//! concurrent maps whose hot read path takes only a shared lock on
//! one shard, so evaluation is `&self` and a population's worth of
//! concurrent lookups never contend. Because every memoized value is
//! a **pure function of its key** (a segment's plan/estimate depends
//! only on its span; a group's evaluation only on its cut vector —
//! given the context's fixed knobs), racing writers always carry
//! interchangeable values and first-writer-wins insertion is sound.
//! That same purity is what makes the GA's speculative pipeline (see
//! [`crate::ga::run`]) byte-identical to serial evaluation: a
//! speculated result is either hit (saving the work) or harmlessly
//! retained, never *different*.
//!
//! Under the `parallel` feature, [`FitnessContext::evaluate_batch`]
//! dedupes in-batch misses first, fans out only the *true segment
//! misses* by reference, then assembles the miss groups in parallel
//! from the now-warm segment memo.

use crate::decompose::UnitSequence;
use crate::estimate::{Estimator, GroupEstimate, PartitionEstimate, SystemScaling};
use crate::memo::MemoShards;
use crate::partition::{Partition, PartitionGroup};
use crate::plan::{GroupPlan, PartitionPlan, SegmentPlanner};
use crate::replication::optimize_partition;
use crate::system::SystemTarget;
use crate::validity::ValidityMap;
use pim_arch::{ChipSpec, ScheduleMode, TimingMode};
use pim_model::Network;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the GA optimizes (the user-selectable fitness of §III-C1).
/// Lower is better in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FitnessKind {
    /// Partition latency (throughput optimization) — the paper's main
    /// operating mode.
    #[default]
    Latency,
    /// Partition latency × partition energy (EDP optimization).
    Edp,
}

/// An SLO-aware serving objective: score candidates by their
/// *estimated p99 latency under open-loop traffic*, not by bare
/// makespan — turning the GA into a serving tuner.
///
/// The tail model is the standard heavy-traffic waiting-time estimate
/// for a single-server queue: with offered batch utilization
/// `ρ = λ · T / batch_size` (arrival rate λ, service time `T` = the
/// candidate's batch latency), the p99 of sojourn time is
/// approximately `T · (1 + ρ/(2(1−ρ)) · ln 100)`. The estimate blows
/// up at `ρ → 1`; past `ρ = 0.99` it continues with a steep linear
/// extension so overloaded candidates stay strictly ordered (more
/// overload → strictly worse) instead of comparing as infinities.
///
/// The factor multiplies every partition's fitness, so `PGF` becomes
/// the p99 estimate while the relative steering between partitions —
/// which the mutation operators rely on — is preserved. Faster
/// candidates win twice under load: smaller `T` *and* smaller `ρ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingSlo {
    /// Mean request arrival rate, requests per second.
    pub arrival_rate_per_s: f64,
    /// Requests served per round (the serving frontend's batch size).
    pub batch_size: usize,
}

impl ServingSlo {
    /// Utilization past which the closed-form tail estimate hands over
    /// to the linear overload extension.
    const KNEE_RHO: f64 = 0.99;

    /// An objective for `arrival_rate_per_s` requests per second
    /// served `batch_size` at a time.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite rate, or a zero batch.
    pub fn new(arrival_rate_per_s: f64, batch_size: usize) -> Self {
        assert!(
            arrival_rate_per_s.is_finite() && arrival_rate_per_s > 0.0,
            "arrival rate must be positive and finite"
        );
        assert!(batch_size >= 1, "batches hold at least one request");
        Self { arrival_rate_per_s, batch_size }
    }

    /// The offered utilization of a candidate whose batch takes
    /// `service_ns` to serve.
    pub fn utilization(&self, service_ns: f64) -> f64 {
        let rate_per_ns = self.arrival_rate_per_s * 1e-9 / self.batch_size as f64;
        rate_per_ns * service_ns.max(0.0)
    }

    /// The multiplicative p99 penalty on a candidate's latency:
    /// `p99 ≈ factor · service_ns`. Continuous and strictly
    /// increasing in `service_ns`, ≥ 1, finite everywhere.
    pub fn p99_factor(&self, service_ns: f64) -> f64 {
        let ln100 = 100.0f64.ln();
        let knee = 1.0 + Self::KNEE_RHO / (2.0 * (1.0 - Self::KNEE_RHO)) * ln100;
        let rho = self.utilization(service_ns);
        if rho < Self::KNEE_RHO {
            1.0 + rho / (2.0 * (1.0 - rho)) * ln100
        } else {
            // Past the knee the closed form diverges; a steep linear
            // ramp keeps overloaded candidates finite, continuous at
            // the knee, and strictly ordered by how overloaded they
            // are.
            knee * (1.0 + (rho - Self::KNEE_RHO) * 100.0)
        }
    }
}

/// A fully evaluated partition group: plans, estimate, and the fitness
/// values the GA consumes.
#[derive(Debug, Clone)]
pub struct EvaluatedGroup {
    /// The chromosome.
    pub group: PartitionGroup,
    /// Resolved and replication-optimized plans.
    pub plans: GroupPlan,
    /// Analytical estimate at the GA's batch size.
    pub estimate: GroupEstimate,
    /// Per-partition fitness `f(Pₖ)` (lower is better).
    pub partition_fitness: Vec<f64>,
    /// Partition group fitness `PGF = Σₖ f(Pₖ)`.
    pub pgf: f64,
}

/// One memoized segment: its replication-optimized plan (with a
/// placeholder partition index) and its analytical estimate at the
/// context's batch size and modes.
struct SegmentEval {
    plan: PartitionPlan,
    estimate: PartitionEstimate,
}

/// Evaluation context shared across a GA run; memoizes whole
/// evaluations by interned cut vector and partition plans/estimates by
/// `(start, end)` segment (see the module docs).
pub struct FitnessContext<'a> {
    seq: &'a UnitSequence,
    planner: SegmentPlanner<'a>,
    validity: &'a ValidityMap,
    chip: &'a ChipSpec,
    batch: usize,
    kind: FitnessKind,
    timing_mode: TimingMode,
    schedule_mode: ScheduleMode,
    system: Option<SystemTarget>,
    /// Interconnect terms derived from `system` once (route walks are
    /// not free; candidates are scored thousands of times).
    system_scaling: Option<SystemScaling>,
    /// SLO-aware serving objective: score p99-under-load instead of
    /// bare latency.
    serving_slo: Option<ServingSlo>,
    cache: MemoShards<Arc<[usize]>, Arc<EvaluatedGroup>>,
    segments: MemoShards<(usize, usize), Arc<SegmentEval>>,
    /// `false` disables both memos (every evaluation recomputes) —
    /// the benchmark axis that prices what the memo buys.
    memo_enabled: bool,
    /// `false` keeps batch evaluation on the calling thread even in a
    /// `parallel` build — the benchmark's serial axis. Results are
    /// identical either way.
    parallel_eval: bool,
    /// Opt-in for the GA's speculative generation pipeline.
    speculation: bool,
}

// The context is shared by `&self` across the batch fan-out and the
// speculative pool; everything it holds must be lock-free-shareable
// (the memos carry their own per-shard locks).
#[cfg(feature = "parallel")]
#[allow(dead_code)]
fn _context_is_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<FitnessContext<'static>>();
}

impl<'a> FitnessContext<'a> {
    /// Creates a context scoring with the paper's analytic memory
    /// model.
    pub fn new(
        network: &'a Network,
        seq: &'a UnitSequence,
        validity: &'a ValidityMap,
        chip: &'a ChipSpec,
        batch: usize,
        kind: FitnessKind,
    ) -> Self {
        Self {
            seq,
            planner: SegmentPlanner::new(network, seq),
            validity,
            chip,
            batch,
            kind,
            timing_mode: TimingMode::Analytic,
            schedule_mode: ScheduleMode::Barrier,
            system: None,
            system_scaling: None,
            serving_slo: None,
            cache: MemoShards::default(),
            segments: MemoShards::default(),
            memo_enabled: true,
            parallel_eval: true,
            speculation: false,
        }
    }

    /// Drops every memoized score (both the whole-group memo and the
    /// segment memo) — required whenever a knob that shapes scores
    /// changes.
    fn clear_caches(&mut self) {
        self.cache.clear();
        self.segments.clear();
    }

    /// Enables or disables both memo tables. Disabling clears them;
    /// every later evaluation recomputes from scratch (the benchmark
    /// axis that prices what the memo buys). Re-enabling keeps the
    /// tables empty until evaluations refill them.
    pub fn with_memo(mut self, enabled: bool) -> Self {
        if !enabled {
            self.clear_caches();
        }
        self.memo_enabled = enabled;
        self
    }

    /// Keeps batch evaluation on the calling thread even when the
    /// `parallel` feature is compiled in (the benchmark's serial
    /// axis). Scores are identical either way; only the wall clock
    /// differs. No effect in a serial build.
    pub fn with_parallel_eval(mut self, enabled: bool) -> Self {
        self.parallel_eval = enabled;
        self
    }

    /// Opts the GA into generation-level speculative evaluation (see
    /// [`crate::ga::run`]). Inert without the `parallel` feature or
    /// with the memo disabled — speculation works by prewarming the
    /// shared memo, so without a memo there is nowhere for
    /// speculated results to land.
    pub fn with_speculation(mut self, enabled: bool) -> Self {
        self.speculation = enabled;
        self
    }

    /// Whether the GA should run its speculative pipeline: requires
    /// the `parallel` feature, the [`Self::with_speculation`] opt-in,
    /// and an enabled memo.
    pub fn speculation_enabled(&self) -> bool {
        cfg!(feature = "parallel") && self.speculation && self.memo_enabled
    }

    /// Whether batch evaluation fans out across threads.
    pub fn parallel_eval_enabled(&self) -> bool {
        cfg!(feature = "parallel") && self.parallel_eval
    }

    /// Pre-sizes both memos for `population` more chromosomes so
    /// steady-state generations never rehash mid-batch. The segment
    /// reservation is capped by the finite `(start, end)` key space.
    pub fn reserve_for_population(&self, population: usize) {
        if !self.memo_enabled {
            return;
        }
        self.cache.reserve(population);
        let units = self.planner.unit_count();
        let span_space = units * (units + 1) / 2;
        self.segments.reserve((population * 4).min(span_space));
    }

    /// Drops the whole-group memo's reference to one chromosome, so a
    /// caller holding the only other [`Arc`] can unwrap it in place
    /// instead of deep-cloning plans and estimates. Returns the
    /// dropped reference (if the chromosome was memoized) purely so
    /// the caller controls when it dies.
    pub fn release(&self, cuts: &[usize]) -> Option<Arc<EvaluatedGroup>> {
        self.cache.remove(cuts)
    }

    /// Whether a chromosome is currently memoized (diagnostics).
    pub fn memoized(&self, cuts: &[usize]) -> bool {
        self.cache.contains(cuts)
    }

    /// Scores candidates with the given memory timing mode, so the GA
    /// tunes partitions against the machine the closed-loop simulator
    /// will time. Clears the memo caches (cached scores are
    /// mode-specific).
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        if mode != self.timing_mode {
            self.clear_caches();
        }
        self.timing_mode = mode;
        self
    }

    /// Scores candidates for the given intra-chip stage dispatch
    /// policy (see [`Estimator::with_schedule_mode`]): under
    /// [`ScheduleMode::Interleaved`] the GA optimizes the bottleneck
    /// stage rather than the serial sum, matching what the interleaved
    /// executor will actually run. Clears the memo caches (cached
    /// scores are mode-specific).
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        if mode != self.schedule_mode {
            self.clear_caches();
        }
        self.schedule_mode = mode;
        self
    }

    /// Scores candidates for a multi-chip deployment (see
    /// [`Estimator::with_system`]), so the GA tunes partitions for
    /// the topology the system simulator will run. Clears the memo
    /// caches (cached scores are target-specific).
    pub fn with_system_target(mut self, target: Option<SystemTarget>) -> Self {
        if target != self.system {
            self.clear_caches();
        }
        self.system_scaling = target.as_ref().and_then(SystemScaling::of);
        self.system = target;
        self
    }

    /// Scores candidates by estimated p99 latency under the given
    /// open-loop traffic ([`ServingSlo`]) instead of bare latency —
    /// the GA optimizes the tail, not the makespan. Clears the memo
    /// caches (cached scores are objective-specific).
    pub fn with_serving_slo(mut self, slo: Option<ServingSlo>) -> Self {
        if slo != self.serving_slo {
            self.clear_caches();
        }
        self.serving_slo = slo;
        self
    }

    /// The timing mode candidates are scored under.
    pub fn timing_mode(&self) -> TimingMode {
        self.timing_mode
    }

    /// The validity map (used by mutation operators).
    pub fn validity(&self) -> &ValidityMap {
        self.validity
    }

    /// The unit sequence.
    pub fn seq(&self) -> &UnitSequence {
        self.seq
    }

    /// The estimator every segment and group is scored with.
    fn estimator(&self) -> Estimator<'a> {
        Estimator::new(self.chip)
            .with_timing_mode(self.timing_mode)
            .with_schedule_mode(self.schedule_mode)
            .with_system_scaling(self.system_scaling)
    }

    /// Plans, replication-optimizes, and estimates one segment. Pure
    /// with respect to shared immutable state, so segment misses can
    /// fan out across threads.
    fn compute_segment(
        planner: &SegmentPlanner<'_>,
        estimator: &Estimator<'_>,
        chip: &ChipSpec,
        batch: usize,
        partition: Partition,
    ) -> SegmentEval {
        let mut plan = planner.plan(0, partition);
        optimize_partition(&mut plan, chip);
        let estimate = estimator.estimate_partition(&plan, batch);
        SegmentEval { plan, estimate }
    }

    /// Recalls (or computes and memoizes) one segment. Safe to call
    /// from many threads: the memo's first-writer-wins insert keeps
    /// racing computations interchangeable.
    fn segment_eval(&self, partition: Partition) -> Arc<SegmentEval> {
        let compute = || {
            Arc::new(Self::compute_segment(
                &self.planner,
                &self.estimator(),
                self.chip,
                self.batch,
                partition,
            ))
        };
        if !self.memo_enabled {
            return compute();
        }
        let key = (partition.start, partition.end);
        if let Some(hit) = self.segments.get(&key) {
            return hit;
        }
        self.segments.insert(key, compute())
    }

    /// Evaluates (or recalls) a group. Cache hits are a shared-lock
    /// lookup plus a pointer bump; misses assemble the group from
    /// memoized segments and compute only what no earlier chromosome
    /// already paid for. `&self`: any number of threads may evaluate
    /// concurrently.
    pub fn evaluate(&self, group: &PartitionGroup) -> Arc<EvaluatedGroup> {
        if !self.memo_enabled {
            return Arc::new(self.evaluate_uncached(group));
        }
        if let Some(hit) = self.cache.get(group.cuts()) {
            return hit;
        }
        let eval = Arc::new(self.evaluate_uncached(group));
        self.cache.insert(group.cuts().into(), eval)
    }

    /// Evaluates a whole batch of groups, recalling cached results and
    /// computing the misses. Under the `parallel` feature (unless
    /// [`Self::with_parallel_eval`] opted out) in-batch misses are
    /// deduped first, the *true segment misses* — the bulk of the
    /// work — fan out across threads by reference, and the miss
    /// groups are then assembled in parallel from the warm segment
    /// memo.
    ///
    /// Results are identical to calling [`Self::evaluate`] in order,
    /// whatever the thread count.
    pub fn evaluate_batch(&self, groups: &[PartitionGroup]) -> Vec<Arc<EvaluatedGroup>> {
        #[cfg(feature = "parallel")]
        if self.parallel_eval {
            if !self.memo_enabled {
                use rayon::prelude::*;
                return groups
                    .par_iter()
                    .map(|group| Arc::new(self.evaluate_uncached(group)))
                    .collect();
            }
            self.warm_batch_parallel(groups);
        }
        groups.iter().map(|group| self.evaluate(group)).collect()
    }

    /// Parallel warm-up for [`Self::evaluate_batch`]: dedupes the
    /// batch's cache misses, fans the unique *segment* misses out
    /// across threads, then assembles the miss groups in parallel.
    /// Afterwards every group in the batch is a memo hit.
    #[cfg(feature = "parallel")]
    fn warm_batch_parallel(&self, groups: &[PartitionGroup]) {
        use fxhash::FxHashSet;
        use rayon::prelude::*;
        // Unique cache misses, first-occurrence order.
        let mut misses: Vec<&PartitionGroup> = Vec::new();
        let mut miss_cuts: FxHashSet<&[usize]> = FxHashSet::default();
        for group in groups {
            if !self.cache.contains(group.cuts()) && miss_cuts.insert(group.cuts()) {
                misses.push(group);
            }
        }
        if misses.is_empty() {
            return;
        }
        // Unique segment misses, first-occurrence order: N children
        // sharing a span compute it exactly once per generation
        // instead of racing.
        let mut seg_misses: Vec<Partition> = Vec::new();
        let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
        for group in &misses {
            for part in group.partitions() {
                let key = (part.start, part.end);
                if !self.segments.contains(&key) && seen.insert(key) {
                    seg_misses.push(part);
                }
            }
        }
        if !seg_misses.is_empty() {
            let planner = &self.planner;
            let estimator = self.estimator();
            let chip = self.chip;
            let batch = self.batch;
            let fresh: Vec<SegmentEval> = seg_misses
                .par_iter()
                .map(|&part| Self::compute_segment(planner, &estimator, chip, batch, part))
                .collect();
            for (part, eval) in seg_misses.iter().zip(fresh) {
                self.segments.insert((part.start, part.end), Arc::new(eval));
            }
        }
        // Group assembly (segment recall + the fold) is cheap per
        // group but a generation has hundreds of them — fan it out
        // too, inserting straight into the sharded memo.
        let _warmed: Vec<Arc<EvaluatedGroup>> =
            misses.par_iter().map(|group| self.evaluate(group)).collect();
    }

    /// The evaluation itself: per-segment plan/replicate/estimate
    /// (through the segment memo), then the group fold and score.
    fn evaluate_uncached(&self, group: &PartitionGroup) -> EvaluatedGroup {
        let parts = group.partitions();
        let mut plans = Vec::with_capacity(parts.len());
        let mut estimates = Vec::with_capacity(parts.len());
        for (k, &part) in parts.iter().enumerate() {
            let seg = self.segment_eval(part);
            let mut plan = seg.plan.clone();
            plan.index = k;
            plans.push(plan);
            estimates.push(seg.estimate);
        }
        let plans = GroupPlan::from_plans(plans);
        let estimate = self.estimator().combine_group(&plans, estimates, self.batch);
        // Under interleaving the group's batch cycle is shorter than
        // the serial partition sum; scale each partition's share so
        // `PGF = Σ f(Pₖ)` still equals the latency the executor pays
        // while the relative steering between partitions is preserved.
        let serial_ns: f64 = estimate.partitions.iter().map(|p| p.latency_ns).sum();
        let occupancy = if serial_ns > 0.0 { estimate.batch_latency_ns / serial_ns } else { 1.0 };
        // Under a serving SLO, inflate every partition's share by the
        // candidate's p99-under-load factor: PGF becomes the tail
        // estimate while relative steering between partitions — which
        // mutation targeting relies on — is unchanged.
        let slo_factor = match self.serving_slo {
            Some(slo) => slo.p99_factor(estimate.batch_latency_ns),
            None => 1.0,
        };
        let partition_fitness: Vec<f64> = estimate
            .partitions
            .iter()
            .map(|p| {
                let latency_ns = p.latency_ns * occupancy * slo_factor;
                match self.kind {
                    FitnessKind::Latency => latency_ns,
                    // µs × µJ keeps EDP fitness numerically tame.
                    FitnessKind::Edp => (latency_ns * 1e-3) * (p.energy.total_nj() * 1e-3),
                }
            })
            .collect();
        let pgf = partition_fitness.iter().sum();
        EvaluatedGroup { group: group.clone(), plans, estimate, partition_fitness, pgf }
    }

    /// Number of memoized whole-group evaluations.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of memoized `(start, end)` segments.
    pub fn segment_cache_len(&self) -> usize {
        self.segments.len()
    }
}

/// Mean per-unit fitness `E[m(xᵢ)]` over a population (§III-C2):
/// `m(xᵢ) = f(P)/|P|` where `P` is the partition containing `xᵢ` in a
/// given individual; the expectation averages over the population.
pub fn mean_unit_fitness(population: &[Arc<EvaluatedGroup>], unit_count: usize) -> Vec<f64> {
    let mut sums = vec![0.0; unit_count];
    if population.is_empty() {
        return sums;
    }
    for eval in population {
        for (k, part) in eval.group.partitions().iter().enumerate() {
            let m = eval.partition_fitness[k] / part.len() as f64;
            for i in part.range() {
                sums[i] += m;
            }
        }
    }
    let n = population.len() as f64;
    for s in &mut sums {
        *s /= n;
    }
    sums
}

/// Partition scores `Rₖ = f(Pₖ) / F[a,b]` for one individual, where
/// `F[a,b] = Σ_{i∈[a,b)} E[m(xᵢ)]` (§III-C2). A score above 1 means
/// the partition performs worse than the population expectation over
/// the same unit span — such partitions are selected for mutation.
pub fn partition_scores(eval: &EvaluatedGroup, mean_m: &[f64]) -> Vec<f64> {
    eval.group
        .partitions()
        .iter()
        .zip(&eval.partition_fitness)
        .map(|(part, &f)| {
            let expected: f64 = mean_m[part.range()].iter().sum();
            if expected > 0.0 {
                f / expected
            } else {
                1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        network: Network,
        seq: UnitSequence,
        validity: ValidityMap,
        chip: ChipSpec,
    }

    fn fixture() -> Fixture {
        let chip = ChipSpec::chip_s();
        let network = zoo::resnet18();
        let seq = decompose(&network, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        Fixture { network, seq, validity, chip }
    }

    #[test]
    fn pgf_is_sum_of_partition_fitness() {
        let f = fixture();
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(1);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let eval = ctx.evaluate(&group);
        let sum: f64 = eval.partition_fitness.iter().sum();
        assert!((sum - eval.pgf).abs() < 1e-6);
        assert_eq!(eval.partition_fitness.len(), group.partition_count());
    }

    #[test]
    fn evaluation_is_memoized() {
        let f = fixture();
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(2);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let a = ctx.evaluate(&group);
        let b = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        assert_eq!(a.pgf, b.pgf);
        // The second call is a pointer bump, not a recomputation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.segment_cache_len(), group.partition_count());
    }

    #[test]
    fn segments_are_shared_across_groups() {
        // Two chromosomes differing by one cut share every other
        // segment: the segment memo must grow by at most the two new
        // spans, and the shared partitions' plans must be reused.
        let f = fixture();
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(7);
        let base = PartitionGroup::random(&mut rng, &f.validity);
        let a = ctx.evaluate(&base);
        let segs_after_first = ctx.segment_cache_len();
        assert_eq!(segs_after_first, base.partition_count());
        // Drop one cut (the first whose merged span stays valid):
        // every partition except the merged pair is unchanged.
        let cuts = base.cuts();
        assert!(cuts.len() >= 2, "resnet18 on chip-S yields many partitions");
        let (dropped, merged) = (0..cuts.len())
            .find_map(|i| {
                let mut c = cuts.to_vec();
                c.remove(i);
                PartitionGroup::from_cuts(c, &f.validity).map(|g| (i, g))
            })
            .expect("some adjacent pair merges within validity");
        let b = ctx.evaluate(&merged);
        // Only the merged span is new.
        assert_eq!(ctx.segment_cache_len(), segs_after_first + 1);
        // Partitions before and after the merged pair score
        // identically through the shared segment memo.
        assert_eq!(&a.partition_fitness[..dropped], &b.partition_fitness[..dropped]);
        assert_eq!(
            &a.partition_fitness[dropped + 2..],
            &b.partition_fitness[dropped + 1..],
            "shared segments must reuse the memoized estimate"
        );
    }

    #[test]
    fn evaluate_batch_matches_sequential_evaluate() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(17);
        let groups: Vec<PartitionGroup> =
            (0..12).map(|_| PartitionGroup::random(&mut rng, &f.validity)).collect();
        // Include duplicates to exercise the first-occurrence dedup.
        let mut batch_input = groups.clone();
        batch_input.extend(groups.iter().take(3).cloned());

        let seq_ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let sequential: Vec<f64> = batch_input.iter().map(|g| seq_ctx.evaluate(g).pgf).collect();

        let batch_ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let batched: Vec<f64> =
            batch_ctx.evaluate_batch(&batch_input).iter().map(|e| e.pgf).collect();
        assert_eq!(sequential, batched);
        assert_eq!(seq_ctx.cache_len(), batch_ctx.cache_len());
        assert_eq!(seq_ctx.segment_cache_len(), batch_ctx.segment_cache_len());
    }

    #[test]
    fn memo_off_recomputes_but_scores_identically() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(31);
        let groups: Vec<PartitionGroup> =
            (0..6).map(|_| PartitionGroup::random(&mut rng, &f.validity)).collect();
        let memoized =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let bare =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency)
                .with_memo(false);
        let hot: Vec<f64> = memoized.evaluate_batch(&groups).iter().map(|e| e.pgf).collect();
        let cold: Vec<f64> = bare.evaluate_batch(&groups).iter().map(|e| e.pgf).collect();
        assert_eq!(hot, cold, "the memo must never change scores");
        assert_eq!(bare.cache_len(), 0, "disabled memo stores nothing");
        assert_eq!(bare.segment_cache_len(), 0);
        assert!(memoized.cache_len() > 0);
        // Repeat evaluation without the memo still matches.
        assert_eq!(bare.evaluate(&groups[0]).pgf, hot[0]);
    }

    #[test]
    fn release_unshares_a_memoized_winner() {
        let f = fixture();
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(37);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let eval = ctx.evaluate(&group);
        assert!(ctx.memoized(group.cuts()));
        drop(ctx.release(group.cuts()));
        assert!(!ctx.memoized(group.cuts()));
        assert_eq!(ctx.cache_len(), 0);
        // The caller now holds the only reference and can unwrap in
        // place — the whole point of releasing before `try_unwrap`.
        assert!(Arc::try_unwrap(eval).is_ok(), "no hidden owners may remain after release");
        // Releasing an unknown chromosome is a no-op.
        assert!(ctx.release(group.cuts()).is_none());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn serial_and_parallel_batches_agree_exactly() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(41);
        let groups: Vec<PartitionGroup> =
            (0..40).map(|_| PartitionGroup::random(&mut rng, &f.validity)).collect();
        let serial =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency)
                .with_parallel_eval(false);
        let parallel =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        assert!(!serial.parallel_eval_enabled());
        assert!(parallel.parallel_eval_enabled());
        let a: Vec<u64> = serial.evaluate_batch(&groups).iter().map(|e| e.pgf.to_bits()).collect();
        let b: Vec<u64> =
            parallel.evaluate_batch(&groups).iter().map(|e| e.pgf.to_bits()).collect();
        assert_eq!(a, b, "fan-out must be bit-identical to the serial path");
        assert_eq!(serial.cache_len(), parallel.cache_len());
        assert_eq!(serial.segment_cache_len(), parallel.segment_cache_len());
    }

    #[test]
    fn timing_mode_changes_scores_and_clears_cache() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let analytic = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let ctx = ctx.with_timing_mode(pim_arch::TimingMode::ClosedLoop);
        assert_eq!(ctx.cache_len(), 0, "mode switch must invalidate memoized scores");
        assert_eq!(ctx.segment_cache_len(), 0, "segment scores are mode-specific too");
        let closed = ctx.evaluate(&group);
        assert_ne!(analytic.pgf, closed.pgf);
    }

    #[test]
    fn system_target_changes_scores_and_clears_cache() {
        use crate::system::{SystemStrategy, SystemTarget};
        use pim_arch::Topology;
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(12);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let single = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::BatchShard);
        let ctx = ctx.with_system_target(Some(target));
        assert_eq!(ctx.cache_len(), 0, "target switch must invalidate memoized scores");
        assert_eq!(ctx.segment_cache_len(), 0);
        let sharded = ctx.evaluate(&group);
        assert!(sharded.pgf < single.pgf, "half the batch per chip must score cheaper");
    }

    #[test]
    fn schedule_mode_changes_scores_and_clears_cache() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(21);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 8, FitnessKind::Latency);
        let barrier = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let ctx = ctx.with_schedule_mode(ScheduleMode::Interleaved);
        assert_eq!(ctx.cache_len(), 0, "mode switch must invalidate memoized scores");
        let interleaved = ctx.evaluate(&group);
        // Compiled partitions all pack from core 0, so the occupancy
        // bound pins the interleaved score to the barrier one — the GA
        // must not chase overlap the executor cannot deliver.
        assert!(
            interleaved.pgf <= barrier.pgf + 1e-6,
            "interleaved occupancy never scores dearer: {} vs {}",
            interleaved.pgf,
            barrier.pgf
        );
        // PGF still equals the group's estimated batch latency.
        assert!((interleaved.pgf - interleaved.estimate.batch_latency_ns).abs() < 1e-6);
    }

    #[test]
    fn slo_p99_factor_is_monotone_and_continuous_at_the_knee() {
        let slo = ServingSlo::new(1e6, 4);
        // Strictly increasing in service time.
        let mut prev = 0.0;
        for service_ns in [0.0, 100.0, 1_000.0, 3_000.0, 3_960.0, 4_100.0, 10_000.0] {
            let f = slo.p99_factor(service_ns);
            assert!(f.is_finite() && f >= 1.0, "factor {f} at {service_ns} ns");
            assert!(f > prev || service_ns == 0.0, "factor must grow with load");
            prev = f;
        }
        // No cliff at the saturation knee: the two branches agree
        // where they meet (ρ = 0.99 at service = 3_960 ns here).
        let knee_service = ServingSlo::KNEE_RHO / (1e6 * 1e-9 / 4.0);
        let below = slo.p99_factor(knee_service * (1.0 - 1e-9));
        let above = slo.p99_factor(knee_service * (1.0 + 1e-9));
        assert!((below - above).abs() / below < 1e-3, "knee jump: {below} vs {above}");
        // An idle system adds no queueing.
        assert_eq!(slo.p99_factor(0.0), 1.0);
        // Larger batches drain the same arrival rate with less
        // per-request pressure.
        assert!(ServingSlo::new(1e6, 8).utilization(1_000.0) < slo.utilization(1_000.0));
    }

    #[test]
    fn serving_slo_penalizes_load_and_clears_cache() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(23);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let plain = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let ctx = ctx.with_serving_slo(Some(ServingSlo::new(50.0, 4)));
        assert_eq!(ctx.cache_len(), 0, "objective switch must invalidate memoized scores");
        assert_eq!(ctx.segment_cache_len(), 0);
        let light = ctx.evaluate(&group);
        assert!(light.pgf > plain.pgf, "any queueing inflates the tail estimate");
        // A hotter arrival stream scores strictly worse.
        let ctx = ctx.with_serving_slo(Some(ServingSlo::new(5_000.0, 4)));
        assert_eq!(ctx.cache_len(), 0);
        let heavy = ctx.evaluate(&group);
        assert!(
            heavy.pgf > light.pgf,
            "100x the traffic must fatten the tail: {} vs {}",
            heavy.pgf,
            light.pgf
        );
        // The factor is uniform across partitions: PGF stays the sum
        // and relative steering is untouched.
        let sum: f64 = heavy.partition_fitness.iter().sum();
        assert!((sum - heavy.pgf).abs() < 1e-6);
        let ratio = heavy.partition_fitness[0] / plain.partition_fitness[0];
        for (h, p) in heavy.partition_fitness.iter().zip(&plain.partition_fitness) {
            assert!((h / p - ratio).abs() < 1e-9, "uniform inflation per partition");
        }
        // Dropping the SLO restores the bare-latency objective.
        let ctx = ctx.with_serving_slo(None);
        assert_eq!(ctx.cache_len(), 0);
        assert_eq!(ctx.evaluate(&group).pgf, plain.pgf);
    }

    #[test]
    fn edp_fitness_differs_from_latency() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let lat =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let edp =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Edp);
        let a = lat.evaluate(&group);
        let b = edp.evaluate(&group);
        assert_ne!(a.pgf, b.pgf);
    }

    #[test]
    fn mean_unit_fitness_covers_all_units() {
        let f = fixture();
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(4);
        let evals: Vec<Arc<EvaluatedGroup>> = (0..5)
            .map(|_| {
                let g = PartitionGroup::random(&mut rng, &f.validity);
                ctx.evaluate(&g)
            })
            .collect();
        let mean = mean_unit_fitness(&evals, f.seq.len());
        assert_eq!(mean.len(), f.seq.len());
        assert!(mean.iter().all(|&m| m > 0.0), "every unit has positive mean fitness");
    }

    #[test]
    fn partition_scores_centre_around_one() {
        let f = fixture();
        let ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(5);
        let evals: Vec<Arc<EvaluatedGroup>> = (0..8)
            .map(|_| {
                let g = PartitionGroup::random(&mut rng, &f.validity);
                ctx.evaluate(&g)
            })
            .collect();
        let mean = mean_unit_fitness(&evals, f.seq.len());
        // Average score across all partitions of all individuals
        // should be near 1 (it is a ratio against the population
        // expectation of the same spans).
        let mut all = Vec::new();
        for e in &evals {
            all.extend(partition_scores(e, &mean));
        }
        let avg: f64 = all.iter().sum::<f64>() / all.len() as f64;
        assert!((0.5..2.0).contains(&avg), "scores off-centre: {avg}");
        assert!(all.iter().all(|s| s.is_finite() && *s > 0.0));
    }
}
