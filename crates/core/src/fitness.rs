//! Partition-group fitness and partition scores (paper §III-C1/C2).
//!
//! ## Memoization
//!
//! The GA re-scores thousands of candidates per run, and the
//! population is massively redundant at two levels:
//!
//! * **whole chromosomes** — survivors are re-evaluated every
//!   generation, so the context memoizes full evaluations by interned
//!   cut vector and returns [`Arc`]s: a hit is a hash lookup plus a
//!   pointer bump, with no plan or estimate cloned;
//! * **segments** — different chromosomes overwhelmingly share
//!   contiguous `[start, end)` unit spans (a mutation moves one cut;
//!   every other partition is unchanged). A partition's plan,
//!   replication, packing, and estimate depend *only* on its own span
//!   (see [`crate::plan::SegmentPlanner`]), so they are memoized per
//!   segment and reused across every group in the population. A new
//!   chromosome made of known segments costs per-partition clones and
//!   the group fold — no planning, packing, or estimation.
//!
//! Under the `parallel` feature, [`FitnessContext::evaluate_batch`]
//! fans out only the *true segment misses*, by reference — no
//! per-candidate cloning before the fan-out.

use crate::decompose::UnitSequence;
use crate::estimate::{Estimator, GroupEstimate, PartitionEstimate, SystemScaling};
use crate::partition::{Partition, PartitionGroup};
use crate::plan::{GroupPlan, PartitionPlan, SegmentPlanner};
use crate::replication::optimize_partition;
use crate::system::SystemTarget;
use crate::validity::ValidityMap;
use fxhash::{FxHashMap, FxHashSet};
use pim_arch::{ChipSpec, ScheduleMode, TimingMode};
use pim_model::Network;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the GA optimizes (the user-selectable fitness of §III-C1).
/// Lower is better in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FitnessKind {
    /// Partition latency (throughput optimization) — the paper's main
    /// operating mode.
    #[default]
    Latency,
    /// Partition latency × partition energy (EDP optimization).
    Edp,
}

/// A fully evaluated partition group: plans, estimate, and the fitness
/// values the GA consumes.
#[derive(Debug, Clone)]
pub struct EvaluatedGroup {
    /// The chromosome.
    pub group: PartitionGroup,
    /// Resolved and replication-optimized plans.
    pub plans: GroupPlan,
    /// Analytical estimate at the GA's batch size.
    pub estimate: GroupEstimate,
    /// Per-partition fitness `f(Pₖ)` (lower is better).
    pub partition_fitness: Vec<f64>,
    /// Partition group fitness `PGF = Σₖ f(Pₖ)`.
    pub pgf: f64,
}

/// One memoized segment: its replication-optimized plan (with a
/// placeholder partition index) and its analytical estimate at the
/// context's batch size and modes.
struct SegmentEval {
    plan: PartitionPlan,
    estimate: PartitionEstimate,
}

/// Evaluation context shared across a GA run; memoizes whole
/// evaluations by interned cut vector and partition plans/estimates by
/// `(start, end)` segment (see the module docs).
pub struct FitnessContext<'a> {
    seq: &'a UnitSequence,
    planner: SegmentPlanner<'a>,
    validity: &'a ValidityMap,
    chip: &'a ChipSpec,
    batch: usize,
    kind: FitnessKind,
    timing_mode: TimingMode,
    schedule_mode: ScheduleMode,
    system: Option<SystemTarget>,
    /// Interconnect terms derived from `system` once (route walks are
    /// not free; candidates are scored thousands of times).
    system_scaling: Option<SystemScaling>,
    cache: FxHashMap<Arc<[usize]>, Arc<EvaluatedGroup>>,
    segments: FxHashMap<(usize, usize), Arc<SegmentEval>>,
}

impl<'a> FitnessContext<'a> {
    /// Creates a context scoring with the paper's analytic memory
    /// model.
    pub fn new(
        network: &'a Network,
        seq: &'a UnitSequence,
        validity: &'a ValidityMap,
        chip: &'a ChipSpec,
        batch: usize,
        kind: FitnessKind,
    ) -> Self {
        Self {
            seq,
            planner: SegmentPlanner::new(network, seq),
            validity,
            chip,
            batch,
            kind,
            timing_mode: TimingMode::Analytic,
            schedule_mode: ScheduleMode::Barrier,
            system: None,
            system_scaling: None,
            cache: FxHashMap::default(),
            segments: FxHashMap::default(),
        }
    }

    /// Drops every memoized score (both the whole-group memo and the
    /// segment memo) — required whenever a knob that shapes scores
    /// changes.
    fn clear_caches(&mut self) {
        self.cache.clear();
        self.segments.clear();
    }

    /// Scores candidates with the given memory timing mode, so the GA
    /// tunes partitions against the machine the closed-loop simulator
    /// will time. Clears the memo caches (cached scores are
    /// mode-specific).
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        if mode != self.timing_mode {
            self.clear_caches();
        }
        self.timing_mode = mode;
        self
    }

    /// Scores candidates for the given intra-chip stage dispatch
    /// policy (see [`Estimator::with_schedule_mode`]): under
    /// [`ScheduleMode::Interleaved`] the GA optimizes the bottleneck
    /// stage rather than the serial sum, matching what the interleaved
    /// executor will actually run. Clears the memo caches (cached
    /// scores are mode-specific).
    pub fn with_schedule_mode(mut self, mode: ScheduleMode) -> Self {
        if mode != self.schedule_mode {
            self.clear_caches();
        }
        self.schedule_mode = mode;
        self
    }

    /// Scores candidates for a multi-chip deployment (see
    /// [`Estimator::with_system`]), so the GA tunes partitions for
    /// the topology the system simulator will run. Clears the memo
    /// caches (cached scores are target-specific).
    pub fn with_system_target(mut self, target: Option<SystemTarget>) -> Self {
        if target != self.system {
            self.clear_caches();
        }
        self.system_scaling = target.as_ref().and_then(SystemScaling::of);
        self.system = target;
        self
    }

    /// The timing mode candidates are scored under.
    pub fn timing_mode(&self) -> TimingMode {
        self.timing_mode
    }

    /// The validity map (used by mutation operators).
    pub fn validity(&self) -> &ValidityMap {
        self.validity
    }

    /// The unit sequence.
    pub fn seq(&self) -> &UnitSequence {
        self.seq
    }

    /// The estimator every segment and group is scored with.
    fn estimator(&self) -> Estimator<'a> {
        Estimator::new(self.chip)
            .with_timing_mode(self.timing_mode)
            .with_schedule_mode(self.schedule_mode)
            .with_system_scaling(self.system_scaling)
    }

    /// Plans, replication-optimizes, and estimates one segment. Pure
    /// with respect to shared immutable state, so segment misses can
    /// fan out across threads.
    fn compute_segment(
        planner: &SegmentPlanner<'_>,
        estimator: &Estimator<'_>,
        chip: &ChipSpec,
        batch: usize,
        partition: Partition,
    ) -> SegmentEval {
        let mut plan = planner.plan(0, partition);
        optimize_partition(&mut plan, chip);
        let estimate = estimator.estimate_partition(&plan, batch);
        SegmentEval { plan, estimate }
    }

    /// Recalls (or computes and memoizes) one segment.
    fn segment_eval(&mut self, partition: Partition) -> Arc<SegmentEval> {
        let key = (partition.start, partition.end);
        if let Some(hit) = self.segments.get(&key) {
            return Arc::clone(hit);
        }
        let eval = Arc::new(Self::compute_segment(
            &self.planner,
            &self.estimator(),
            self.chip,
            self.batch,
            partition,
        ));
        self.segments.insert(key, Arc::clone(&eval));
        eval
    }

    /// Evaluates (or recalls) a group. Cache hits are pointer bumps;
    /// misses assemble the group from memoized segments and compute
    /// only what no earlier chromosome already paid for.
    pub fn evaluate(&mut self, group: &PartitionGroup) -> Arc<EvaluatedGroup> {
        if let Some(hit) = self.cache.get(group.cuts()) {
            return Arc::clone(hit);
        }
        let eval = Arc::new(self.evaluate_uncached(group));
        self.cache.insert(group.cuts().into(), Arc::clone(&eval));
        eval
    }

    /// Evaluates a whole batch of groups, recalling cached results and
    /// computing the misses. Under the `parallel` feature the *segment
    /// misses* — the only real work — fan out across threads, by
    /// reference.
    ///
    /// Results are identical to calling [`Self::evaluate`] in order,
    /// whatever the thread count.
    pub fn evaluate_batch(&mut self, groups: &[PartitionGroup]) -> Vec<Arc<EvaluatedGroup>> {
        // Unique cache misses, first-occurrence order.
        let mut misses: Vec<&PartitionGroup> = Vec::new();
        let mut miss_cuts: FxHashSet<&[usize]> = FxHashSet::default();
        for group in groups {
            if !self.cache.contains_key(group.cuts()) && miss_cuts.insert(group.cuts()) {
                misses.push(group);
            }
        }

        #[cfg(feature = "parallel")]
        if !misses.is_empty() {
            // Unique segment misses, first-occurrence order.
            let mut seg_misses: Vec<Partition> = Vec::new();
            let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
            for group in &misses {
                for part in group.partitions() {
                    let key = (part.start, part.end);
                    if !self.segments.contains_key(&key) && seen.insert(key) {
                        seg_misses.push(part);
                    }
                }
            }
            if !seg_misses.is_empty() {
                use rayon::prelude::*;
                let planner = &self.planner;
                let estimator = self.estimator();
                let chip = self.chip;
                let batch = self.batch;
                let fresh: Vec<SegmentEval> = seg_misses
                    .par_iter()
                    .map(|&part| Self::compute_segment(planner, &estimator, chip, batch, part))
                    .collect();
                for (part, eval) in seg_misses.iter().zip(fresh) {
                    self.segments.insert((part.start, part.end), Arc::new(eval));
                }
            }
        }

        // Assemble the miss groups (every segment is memoized by now
        // under `parallel`; computed inline otherwise) and recall.
        for group in misses {
            let eval = Arc::new(self.evaluate_uncached(group));
            self.cache.insert(group.cuts().into(), eval);
        }
        groups.iter().map(|g| Arc::clone(&self.cache[g.cuts()])).collect()
    }

    /// The evaluation itself: per-segment plan/replicate/estimate
    /// (through the segment memo), then the group fold and score.
    fn evaluate_uncached(&mut self, group: &PartitionGroup) -> EvaluatedGroup {
        let parts = group.partitions();
        let mut plans = Vec::with_capacity(parts.len());
        let mut estimates = Vec::with_capacity(parts.len());
        for (k, &part) in parts.iter().enumerate() {
            let seg = self.segment_eval(part);
            let mut plan = seg.plan.clone();
            plan.index = k;
            plans.push(plan);
            estimates.push(seg.estimate);
        }
        let plans = GroupPlan::from_plans(plans);
        let estimate = self.estimator().combine_group(&plans, estimates, self.batch);
        // Under interleaving the group's batch cycle is shorter than
        // the serial partition sum; scale each partition's share so
        // `PGF = Σ f(Pₖ)` still equals the latency the executor pays
        // while the relative steering between partitions is preserved.
        let serial_ns: f64 = estimate.partitions.iter().map(|p| p.latency_ns).sum();
        let occupancy = if serial_ns > 0.0 { estimate.batch_latency_ns / serial_ns } else { 1.0 };
        let partition_fitness: Vec<f64> = estimate
            .partitions
            .iter()
            .map(|p| {
                let latency_ns = p.latency_ns * occupancy;
                match self.kind {
                    FitnessKind::Latency => latency_ns,
                    // µs × µJ keeps EDP fitness numerically tame.
                    FitnessKind::Edp => (latency_ns * 1e-3) * (p.energy.total_nj() * 1e-3),
                }
            })
            .collect();
        let pgf = partition_fitness.iter().sum();
        EvaluatedGroup { group: group.clone(), plans, estimate, partition_fitness, pgf }
    }

    /// Number of memoized whole-group evaluations.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Number of memoized `(start, end)` segments.
    pub fn segment_cache_len(&self) -> usize {
        self.segments.len()
    }
}

/// Mean per-unit fitness `E[m(xᵢ)]` over a population (§III-C2):
/// `m(xᵢ) = f(P)/|P|` where `P` is the partition containing `xᵢ` in a
/// given individual; the expectation averages over the population.
pub fn mean_unit_fitness(population: &[Arc<EvaluatedGroup>], unit_count: usize) -> Vec<f64> {
    let mut sums = vec![0.0; unit_count];
    if population.is_empty() {
        return sums;
    }
    for eval in population {
        for (k, part) in eval.group.partitions().iter().enumerate() {
            let m = eval.partition_fitness[k] / part.len() as f64;
            for i in part.range() {
                sums[i] += m;
            }
        }
    }
    let n = population.len() as f64;
    for s in &mut sums {
        *s /= n;
    }
    sums
}

/// Partition scores `Rₖ = f(Pₖ) / F[a,b]` for one individual, where
/// `F[a,b] = Σ_{i∈[a,b)} E[m(xᵢ)]` (§III-C2). A score above 1 means
/// the partition performs worse than the population expectation over
/// the same unit span — such partitions are selected for mutation.
pub fn partition_scores(eval: &EvaluatedGroup, mean_m: &[f64]) -> Vec<f64> {
    eval.group
        .partitions()
        .iter()
        .zip(&eval.partition_fitness)
        .map(|(part, &f)| {
            let expected: f64 = mean_m[part.range()].iter().sum();
            if expected > 0.0 {
                f / expected
            } else {
                1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        network: Network,
        seq: UnitSequence,
        validity: ValidityMap,
        chip: ChipSpec,
    }

    fn fixture() -> Fixture {
        let chip = ChipSpec::chip_s();
        let network = zoo::resnet18();
        let seq = decompose(&network, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        Fixture { network, seq, validity, chip }
    }

    #[test]
    fn pgf_is_sum_of_partition_fitness() {
        let f = fixture();
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(1);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let eval = ctx.evaluate(&group);
        let sum: f64 = eval.partition_fitness.iter().sum();
        assert!((sum - eval.pgf).abs() < 1e-6);
        assert_eq!(eval.partition_fitness.len(), group.partition_count());
    }

    #[test]
    fn evaluation_is_memoized() {
        let f = fixture();
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(2);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let a = ctx.evaluate(&group);
        let b = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        assert_eq!(a.pgf, b.pgf);
        // The second call is a pointer bump, not a recomputation.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.segment_cache_len(), group.partition_count());
    }

    #[test]
    fn segments_are_shared_across_groups() {
        // Two chromosomes differing by one cut share every other
        // segment: the segment memo must grow by at most the two new
        // spans, and the shared partitions' plans must be reused.
        let f = fixture();
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(7);
        let base = PartitionGroup::random(&mut rng, &f.validity);
        let a = ctx.evaluate(&base);
        let segs_after_first = ctx.segment_cache_len();
        assert_eq!(segs_after_first, base.partition_count());
        // Drop one cut (the first whose merged span stays valid):
        // every partition except the merged pair is unchanged.
        let cuts = base.cuts();
        assert!(cuts.len() >= 2, "resnet18 on chip-S yields many partitions");
        let (dropped, merged) = (0..cuts.len())
            .find_map(|i| {
                let mut c = cuts.to_vec();
                c.remove(i);
                PartitionGroup::from_cuts(c, &f.validity).map(|g| (i, g))
            })
            .expect("some adjacent pair merges within validity");
        let b = ctx.evaluate(&merged);
        // Only the merged span is new.
        assert_eq!(ctx.segment_cache_len(), segs_after_first + 1);
        // Partitions before and after the merged pair score
        // identically through the shared segment memo.
        assert_eq!(&a.partition_fitness[..dropped], &b.partition_fitness[..dropped]);
        assert_eq!(
            &a.partition_fitness[dropped + 2..],
            &b.partition_fitness[dropped + 1..],
            "shared segments must reuse the memoized estimate"
        );
    }

    #[test]
    fn evaluate_batch_matches_sequential_evaluate() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(17);
        let groups: Vec<PartitionGroup> =
            (0..12).map(|_| PartitionGroup::random(&mut rng, &f.validity)).collect();
        // Include duplicates to exercise the first-occurrence dedup.
        let mut batch_input = groups.clone();
        batch_input.extend(groups.iter().take(3).cloned());

        let mut seq_ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let sequential: Vec<f64> = batch_input.iter().map(|g| seq_ctx.evaluate(g).pgf).collect();

        let mut batch_ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let batched: Vec<f64> =
            batch_ctx.evaluate_batch(&batch_input).iter().map(|e| e.pgf).collect();
        assert_eq!(sequential, batched);
        assert_eq!(seq_ctx.cache_len(), batch_ctx.cache_len());
        assert_eq!(seq_ctx.segment_cache_len(), batch_ctx.segment_cache_len());
    }

    #[test]
    fn timing_mode_changes_scores_and_clears_cache() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(9);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let analytic = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let mut ctx = ctx.with_timing_mode(pim_arch::TimingMode::ClosedLoop);
        assert_eq!(ctx.cache_len(), 0, "mode switch must invalidate memoized scores");
        assert_eq!(ctx.segment_cache_len(), 0, "segment scores are mode-specific too");
        let closed = ctx.evaluate(&group);
        assert_ne!(analytic.pgf, closed.pgf);
    }

    #[test]
    fn system_target_changes_scores_and_clears_cache() {
        use crate::system::{SystemStrategy, SystemTarget};
        use pim_arch::Topology;
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(12);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let single = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::BatchShard);
        let mut ctx = ctx.with_system_target(Some(target));
        assert_eq!(ctx.cache_len(), 0, "target switch must invalidate memoized scores");
        assert_eq!(ctx.segment_cache_len(), 0);
        let sharded = ctx.evaluate(&group);
        assert!(sharded.pgf < single.pgf, "half the batch per chip must score cheaper");
    }

    #[test]
    fn schedule_mode_changes_scores_and_clears_cache() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(21);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 8, FitnessKind::Latency);
        let barrier = ctx.evaluate(&group);
        assert_eq!(ctx.cache_len(), 1);
        let mut ctx = ctx.with_schedule_mode(ScheduleMode::Interleaved);
        assert_eq!(ctx.cache_len(), 0, "mode switch must invalidate memoized scores");
        let interleaved = ctx.evaluate(&group);
        // Compiled partitions all pack from core 0, so the occupancy
        // bound pins the interleaved score to the barrier one — the GA
        // must not chase overlap the executor cannot deliver.
        assert!(
            interleaved.pgf <= barrier.pgf + 1e-6,
            "interleaved occupancy never scores dearer: {} vs {}",
            interleaved.pgf,
            barrier.pgf
        );
        // PGF still equals the group's estimated batch latency.
        assert!((interleaved.pgf - interleaved.estimate.batch_latency_ns).abs() < 1e-6);
    }

    #[test]
    fn edp_fitness_differs_from_latency() {
        let f = fixture();
        let mut rng = StdRng::seed_from_u64(3);
        let group = PartitionGroup::random(&mut rng, &f.validity);
        let mut lat =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut edp =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Edp);
        let a = lat.evaluate(&group);
        let b = edp.evaluate(&group);
        assert_ne!(a.pgf, b.pgf);
    }

    #[test]
    fn mean_unit_fitness_covers_all_units() {
        let f = fixture();
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(4);
        let evals: Vec<Arc<EvaluatedGroup>> = (0..5)
            .map(|_| {
                let g = PartitionGroup::random(&mut rng, &f.validity);
                ctx.evaluate(&g)
            })
            .collect();
        let mean = mean_unit_fitness(&evals, f.seq.len());
        assert_eq!(mean.len(), f.seq.len());
        assert!(mean.iter().all(|&m| m > 0.0), "every unit has positive mean fitness");
    }

    #[test]
    fn partition_scores_centre_around_one() {
        let f = fixture();
        let mut ctx =
            FitnessContext::new(&f.network, &f.seq, &f.validity, &f.chip, 4, FitnessKind::Latency);
        let mut rng = StdRng::seed_from_u64(5);
        let evals: Vec<Arc<EvaluatedGroup>> = (0..8)
            .map(|_| {
                let g = PartitionGroup::random(&mut rng, &f.validity);
                ctx.evaluate(&g)
            })
            .collect();
        let mean = mean_unit_fitness(&evals, f.seq.len());
        // Average score across all partitions of all individuals
        // should be near 1 (it is a ratio against the population
        // expectation of the same spans).
        let mut all = Vec::new();
        for e in &evals {
            all.extend(partition_scores(e, &mean));
        }
        let avg: f64 = all.iter().sum::<f64>() / all.len() as f64;
        assert!((0.5..2.0).contains(&avg), "scores off-centre: {avg}");
        assert!(all.iter().all(|s| s.is_finite() && *s > 0.0));
    }
}
