//! Analytical latency/energy estimator.
//!
//! The GA evaluates thousands of candidate partition groups per run, so
//! COMPASS scores them with a fast analytical model (this module); the
//! event-driven `pim-sim` simulator provides the slower "measured"
//! numbers for the paper's figures. The model follows the paper's
//! enhanced PIMCOMP estimator (§IV-A2): unlike the original, it
//! accounts for weight loads and intermediate-feature load/stores.
//!
//! ## Timing model
//!
//! Per partition and batch `B`:
//!
//! * **replace** = max(DRAM weight stream, per-core crossbar write) —
//!   the two overlap because cores write while later weights stream;
//! * **pipeline interval** = the per-sample bottleneck over: slowest
//!   MVM stage (`ceil(spatial/r) · t_mvm`), VFU work, intra-partition
//!   bus traffic, and entry/exit DRAM traffic;
//! * **pipeline** = fill (one sample through all stages) +
//!   `(B-1) ·` interval;
//! * **partition latency** = replace + pipeline.
//!
//! A batch cycle executes every partition once:
//! `batch latency = Σ partition latency`, throughput = `B / batch
//! latency`.

use crate::plan::{GroupPlan, PartitionPlan};
use crate::system::{SystemStrategy, SystemTarget};
use pim_arch::{ChipSpec, EnergyModel, PowerBreakdown, ScheduleMode, TimingMode};
use pim_dram::DramConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency/energy estimate for one partition at a given batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionEstimate {
    /// Weight replacement phase (load + write), ns.
    pub replace_ns: f64,
    /// Pipelined compute phase for the whole batch, ns.
    pub pipeline_ns: f64,
    /// Pipeline fill time for the first sample, ns.
    pub fill_ns: f64,
    /// Per-sample steady-state interval, ns.
    pub interval_ns: f64,
    /// Total partition latency (replace + pipeline), ns.
    pub latency_ns: f64,
    /// Dynamic energy attributable to this partition.
    pub energy: PowerBreakdown,
}

/// Whole-group estimate: one batch cycle through every partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupEstimate {
    /// Batch size used.
    pub batch: usize,
    /// Per-partition estimates in execution order.
    pub partitions: Vec<PartitionEstimate>,
    /// Total latency of one batch cycle, ns.
    pub batch_latency_ns: f64,
    /// Total energy of one batch cycle (dynamic + static).
    pub energy: PowerBreakdown,
}

impl GroupEstimate {
    /// Inferences per second.
    pub fn throughput_ips(&self) -> f64 {
        if self.batch_latency_ns == 0.0 {
            return 0.0;
        }
        self.batch as f64 / (self.batch_latency_ns * 1e-9)
    }

    /// End-to-end latency seen by one sample (it waits for its whole
    /// batch), in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.batch_latency_ns * 1e-6
    }

    /// Energy per inference in microjoules.
    pub fn energy_per_inference_uj(&self) -> f64 {
        self.energy.total_uj() / self.batch as f64
    }

    /// Energy-delay product per sample: per-inference energy (µJ) ×
    /// end-to-end latency (ms) — the paper's Fig. 8 metric (µJ·ms).
    pub fn edp_per_inference(&self) -> f64 {
        self.energy_per_inference_uj() * self.latency_ms()
    }
}

impl fmt::Display for GroupEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} partitions, batch {}: {:.3} ms/batch, {:.1} inf/s, {:.1} uJ/inf, EDP {:.2}",
            self.partitions.len(),
            self.batch,
            self.latency_ms(),
            self.throughput_ips(),
            self.energy_per_inference_uj(),
            self.edp_per_inference()
        )
    }
}

/// The analytical estimator for a fixed chip.
///
/// # Example
///
/// ```
/// use compass::{decompose, estimate::Estimator, PartitionGroup, ValidityMap};
/// use compass::plan::GroupPlan;
/// use compass::replication::optimize_group;
/// use pim_arch::ChipSpec;
/// use pim_model::zoo;
/// use rand::SeedableRng;
///
/// let chip = ChipSpec::chip_m();
/// let net = zoo::squeezenet();
/// let seq = decompose(&net, &chip);
/// let validity = ValidityMap::build(&seq, &chip);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let group = PartitionGroup::random(&mut rng, &validity);
/// let mut plans = GroupPlan::build(&net, &seq, &group);
/// optimize_group(&mut plans, &chip);
/// let est = Estimator::new(&chip).estimate_group(&plans, 4);
/// assert!(est.throughput_ips() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Estimator<'c> {
    chip: &'c ChipSpec,
    energy: EnergyModel,
    mode: TimingMode,
    /// Intra-chip stage dispatch the estimate models (barrier is the
    /// paper's serial batch cycle).
    schedule: ScheduleMode,
    /// Explicit closed-loop channel-count override (mirrors the
    /// simulator's `with_dram_channels`).
    dram_channels: Option<usize>,
    /// Effective memory-channel streaming bandwidth for the selected
    /// timing mode, bytes/ns.
    mem_bandwidth_gbps: f64,
    /// Effective first-access latency for the selected timing mode, ns.
    mem_access_ns: f64,
    /// Multi-chip deployment terms (None for the paper's single chip).
    system: Option<SystemScaling>,
}

/// Interconnect terms derived from a [`SystemTarget`], folded into the
/// per-partition score so the GA ranks candidates by the machine the
/// system simulator will time. Deriving them walks the topology's
/// all-pairs routes, so callers scoring many candidates (the GA)
/// compute the scaling once and reuse it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SystemScaling {
    chips: usize,
    strategy: SystemStrategy,
    /// Bottleneck link bandwidth, bytes/ns.
    link_bandwidth_gbps: f64,
    /// Worst-case route propagation latency, ns.
    link_latency_ns: f64,
}

impl SystemScaling {
    /// The scaling terms of `target`; `None` for a single chip (no
    /// interconnect cost).
    pub(crate) fn of(target: &SystemTarget) -> Option<Self> {
        (!target.topology.is_single()).then(|| SystemScaling {
            chips: target.topology.chips(),
            strategy: target.strategy,
            link_bandwidth_gbps: target.topology.bottleneck_bandwidth_gbps(),
            link_latency_ns: target.topology.max_route_latency_ns(),
        })
    }
}

/// Fraction of aggregate LPDDR3 peak bandwidth a bulk sequential
/// stream sustains once refresh and row-crossing activates are paid
/// (the in-line controller measures > 0.8; 0.9 matches its bulk path).
const CLOSED_LOOP_STREAM_EFFICIENCY: f64 = 0.9;

/// The crossbar groups (cores) a partition's packing occupies: the
/// distinct assignment targets when a packing exists, else the first
/// `ceil(crossbars / per-core)` cores (the packer fills from core 0).
fn plan_used_cores(plan: &PartitionPlan, chip: &ChipSpec) -> Vec<usize> {
    match plan.packing.as_ref() {
        Some(packing) => {
            let mut cores: Vec<usize> = packing.assignment.clone();
            cores.sort_unstable();
            cores.dedup();
            cores
        }
        None => {
            let used = plan
                .replicated_crossbars()
                .div_ceil(chip.crossbars_per_core.max(1))
                .min(chip.cores.max(1));
            (0..used).collect()
        }
    }
}

impl<'c> Estimator<'c> {
    /// Creates an analytic-mode estimator for `chip` (the paper's
    /// methodology).
    pub fn new(chip: &'c ChipSpec) -> Self {
        Self {
            chip,
            energy: EnergyModel::new(chip),
            mode: TimingMode::Analytic,
            schedule: ScheduleMode::Barrier,
            dram_channels: None,
            mem_bandwidth_gbps: chip.memory.bandwidth_gbps,
            mem_access_ns: chip.memory.access_latency_ns,
            system: None,
        }
    }

    /// Scores partitions for a multi-chip deployment.
    ///
    /// Under [`SystemStrategy::BatchShard`] each partition is costed
    /// at this chip's shard of the batch (`ceil(batch / chips)`), so
    /// the group estimate describes one chip's round — which is the
    /// system's round, since shards run concurrently. Under
    /// [`SystemStrategy::LayerPipeline`] every partition is charged
    /// its entry activations crossing the bottleneck link (the
    /// hand-off it would pay if a chip boundary fell before it) — a
    /// pessimistic-by-construction term that steers the GA away from
    /// cutting at fat activation edges. A single-chip target is a
    /// no-op.
    pub fn with_system(self, target: &SystemTarget) -> Self {
        self.with_system_scaling(SystemScaling::of(target))
    }

    /// Precomputed variant of [`Self::with_system`] for callers that
    /// score many candidates against one fixed target.
    pub(crate) fn with_system_scaling(mut self, scaling: Option<SystemScaling>) -> Self {
        self.system = scaling;
        self
    }

    /// Switches the memory-channel terms to the selected timing mode.
    ///
    /// `Analytic` keeps the chip's coarse `MemorySpec` view (flat
    /// first-access latency + aggregate bandwidth). `ClosedLoop`
    /// derives the terms from the LPDDR3 controller configuration the
    /// closed-loop simulator runs — per-channel peak bandwidth scaled
    /// by channel count and stream efficiency, and a
    /// tRCD + tCL + tCCD first-access latency — so GA fitness ranks
    /// candidates by the machine the closed-loop simulator will
    /// actually time.
    pub fn with_timing_mode(mut self, mode: TimingMode) -> Self {
        self.mode = mode;
        self.refresh_memory_terms();
        self
    }

    /// Overrides the closed-loop channel count (mirror of the
    /// simulator's `with_dram_channels`, clamped to at least one).
    /// Without it, the count derives from the chip's aggregate
    /// bandwidth via [`DramConfig::channels_for_bandwidth`] — the same
    /// helper the simulator uses.
    pub fn with_dram_channels(mut self, channels: usize) -> Self {
        self.dram_channels = Some(channels.max(1));
        self.refresh_memory_terms();
        self
    }

    fn refresh_memory_terms(&mut self) {
        match self.mode {
            TimingMode::Analytic => {
                self.mem_bandwidth_gbps = self.chip.memory.bandwidth_gbps;
                self.mem_access_ns = self.chip.memory.access_latency_ns;
            }
            TimingMode::ClosedLoop => {
                let cfg = DramConfig::lpddr3_1600();
                let channels = self
                    .dram_channels
                    .unwrap_or_else(|| cfg.channels_for_bandwidth(self.chip.memory.bandwidth_gbps));
                self.mem_bandwidth_gbps =
                    channels as f64 * cfg.peak_bandwidth_gbps() * CLOSED_LOOP_STREAM_EFFICIENCY;
                self.mem_access_ns = (cfg.t_rcd + cfg.t_cl + cfg.t_ccd) as f64 * cfg.cycle_ns();
            }
        }
    }

    /// The timing mode the memory terms are derived from.
    pub fn timing_mode(&self) -> TimingMode {
        self.mode
    }

    /// Scores groups for the given intra-chip stage dispatch policy.
    ///
    /// Under [`ScheduleMode::Interleaved`] the batch cycle is paced by
    /// the bottleneck partition: successive batches overlap on the
    /// chip, so the non-bottleneck partitions' fill and drain amortize
    /// across the batch instead of every round paying
    /// `Σ partition latency` — the group's batch latency becomes
    /// `max(latency) + (Σ latency − max(latency)) / batch`. Barrier
    /// mode (the default) keeps the paper's serial sum.
    pub fn with_schedule_mode(mut self, schedule: ScheduleMode) -> Self {
        self.schedule = schedule;
        self
    }

    /// The stage dispatch policy group estimates are computed under.
    pub fn schedule_mode(&self) -> ScheduleMode {
        self.schedule
    }

    /// Estimates one partition at batch size `batch`.
    pub fn estimate_partition(&self, plan: &PartitionPlan, batch: usize) -> PartitionEstimate {
        let chip = self.chip;
        let requested_batch = batch.max(1);
        // Multi-chip terms: shard the batch, or charge the would-be
        // inter-chip hand-off of this partition's entry activations.
        let (batch, handoff_ns) = match &self.system {
            Some(sys) => match sys.strategy {
                SystemStrategy::BatchShard => (requested_batch.div_ceil(sys.chips).max(1), 0.0),
                // Fan-out charges the pessimistic pipeline hand-off
                // too: where its replicas shard the batch they also
                // split the hand-off, so the full-batch bound holds.
                SystemStrategy::LayerPipeline | SystemStrategy::FanOut => {
                    let bytes = plan.entry_bytes_per_sample() * requested_batch;
                    (requested_batch, bytes as f64 / sys.link_bandwidth_gbps + sys.link_latency_ns)
                }
            },
            None => (requested_batch, 0.0),
        };
        let t_mvm = chip.crossbar.mvm_latency_ns;

        // --- Weight replacement phase -------------------------------
        let weight_bytes = plan.weight_load_bytes();
        let load_ns = weight_bytes as f64 / self.mem_bandwidth_gbps + self.mem_access_ns;
        // Crossbars within a core are written sequentially; cores work
        // in parallel. Use the most-loaded core from the packing if
        // available.
        let max_core_xbars = plan
            .packing
            .as_ref()
            .map(|p| p.slack.iter().map(|&s| chip.crossbars_per_core - s).max().unwrap_or(0))
            .unwrap_or_else(|| plan.replicated_crossbars().div_ceil(chip.cores.max(1)));
        let write_ns = max_core_xbars as f64 * chip.crossbar.full_write_latency_ns();
        let replace_ns = load_ns.max(write_ns);

        // --- Pipelined compute phase --------------------------------
        let stage_max_ns =
            plan.slices.iter().map(|s| s.waves_per_sample() as f64 * t_mvm).fold(0.0, f64::max);
        let fill_ns: f64 = plan.slices.iter().map(|s| s.waves_per_sample() as f64 * t_mvm).sum();
        let cores_used =
            plan.packing.as_ref().map(|p| p.cores_used.max(1)).unwrap_or(chip.cores.max(1));
        let vfu_ns = plan.vfu_elements_per_sample as f64
            / (chip.core.vfu_throughput_per_ns() * cores_used as f64);
        let bus_ns = plan.intra_traffic_bytes_per_sample as f64 / chip.interconnect.bandwidth_gbps;
        let io_bytes = plan.entry_bytes_per_sample() + plan.exit_bytes_per_sample();
        let io_ns = io_bytes as f64 / self.mem_bandwidth_gbps
            + (plan.entries.len() + plan.exits.len()) as f64 * self.mem_access_ns;
        // Slices sharing a core serialize their MVM waves, so the
        // per-sample interval is bounded below by the total wave work
        // divided across the cores actually in use — not just the
        // slowest single stage.
        let core_serialization_ns = fill_ns / cores_used as f64;
        let interval_ns =
            stage_max_ns.max(core_serialization_ns).max(vfu_ns).max(bus_ns).max(io_ns);
        let pipeline_ns = fill_ns + (batch as f64 - 1.0) * interval_ns;
        let latency_ns = replace_ns + pipeline_ns + handoff_ns;

        // --- Energy -------------------------------------------------
        let b = batch as f64;
        let mut energy = PowerBreakdown::new();
        energy.mvm_nj = self.energy.mvm_energy_nj(plan.activations_per_sample()) * b;
        energy.weight_write_nj = self.energy.weight_write_energy_nj(plan.replicated_weight_bits());
        energy.weight_load_nj = self.energy.dram_energy_nj(weight_bytes * 8);
        energy.activation_dram_nj = self.energy.dram_energy_nj(io_bytes * 8) * b;
        energy.interconnect_nj = self.energy.bus_energy_nj(plan.intra_traffic_bytes_per_sample) * b;
        energy.vfu_nj = self.energy.vfu_energy_nj(plan.vfu_elements_per_sample) * b;

        PartitionEstimate { replace_ns, pipeline_ns, fill_ns, interval_ns, latency_ns, energy }
    }

    /// Estimates a full group: every partition executed once per batch
    /// cycle, plus chip static energy over the cycle.
    ///
    /// In barrier mode partitions run serially, so the cycle is the
    /// sum of their latencies. Under [`ScheduleMode::Interleaved`] the
    /// cycle is paced by the bottleneck partition with the remaining
    /// fill/drain amortized over the batch (successive batch cycles
    /// overlap on the chip) — see [`Self::with_schedule_mode`].
    pub fn estimate_group(&self, plans: &GroupPlan, batch: usize) -> GroupEstimate {
        let partitions: Vec<PartitionEstimate> =
            plans.plans().iter().map(|p| self.estimate_partition(p, batch)).collect();
        self.combine_group(plans, partitions, batch)
    }

    /// Folds already-computed per-partition estimates into the group
    /// estimate — the per-segment memo path of the fitness cache,
    /// where each partition's estimate may have been computed under a
    /// *different* group. Bitwise identical to
    /// [`Self::estimate_group`] given the same per-partition numbers.
    pub(crate) fn combine_group(
        &self,
        plans: &GroupPlan,
        partitions: Vec<PartitionEstimate>,
        batch: usize,
    ) -> GroupEstimate {
        let serial_ns: f64 = partitions.iter().map(|p| p.latency_ns).sum();
        let batch_latency_ns = match self.schedule {
            ScheduleMode::Barrier => serial_ns,
            ScheduleMode::Interleaved => {
                // Amortize over the samples the chip actually runs per
                // cycle: under a batch-sharding system target the
                // partitions above were costed at this chip's shard,
                // so the fill/drain hides behind that many samples,
                // not the full requested batch.
                let samples = match &self.system {
                    Some(sys) if sys.strategy == SystemStrategy::BatchShard => {
                        batch.max(1).div_ceil(sys.chips).max(1)
                    }
                    _ => batch.max(1),
                };
                let bottleneck = partitions.iter().map(|p| p.latency_ns).fold(0.0, f64::max);
                let amortized = bottleneck + (serial_ns - bottleneck) / samples as f64;
                // Stages sharing a crossbar group serialize, so the
                // cycle is bounded below by the busiest core's total
                // occupancy — the executor cannot overlap what the
                // packing put on one core. The scheduler shifts
                // alternating partitions onto disjoint groups where
                // capacity allows (`interleave_offsets`); applying the
                // same offsets here prices exactly the overlap the
                // executor will deliver. Groups whose packings still
                // collide (unpacked plans, a stage wider than half the
                // chip) keep the barrier-sum bound.
                let offsets = crate::scheduler::interleave_offsets(plans.plans(), self.chip);
                let mut core_occupancy_ns: Vec<f64> = Vec::new();
                for ((plan, est), &offset) in plans.plans().iter().zip(&partitions).zip(&offsets) {
                    for core in plan_used_cores(plan, self.chip) {
                        let core = core + offset;
                        if core_occupancy_ns.len() <= core {
                            core_occupancy_ns.resize(core + 1, 0.0);
                        }
                        core_occupancy_ns[core] += est.latency_ns;
                    }
                }
                core_occupancy_ns.iter().copied().fold(amortized, f64::max)
            }
        };
        let mut energy: PowerBreakdown =
            partitions.iter().fold(PowerBreakdown::new(), |acc, p| acc + p.energy);
        energy.static_nj = self.energy.static_energy_nj(batch_latency_ns);
        GroupEstimate { batch: batch.max(1), partitions, batch_latency_ns, energy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::partition::PartitionGroup;
    use crate::replication::optimize_group;
    use crate::validity::ValidityMap;
    use pim_model::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn optimized_plans(net: &pim_model::Network, chip: &ChipSpec, seed: u64) -> GroupPlan {
        let seq = decompose(net, chip);
        let validity = ValidityMap::build(&seq, chip);
        let mut rng = StdRng::seed_from_u64(seed);
        let group = PartitionGroup::random(&mut rng, &validity);
        let mut plans = GroupPlan::build(net, &seq, &group);
        optimize_group(&mut plans, chip);
        plans
    }

    #[test]
    fn latencies_are_positive_and_consistent() {
        let chip = ChipSpec::chip_m();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 1);
        let est = Estimator::new(&chip).estimate_group(&plans, 4);
        assert!(est.batch_latency_ns > 0.0);
        let sum: f64 = est.partitions.iter().map(|p| p.latency_ns).sum();
        assert!((sum - est.batch_latency_ns).abs() < 1e-6);
        for p in &est.partitions {
            assert!((p.latency_ns - (p.replace_ns + p.pipeline_ns)).abs() < 1e-6);
            assert!(p.fill_ns <= p.pipeline_ns + 1e-9);
        }
    }

    #[test]
    fn bigger_batch_raises_throughput() {
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 2);
        let estimator = Estimator::new(&chip);
        let t1 = estimator.estimate_group(&plans, 1).throughput_ips();
        let t16 = estimator.estimate_group(&plans, 16).throughput_ips();
        assert!(t16 > 1.5 * t1, "batch 16 should amortize weight replacement: {t1} -> {t16}");
    }

    #[test]
    fn bigger_batch_lowers_energy_per_inference() {
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 3);
        let estimator = Estimator::new(&chip);
        let e1 = estimator.estimate_group(&plans, 1).energy_per_inference_uj();
        let e16 = estimator.estimate_group(&plans, 16).energy_per_inference_uj();
        assert!(e16 < e1, "per-inference energy must fall with batch: {e1} -> {e16}");
    }

    #[test]
    fn replacement_energy_ratio_falls_with_batch() {
        // The Fig. 9 trend: write+load energy relative to MVM shrinks
        // as batch grows.
        let chip = ChipSpec::chip_m();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 4);
        let estimator = Estimator::new(&chip);
        let r1 = estimator.estimate_group(&plans, 1).energy.replacement_ratio();
        let r16 = estimator.estimate_group(&plans, 16).energy.replacement_ratio();
        assert!(r1 > 1.0, "at batch 1 replacement should dominate MVM: {r1}");
        assert!(r16 < r1 / 4.0, "batch 16 amortizes replacement: {r1} -> {r16}");
    }

    #[test]
    fn throughput_orders_of_magnitude_match_paper() {
        // ResNet18 on Chip-M at batch 16: the paper reports roughly
        // 400-750 inf/s for the best schemes. The analytical model
        // should land within a loose factor of that band.
        let chip = ChipSpec::chip_m();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 5);
        let est = Estimator::new(&chip).estimate_group(&plans, 16);
        let ips = est.throughput_ips();
        assert!(
            (30.0..5000.0).contains(&ips),
            "ResNet18-M-16 throughput out of plausible band: {ips}"
        );
    }

    #[test]
    fn energy_scales_with_batch_dynamically() {
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::squeezenet(), &chip, 6);
        let estimator = Estimator::new(&chip);
        let e2 = estimator.estimate_group(&plans, 2);
        let e8 = estimator.estimate_group(&plans, 8);
        // MVM energy is linear in batch.
        assert!((e8.energy.mvm_nj / e2.energy.mvm_nj - 4.0).abs() < 1e-6);
        // Weight write energy is batch-independent.
        assert!((e8.energy.weight_write_nj - e2.energy.weight_write_nj).abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::tiny_cnn(), &chip, 8);
        let est = Estimator::new(&chip).estimate_group(&plans, 2);
        assert!(est.to_string().contains("inf/s"));
    }

    #[test]
    fn system_targets_reshape_the_score() {
        use crate::system::{SystemStrategy, SystemTarget};
        use pim_arch::Topology;
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 10);
        let single = Estimator::new(&chip).estimate_group(&plans, 8);
        // Batch sharding over 2 chips costs each chip its half batch:
        // strictly cheaper per round, but dearer than half (weight
        // replacement does not shard).
        let shard = Estimator::new(&chip)
            .with_system(&SystemTarget::new(Topology::ring(2), SystemStrategy::BatchShard))
            .estimate_group(&plans, 8);
        assert!(shard.batch_latency_ns < single.batch_latency_ns);
        assert!(shard.batch_latency_ns > 0.5 * single.batch_latency_ns - 1e-9);
        // A layer pipeline charges inter-chip hand-offs on top.
        let pipeline = Estimator::new(&chip)
            .with_system(&SystemTarget::new(Topology::ring(2), SystemStrategy::LayerPipeline))
            .estimate_group(&plans, 8);
        assert!(pipeline.batch_latency_ns > single.batch_latency_ns);
        // A single-chip target is a no-op.
        let noop = Estimator::new(&chip)
            .with_system(&SystemTarget::single_chip())
            .estimate_group(&plans, 8);
        assert_eq!(noop.batch_latency_ns, single.batch_latency_ns);
    }

    #[test]
    fn interleaved_schedule_respects_crossbar_occupancy() {
        use pim_arch::ScheduleMode;
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 11);
        let batch = 8;
        let barrier = Estimator::new(&chip).estimate_group(&plans, batch);
        let interleaved = Estimator::new(&chip)
            .with_schedule_mode(ScheduleMode::Interleaved)
            .estimate_group(&plans, batch);
        assert!(plans.len() > 1, "needs a multi-partition group");
        // The estimate is the amortized pipeline bounded below by the
        // busiest crossbar group's occupancy, and never beats the
        // bottleneck stage or exceeds the serial sum.
        let bottleneck = barrier.partitions.iter().map(|p| p.latency_ns).fold(0.0, f64::max);
        assert!(interleaved.batch_latency_ns >= bottleneck - 1e-9);
        assert!(interleaved.batch_latency_ns <= barrier.batch_latency_ns + 1e-9);
        // When no interleave offsets apply the packings all collide on
        // core 0 and fully serialize: the occupancy bound must equal
        // the barrier sum — the GA cannot be lured by overlap the
        // executor would never deliver (tests/interleaving.rs pins the
        // executor side of the same claim-conflict behaviour).
        let offsets = crate::scheduler::interleave_offsets(plans.plans(), &chip);
        if offsets.iter().all(|&o| o == 0) {
            assert!(
                (interleaved.batch_latency_ns - barrier.batch_latency_ns).abs() < 1e-6,
                "core-0-conflicting plans must pace like barrier mode: {} vs {}",
                interleaved.batch_latency_ns,
                barrier.batch_latency_ns
            );
        }
        // Per-partition estimates are mode-independent.
        for (a, b) in barrier.partitions.iter().zip(&interleaved.partitions) {
            assert_eq!(a.latency_ns, b.latency_ns);
        }
    }

    #[test]
    fn disjoint_interleaved_packing_beats_the_barrier_estimate() {
        use pim_arch::ScheduleMode;
        // A group whose widest partition fits half the chip: the
        // scheduler shifts alternating stages onto disjoint crossbar
        // groups, so the occupancy bound no longer pins the estimate
        // to the barrier sum and interleaving strictly wins.
        let chip = ChipSpec::chip_l();
        let net = zoo::tiny_cnn();
        let plans = (0..64u64)
            .map(|seed| optimized_plans(&net, &chip, seed))
            .find(|plans| {
                plans.len() > 1
                    && crate::scheduler::interleave_offsets(plans.plans(), &chip)
                        .iter()
                        .any(|&o| o > 0)
            })
            .expect("some seed yields a half-chip multi-partition group");
        let batch = 8;
        let barrier = Estimator::new(&chip).estimate_group(&plans, batch);
        let interleaved = Estimator::new(&chip)
            .with_schedule_mode(ScheduleMode::Interleaved)
            .estimate_group(&plans, batch);
        assert!(
            interleaved.batch_latency_ns < barrier.batch_latency_ns - 1e-9,
            "disjoint groups must overlap: {} vs {}",
            interleaved.batch_latency_ns,
            barrier.batch_latency_ns
        );
        // Still bounded below by the bottleneck stage.
        let bottleneck = barrier.partitions.iter().map(|p| p.latency_ns).fold(0.0, f64::max);
        assert!(interleaved.batch_latency_ns >= bottleneck - 1e-9);
    }

    #[test]
    fn closed_loop_mode_changes_memory_terms_only() {
        use pim_arch::TimingMode;
        let chip = ChipSpec::chip_s();
        let plans = optimized_plans(&zoo::resnet18(), &chip, 9);
        let analytic = Estimator::new(&chip).estimate_group(&plans, 4);
        let closed = Estimator::new(&chip)
            .with_timing_mode(TimingMode::ClosedLoop)
            .estimate_group(&plans, 4);
        // Memory terms differ (LPDDR3-derived latency/bandwidth), so
        // the latency estimate moves...
        assert_ne!(analytic.batch_latency_ns, closed.batch_latency_ns);
        assert!(closed.batch_latency_ns > 0.0);
        // ...but energy is charged off the same request stream: only
        // the makespan-dependent static term may differ.
        for (a, c) in analytic.partitions.iter().zip(&closed.partitions) {
            assert_eq!(a.energy, c.energy);
        }
        // Round-tripping back to analytic restores the original terms.
        let back = Estimator::new(&chip)
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_timing_mode(TimingMode::Analytic)
            .estimate_group(&plans, 4);
        assert_eq!(analytic.batch_latency_ns, back.batch_latency_ns);
        // An explicit channel override widens the memory terms, like
        // the simulator's with_dram_channels.
        let narrow = Estimator::new(&chip)
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_dram_channels(1)
            .estimate_group(&plans, 4);
        let wide = Estimator::new(&chip)
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_dram_channels(4)
            .estimate_group(&plans, 4);
        assert!(wide.batch_latency_ns < narrow.batch_latency_ns);
    }
}
