//! Multi-chip system planning: splitting a compiled model across the
//! chips of a [`Topology`].
//!
//! The compiler's single-chip output (partition plans + per-core
//! programs) generalizes to a system in two ways:
//!
//! * **Layer pipeline** — the partition sequence is cut into
//!   contiguous, latency-balanced segments, one per chip. Where a
//!   partition boundary crosses a chip boundary the downstream
//!   partition's entry activations are shipped over the interconnect
//!   (the inter-chip SEND/RECV of the hand-off), and successive
//!   batches pipeline: chip 0 computes batch `r+1` while chip 1 still
//!   digests batch `r`.
//! * **Batch shard** — every chip runs the whole partition sequence on
//!   its own share of the batch; no inter-chip traffic, replication of
//!   the weight-replacement cost instead.
//!
//! The produced [`SystemSchedule`] maps one-to-one onto
//! `pim_sim::SystemSimulator` chip loads (programs + per-round
//! hand-off), keeping the compiler free of a simulator dependency.

use crate::compiler::CompiledModel;
use crate::error::CompileError;
use crate::scheduler::{schedule_group, SchedulerOptions};
use pim_arch::{ChipSpec, Topology};
use pim_isa::ChipProgram;
use pim_model::Network;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How a model is spread across the chips of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SystemStrategy {
    /// Contiguous partition segments, one per chip, with inter-chip
    /// activation hand-offs at segment boundaries; batches pipeline
    /// across chips.
    #[default]
    LayerPipeline,
    /// Every chip runs the full model on its share of the batch.
    BatchShard,
}

impl SystemStrategy {
    /// Both strategies.
    pub const ALL: [SystemStrategy; 2] =
        [SystemStrategy::LayerPipeline, SystemStrategy::BatchShard];
}

impl fmt::Display for SystemStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemStrategy::LayerPipeline => write!(f, "layer-pipeline"),
            SystemStrategy::BatchShard => write!(f, "batch-shard"),
        }
    }
}

impl FromStr for SystemStrategy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "layer-pipeline" | "layer_pipeline" | "pipeline" => Ok(SystemStrategy::LayerPipeline),
            "batch-shard" | "batch_shard" | "shard" => Ok(SystemStrategy::BatchShard),
            other => Err(format!("unknown system strategy {other:?}")),
        }
    }
}

/// A multi-chip deployment target: the topology plus the strategy used
/// to spread work over it. The estimator and the GA fitness accept one
/// so partition search can optimize for the machine the system
/// simulator will time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemTarget {
    /// The interconnect graph.
    pub topology: Topology,
    /// The work-spreading strategy.
    pub strategy: SystemStrategy,
}

impl SystemTarget {
    /// A single-chip target (the paper's machine).
    pub fn single_chip() -> Self {
        Self { topology: Topology::single(), strategy: SystemStrategy::LayerPipeline }
    }

    /// A target for `topology` under `strategy`.
    pub fn new(topology: Topology, strategy: SystemStrategy) -> Self {
        Self { topology, strategy }
    }
}

/// One chip's share of a planned system workload.
#[derive(Debug, Clone)]
pub struct SystemChipPlan {
    /// Chip index within the topology.
    pub chip: usize,
    /// Partition programs this chip executes each round, in order
    /// (empty when the schedule leaves the chip idle).
    pub programs: Vec<ChipProgram>,
    /// Half-open range of global partition indices assigned here
    /// (layer pipeline) or the full range (batch shard).
    pub partition_range: (usize, usize),
    /// Samples this chip contributes per round.
    pub samples: usize,
    /// Per-round hand-off to the downstream chip, if any:
    /// `(destination chip, bytes per round)`.
    pub handoff: Option<(usize, usize)>,
}

/// A compiled model mapped onto a multi-chip system.
#[derive(Debug, Clone)]
pub struct SystemSchedule {
    /// The topology the schedule targets.
    pub topology: Topology,
    /// The strategy that produced it.
    pub strategy: SystemStrategy,
    /// Per-chip workloads, indexed by chip.
    pub chips: Vec<SystemChipPlan>,
    /// Inference samples the whole system completes per round.
    pub samples_per_round: usize,
}

impl SystemSchedule {
    /// Chips that actually execute work.
    pub fn active_chips(&self) -> usize {
        self.chips.iter().filter(|c| !c.programs.is_empty()).count()
    }

    /// Total bytes crossing the interconnect per round.
    pub fn handoff_bytes_per_round(&self) -> usize {
        self.chips.iter().filter_map(|c| c.handoff.map(|(_, bytes)| bytes)).sum()
    }
}

impl fmt::Display for SystemSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} over {}: {} active chips, {} B/round inter-chip",
            self.strategy,
            self.topology,
            self.active_chips(),
            self.handoff_bytes_per_round()
        )?;
        for chip in &self.chips {
            writeln!(
                f,
                "  chip {}: partitions [{}, {}), {} samples/round{}",
                chip.chip,
                chip.partition_range.0,
                chip.partition_range.1,
                chip.samples,
                chip.handoff
                    .map(|(dst, bytes)| format!(", hands {bytes} B to chip {dst}"))
                    .unwrap_or_default()
            )?;
        }
        Ok(())
    }
}

/// Maps a compiled model onto `target`'s chips.
///
/// For [`SystemStrategy::LayerPipeline`], partitions are cut into
/// contiguous segments balanced by the compiler's estimated partition
/// latencies, and each boundary ships the downstream partition's entry
/// activations (`batch ×` per-sample bytes) to the next chip after
/// every round. For [`SystemStrategy::BatchShard`], the partition
/// plans are rescheduled at each chip's shard of `batch` (front chips
/// take the remainder).
///
/// # Errors
///
/// Returns [`CompileError::InvalidOptions`] when the topology fails
/// validation or `batch` is zero.
pub fn plan_system(
    network: &Network,
    compiled: &CompiledModel,
    chip: &ChipSpec,
    target: &SystemTarget,
    batch: usize,
    chunks_per_sample: usize,
) -> Result<SystemSchedule, CompileError> {
    target
        .topology
        .validate()
        .map_err(|e| CompileError::InvalidOptions(format!("topology: {}", e.detail())))?;
    if batch == 0 {
        return Err(CompileError::InvalidOptions("batch size must be >= 1".into()));
    }
    let chips = target.topology.chips();
    let plans = compiled.partitions();
    let schedule = match target.strategy {
        SystemStrategy::LayerPipeline => {
            let programs = compiled.programs();
            let used = chips.min(plans.len()).max(1);
            let cuts = balanced_cuts(
                &compiled.estimate().partitions.iter().map(|p| p.latency_ns).collect::<Vec<_>>(),
                used,
            );
            let mut chip_plans = Vec::with_capacity(chips);
            for c in 0..chips {
                let (from, to) = if c < used { (cuts[c], cuts[c + 1]) } else { (0, 0) };
                let handoff = (c + 1 < used).then(|| {
                    // The downstream chip's first partition loads these
                    // activations each round; they cross the
                    // interconnect first.
                    (c + 1, plans[cuts[c + 1]].entry_bytes_per_sample() * batch)
                });
                chip_plans.push(SystemChipPlan {
                    chip: c,
                    programs: programs[from..to].to_vec(),
                    partition_range: (from, to),
                    samples: if from < to { batch } else { 0 },
                    handoff,
                });
            }
            SystemSchedule {
                topology: target.topology.clone(),
                strategy: target.strategy,
                chips: chip_plans,
                samples_per_round: batch,
            }
        }
        SystemStrategy::BatchShard => {
            let base = batch / chips;
            let remainder = batch % chips;
            let mut chip_plans = Vec::with_capacity(chips);
            for c in 0..chips {
                let shard = base + usize::from(c < remainder);
                let programs = if shard > 0 {
                    schedule_group(
                        network,
                        plans,
                        chip,
                        &SchedulerOptions { batch: shard, chunks_per_sample },
                    )
                } else {
                    Vec::new()
                };
                chip_plans.push(SystemChipPlan {
                    chip: c,
                    partition_range: if shard > 0 { (0, plans.len()) } else { (0, 0) },
                    programs,
                    samples: shard,
                    handoff: None,
                });
            }
            SystemSchedule {
                topology: target.topology.clone(),
                strategy: target.strategy,
                chips: chip_plans,
                samples_per_round: batch,
            }
        }
    };
    Ok(schedule)
}

/// Cuts `weights` into `segments` contiguous runs with balanced sums:
/// segment `k` ends at the first prefix reaching `k+1` shares of the
/// total, while always leaving at least one element for each remaining
/// segment. Returns `segments + 1` cut positions starting at 0 and
/// ending at `weights.len()`.
fn balanced_cuts(weights: &[f64], segments: usize) -> Vec<usize> {
    let n = weights.len();
    let segments = segments.clamp(1, n.max(1));
    let total: f64 = weights.iter().sum();
    let mut cuts = Vec::with_capacity(segments + 1);
    cuts.push(0);
    let mut prefix = 0.0;
    let mut at = 0usize;
    for k in 1..segments {
        let share = total * k as f64 / segments as f64;
        while at < n - (segments - k) && prefix + weights[at] <= share {
            prefix += weights[at];
            at += 1;
        }
        // Guarantee progress: every segment owns at least one element.
        if at < cuts[k - 1] + 1 {
            prefix += weights[at];
            at = cuts[k - 1] + 1;
        }
        cuts.push(at);
    }
    cuts.push(n);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompileOptions, Compiler, Strategy};
    use crate::ga::GaParams;
    use pim_model::zoo;

    fn compiled(batch: usize) -> (Network, ChipSpec, CompiledModel) {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let model = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new()
                    .with_strategy(Strategy::Layerwise)
                    .with_batch_size(batch)
                    .with_ga(GaParams::fast())
                    .with_seed(5),
            )
            .expect("compiles");
        (net, chip, model)
    }

    #[test]
    fn pipeline_covers_every_partition_exactly_once() {
        let (net, chip, model) = compiled(4);
        let target = SystemTarget::new(Topology::ring(4), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 4, 2).unwrap();
        assert_eq!(schedule.chips.len(), 4);
        let mut covered = 0;
        for (c, plan) in schedule.chips.iter().enumerate() {
            assert_eq!(plan.chip, c);
            let (from, to) = plan.partition_range;
            assert_eq!(from, covered);
            covered = to;
            assert_eq!(plan.programs.len(), to - from);
        }
        assert_eq!(covered, model.partitions().len());
        // Interior chips ship downstream; the tail does not.
        let last_active = schedule.chips.iter().rposition(|c| !c.programs.is_empty()).unwrap();
        for plan in &schedule.chips[..last_active] {
            let (dst, bytes) = plan.handoff.expect("interior chips hand off");
            assert_eq!(dst, plan.chip + 1);
            assert!(bytes > 0);
        }
        assert!(schedule.chips[last_active].handoff.is_none());
        assert!(schedule.to_string().contains("layer-pipeline"));
    }

    #[test]
    fn pipeline_balances_segment_latency() {
        let (net, chip, model) = compiled(4);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 4, 2).unwrap();
        let latencies: Vec<f64> = schedule
            .chips
            .iter()
            .map(|p| {
                model.estimate().partitions[p.partition_range.0..p.partition_range.1]
                    .iter()
                    .map(|e| e.latency_ns)
                    .sum()
            })
            .collect();
        let total: f64 = latencies.iter().sum();
        for l in &latencies {
            assert!(
                *l < 0.75 * total,
                "a 2-chip split should not leave one chip with {l} of {total}"
            );
        }
    }

    #[test]
    fn batch_shard_splits_samples() {
        let (net, chip, model) = compiled(5);
        let target = SystemTarget::new(Topology::fully_connected(2), SystemStrategy::BatchShard);
        let schedule = plan_system(&net, &model, &chip, &target, 5, 2).unwrap();
        let shards: Vec<usize> = schedule.chips.iter().map(|c| c.samples).collect();
        assert_eq!(shards, vec![3, 2], "front chip takes the remainder");
        assert_eq!(schedule.samples_per_round, 5);
        assert_eq!(schedule.handoff_bytes_per_round(), 0);
        for plan in &schedule.chips {
            assert_eq!(plan.programs.len(), model.partitions().len());
        }
    }

    #[test]
    fn more_chips_than_partitions_leaves_tail_idle() {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let model = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new().with_strategy(Strategy::Greedy).with_ga(GaParams::fast()),
            )
            .unwrap();
        let parts = model.partitions().len();
        let target = SystemTarget::new(Topology::fully_connected(4), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 2, 2).unwrap();
        assert_eq!(schedule.active_chips(), parts.min(4));
        for plan in schedule.chips.iter().filter(|c| c.programs.is_empty()) {
            assert!(plan.handoff.is_none());
            assert_eq!(plan.samples, 0);
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (net, chip, model) = compiled(2);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::LayerPipeline);
        assert!(matches!(
            plan_system(&net, &model, &chip, &target, 0, 2),
            Err(CompileError::InvalidOptions(_))
        ));
        let broken = SystemTarget::new(
            Topology { name: "broken".into(), chips: 0, links: Vec::new() },
            SystemStrategy::BatchShard,
        );
        assert!(matches!(
            plan_system(&net, &model, &chip, &broken, 2, 2),
            Err(CompileError::InvalidOptions(_))
        ));
    }

    #[test]
    fn balanced_cuts_properties() {
        let cuts = balanced_cuts(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(cuts, vec![0, 2, 4]);
        let skewed = balanced_cuts(&[10.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(skewed, vec![0, 1, 4], "the heavy head gets its own segment");
        // More segments than elements clamps.
        assert_eq!(balanced_cuts(&[1.0, 2.0], 5), vec![0, 1, 2]);
        // Every segment is non-empty.
        let many = balanced_cuts(&[5.0, 0.1, 0.1, 0.1, 0.1], 4);
        for pair in many.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in SystemStrategy::ALL {
            assert_eq!(s.to_string().parse::<SystemStrategy>().unwrap(), s);
        }
        assert!("tensor-parallel".parse::<SystemStrategy>().is_err());
    }
}
