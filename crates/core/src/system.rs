//! Multi-chip system planning: splitting a compiled model across the
//! chips of a [`Topology`].
//!
//! The compiler's single-chip output (partition plans + per-core
//! programs) generalizes to a system in two ways:
//!
//! * **Layer pipeline** — the partition sequence is cut into
//!   contiguous, latency-balanced segments, one per chip. Where a
//!   partition boundary crosses a chip boundary the downstream
//!   partition's entry activations are shipped over the interconnect
//!   (the inter-chip SEND/RECV of the hand-off), and successive
//!   batches pipeline: chip 0 computes batch `r+1` while chip 1 still
//!   digests batch `r`.
//! * **Batch shard** — every chip runs the whole partition sequence on
//!   its own share of the batch; no inter-chip traffic, replication of
//!   the weight-replacement cost instead.
//! * **Fan-out** — a hybrid: the partition sequence is cut into
//!   segments and each segment may be *replicated* across several
//!   chips, each replica taking a contiguous share of the batch. A
//!   single-replica segment feeding a doubly-replicated one is a
//!   1-producer/2-consumer fan-out; the converse is a fan-in. Chips
//!   therefore feed and consume multiple peers, not just a linear
//!   chain.
//!
//! The produced [`SystemSchedule`] maps one-to-one onto
//! `pim_sim::SystemSimulator` chip loads (programs + per-round
//! hand-offs), keeping the compiler free of a simulator dependency.

use crate::compiler::CompiledModel;
use crate::error::CompileError;
use crate::estimate::{GroupEstimate, PartitionEstimate};
use crate::scheduler::{schedule_group, SchedulerOptions};
use pim_arch::{ChipSpec, ScheduleMode, Topology};
use pim_isa::ChipProgram;
use pim_model::Network;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How a model is spread across the chips of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SystemStrategy {
    /// Contiguous partition segments, one per chip, with inter-chip
    /// activation hand-offs at segment boundaries; batches pipeline
    /// across chips.
    #[default]
    LayerPipeline,
    /// Every chip runs the full model on its share of the batch.
    BatchShard,
    /// Latency-balanced segments with per-segment replication: heavy
    /// segments run on several chips (each on a batch shard), so a
    /// chip may feed or consume multiple peers.
    FanOut,
}

impl SystemStrategy {
    /// Every strategy.
    pub const ALL: [SystemStrategy; 3] =
        [SystemStrategy::LayerPipeline, SystemStrategy::BatchShard, SystemStrategy::FanOut];
}

impl fmt::Display for SystemStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemStrategy::LayerPipeline => write!(f, "layer-pipeline"),
            SystemStrategy::BatchShard => write!(f, "batch-shard"),
            SystemStrategy::FanOut => write!(f, "fan-out"),
        }
    }
}

impl FromStr for SystemStrategy {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "layer-pipeline" | "layer_pipeline" | "pipeline" => Ok(SystemStrategy::LayerPipeline),
            "batch-shard" | "batch_shard" | "shard" => Ok(SystemStrategy::BatchShard),
            "fan-out" | "fan_out" | "fanout" => Ok(SystemStrategy::FanOut),
            other => Err(format!("unknown system strategy {other:?}")),
        }
    }
}

/// A multi-chip deployment target: the topology plus the strategy used
/// to spread work over it. The estimator and the GA fitness accept one
/// so partition search can optimize for the machine the system
/// simulator will time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemTarget {
    /// The interconnect graph.
    pub topology: Topology,
    /// The work-spreading strategy.
    pub strategy: SystemStrategy,
}

impl SystemTarget {
    /// A single-chip target (the paper's machine).
    pub fn single_chip() -> Self {
        Self { topology: Topology::single(), strategy: SystemStrategy::LayerPipeline }
    }

    /// A target for `topology` under `strategy`.
    pub fn new(topology: Topology, strategy: SystemStrategy) -> Self {
        Self { topology, strategy }
    }
}

/// One chip's share of a planned system workload.
#[derive(Debug, Clone)]
pub struct SystemChipPlan {
    /// Chip index within the topology.
    pub chip: usize,
    /// Partition programs this chip executes each round, in order
    /// (empty when the schedule leaves the chip idle).
    pub programs: Vec<ChipProgram>,
    /// Half-open range of global partition indices assigned here
    /// (layer pipeline / fan-out segment) or the full range (batch
    /// shard).
    pub partition_range: (usize, usize),
    /// Samples this chip contributes per round.
    pub samples: usize,
    /// Per-round hand-offs to downstream chips, one
    /// `(destination chip, bytes per round)` entry per consumer
    /// (several under fan-out).
    pub handoffs: Vec<(usize, usize)>,
}

/// A compiled model mapped onto a multi-chip system.
#[derive(Debug, Clone)]
pub struct SystemSchedule {
    /// The topology the schedule targets.
    pub topology: Topology,
    /// The strategy that produced it.
    pub strategy: SystemStrategy,
    /// Per-chip workloads, indexed by chip.
    pub chips: Vec<SystemChipPlan>,
    /// Inference samples the whole system completes per round.
    pub samples_per_round: usize,
}

impl SystemSchedule {
    /// Chips that actually execute work.
    pub fn active_chips(&self) -> usize {
        self.chips.iter().filter(|c| !c.programs.is_empty()).count()
    }

    /// Total bytes crossing the interconnect per round.
    pub fn handoff_bytes_per_round(&self) -> usize {
        self.chips.iter().flat_map(|c| c.handoffs.iter().map(|&(_, bytes)| bytes)).sum()
    }

    /// The largest number of downstream consumers any chip feeds (2+
    /// means the schedule actually fans out).
    pub fn max_fan_out(&self) -> usize {
        self.chips.iter().map(|c| c.handoffs.len()).max().unwrap_or(0)
    }
}

impl fmt::Display for SystemSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} over {}: {} active chips, {} B/round inter-chip",
            self.strategy,
            self.topology,
            self.active_chips(),
            self.handoff_bytes_per_round()
        )?;
        for chip in &self.chips {
            let hands: String = chip
                .handoffs
                .iter()
                .map(|(dst, bytes)| format!(", hands {bytes} B to chip {dst}"))
                .collect();
            writeln!(
                f,
                "  chip {}: partitions [{}, {}), {} samples/round{hands}",
                chip.chip, chip.partition_range.0, chip.partition_range.1, chip.samples,
            )?;
        }
        Ok(())
    }
}

/// Maps a compiled model onto `target`'s chips.
///
/// For [`SystemStrategy::LayerPipeline`], partitions are cut into
/// contiguous segments balanced by the compiler's estimated partition
/// latencies, and each boundary ships the downstream partition's entry
/// activations (`batch ×` per-sample bytes) to the next chip after
/// every round. For [`SystemStrategy::BatchShard`], the partition
/// plans are rescheduled at each chip's shard of `batch` (front chips
/// take the remainder). For [`SystemStrategy::FanOut`], segments are
/// additionally replicated — spare chips go to whichever segment has
/// the worst per-replica latency — and every replica ships each
/// downstream replica the entry activations of the samples flowing
/// between their contiguous batch shards (fan-out/fan-in at the
/// segment boundaries).
///
/// # Errors
///
/// Returns [`CompileError::InvalidOptions`] when the topology fails
/// validation or `batch` is zero.
pub fn plan_system(
    network: &Network,
    compiled: &CompiledModel,
    chip: &ChipSpec,
    target: &SystemTarget,
    batch: usize,
    chunks_per_sample: usize,
) -> Result<SystemSchedule, CompileError> {
    target
        .topology
        .validate()
        .map_err(|e| CompileError::InvalidOptions(format!("topology: {}", e.detail())))?;
    if batch == 0 {
        return Err(CompileError::InvalidOptions("batch size must be >= 1".into()));
    }
    let chips = target.topology.chips();
    let plans = compiled.partitions();
    let schedule = match target.strategy {
        SystemStrategy::LayerPipeline => {
            let programs = compiled.programs();
            let used = chips.min(plans.len()).max(1);
            let cuts = balanced_cuts(
                &compiled.estimate().partitions.iter().map(|p| p.latency_ns).collect::<Vec<_>>(),
                used,
            );
            let mut chip_plans = Vec::with_capacity(chips);
            for c in 0..chips {
                let (from, to) = if c < used { (cuts[c], cuts[c + 1]) } else { (0, 0) };
                let handoffs = if c + 1 < used {
                    // The downstream chip's first partition loads these
                    // activations each round; they cross the
                    // interconnect first.
                    vec![(c + 1, plans[cuts[c + 1]].entry_bytes_per_sample() * batch)]
                } else {
                    Vec::new()
                };
                chip_plans.push(SystemChipPlan {
                    chip: c,
                    programs: programs[from..to].to_vec(),
                    partition_range: (from, to),
                    samples: if from < to { batch } else { 0 },
                    handoffs,
                });
            }
            SystemSchedule {
                topology: target.topology.clone(),
                strategy: target.strategy,
                chips: chip_plans,
                samples_per_round: batch,
            }
        }
        SystemStrategy::BatchShard => {
            let base = batch / chips;
            let remainder = batch % chips;
            let mut chip_plans = Vec::with_capacity(chips);
            for c in 0..chips {
                let shard = base + usize::from(c < remainder);
                let programs = if shard > 0 {
                    schedule_group(
                        network,
                        plans,
                        chip,
                        &SchedulerOptions {
                            batch: shard,
                            chunks_per_sample,
                            schedule: ScheduleMode::Barrier,
                        },
                    )
                } else {
                    Vec::new()
                };
                chip_plans.push(SystemChipPlan {
                    chip: c,
                    partition_range: if shard > 0 { (0, plans.len()) } else { (0, 0) },
                    programs,
                    samples: shard,
                    handoffs: Vec::new(),
                });
            }
            SystemSchedule {
                topology: target.topology.clone(),
                strategy: target.strategy,
                chips: chip_plans,
                samples_per_round: batch,
            }
        }
        SystemStrategy::FanOut => {
            let (cuts, replicas) =
                fan_out_allocation(&compiled.estimate().partitions, batch, chips);
            let segments = replicas.len();
            // Contiguous batch shards per replica, segment by segment.
            let mut chip_plans: Vec<SystemChipPlan> = Vec::with_capacity(chips);
            let mut seg_ranges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(segments);
            for (seg, &r) in replicas.iter().enumerate() {
                let (from, to) = (cuts[seg], cuts[seg + 1]);
                let base = batch / r;
                let remainder = batch % r;
                let mut ranges = Vec::with_capacity(r);
                let mut sample_at = 0usize;
                for rep in 0..r {
                    let shard = base + usize::from(rep < remainder);
                    ranges.push((sample_at, sample_at + shard));
                    sample_at += shard;
                    let programs = if shard > 0 {
                        schedule_group(
                            network,
                            &plans[from..to],
                            chip,
                            &SchedulerOptions {
                                batch: shard,
                                chunks_per_sample,
                                schedule: ScheduleMode::Barrier,
                            },
                        )
                    } else {
                        Vec::new()
                    };
                    chip_plans.push(SystemChipPlan {
                        chip: chip_plans.len(),
                        programs,
                        partition_range: if shard > 0 { (from, to) } else { (0, 0) },
                        samples: shard,
                        handoffs: Vec::new(),
                    });
                }
                seg_ranges.push(ranges);
            }
            // Hand-offs: each upstream replica ships every downstream
            // replica the entry activations of the samples their
            // contiguous shards share.
            let mut seg_base = 0usize;
            for seg in 0..segments.saturating_sub(1) {
                let entry_bytes = plans[cuts[seg + 1]].entry_bytes_per_sample();
                let down_base = seg_base + replicas[seg];
                for (u, &(ua, ub)) in seg_ranges[seg].iter().enumerate() {
                    for (d, &(da, db)) in seg_ranges[seg + 1].iter().enumerate() {
                        let flow = ub.min(db).saturating_sub(ua.max(da));
                        if flow > 0 {
                            chip_plans[seg_base + u]
                                .handoffs
                                .push((down_base + d, entry_bytes * flow));
                        }
                    }
                }
                seg_base = down_base;
            }
            SystemSchedule {
                topology: target.topology.clone(),
                strategy: target.strategy,
                chips: chip_plans,
                samples_per_round: batch,
            }
        }
    };
    Ok(schedule)
}

/// Splits the compiled partitions into segments and replica counts
/// for [`SystemStrategy::FanOut`].
///
/// Replicating a segment shards only its *per-sample* pipeline
/// interval — every replica still pays the segment's full weight
/// replacement and pipeline fill — so a replica of segment `[a, b)`
/// at `r` copies costs
/// `Σ_p (replace_p + fill_p + (⌈batch/r⌉ − 1) · interval_p)`.
/// For every feasible segment count the partitions are balance-cut by
/// full-batch latency, each spare chip goes to the segment whose
/// per-replica latency is currently worst, and the allocation with
/// the lowest bottleneck wins — ties to fewer segments. Returns
/// `(cut positions, per-segment replica counts)`;
/// `Σ replicas = chips`.
pub fn fan_out_allocation(
    partitions: &[PartitionEstimate],
    batch: usize,
    chips: usize,
) -> (Vec<usize>, Vec<usize>) {
    let chips = chips.max(1);
    let batch = batch.max(1);
    let max_segments = chips.min(partitions.len()).max(1);
    let replica_latency = |from: usize, to: usize, replicas: usize| -> f64 {
        let shard = batch.div_ceil(replicas).max(1);
        partitions[from..to]
            .iter()
            .map(|p| p.replace_ns + p.fill_ns + (shard as f64 - 1.0) * p.interval_ns)
            .sum()
    };
    let full_latencies: Vec<f64> = partitions.iter().map(|p| p.latency_ns).collect();
    let mut best: Option<(f64, Vec<usize>, Vec<usize>)> = None;
    for segments in 1..=max_segments {
        let cuts = balanced_cuts(&full_latencies, segments);
        let mut replicas = vec![1usize; segments];
        for _ in 0..chips.saturating_sub(segments) {
            // Deterministic: ties resolve to the earliest segment.
            let mut worst = 0usize;
            let mut worst_lat = f64::NEG_INFINITY;
            for s in 0..segments {
                let lat = replica_latency(cuts[s], cuts[s + 1], replicas[s]);
                if lat > worst_lat {
                    worst = s;
                    worst_lat = lat;
                }
            }
            replicas[worst] += 1;
        }
        let bottleneck = (0..segments)
            .map(|s| replica_latency(cuts[s], cuts[s + 1], replicas[s]))
            .fold(0.0f64, f64::max);
        if best.as_ref().is_none_or(|(b, _, _)| bottleneck < *b - 1e-9) {
            best = Some((bottleneck, cuts, replicas));
        }
    }
    let (_, cuts, replicas) = best.expect("at least one allocation exists");
    (cuts, replicas)
}

/// Predicts the simulated makespan of `schedule` over `rounds`
/// pipeline rounds under `mode`, from the compiled model's
/// **single-chip** [`GroupEstimate`] (per-partition replace / fill /
/// interval terms, re-costed at each chip's batch shard).
///
/// The model: each chip's round latency is the sum of its stage
/// latencies at its shard; the pipeline fill is the longest chain
/// through the hand-off DAG (chip latency plus link serialization +
/// propagation per hop); after the fill, rounds drain at the system's
/// steady-state interval — the slowest chip's round in barrier mode,
/// and under interleaving the busiest crossbar group's occupancy
/// (stages sharing a core serialize, so a chip whose stages all
/// conflict paces like barrier mode while disjoint stages overlap
/// down to the slowest single stage).
///
/// It is an analytic bound, not the simulator: contention on shared
/// crossbar groups, the memory channel, and links is only loosely
/// modelled, so expect agreement within a small factor, not ns-exact.
///
/// # Panics
///
/// Panics on a schedule whose hand-offs form a cycle or cross an
/// unroutable chip pair — the simulator rejects both up front, so an
/// estimate for such a schedule would be meaningless.
pub fn estimate_system_makespan(
    schedule: &SystemSchedule,
    estimate: &GroupEstimate,
    rounds: usize,
    mode: ScheduleMode,
) -> f64 {
    let rounds = rounds.max(1);
    // Per-chip round latency and worst single stage at the chip's
    // shard size.
    let stage_ns = |p: usize, samples: usize| {
        let part = &estimate.partitions[p];
        part.replace_ns + part.fill_ns + (samples.max(1) as f64 - 1.0) * part.interval_ns
    };
    let chip_round_ns: Vec<f64> = schedule
        .chips
        .iter()
        .map(|c| (c.partition_range.0..c.partition_range.1).map(|p| stage_ns(p, c.samples)).sum())
        .collect();
    // Interleaved steady-state interval per chip: stages sharing a
    // crossbar group (core) serialize, so the chip is paced by its
    // busiest core's total occupancy — at least the slowest single
    // stage (disjoint stages), at most the full round (every stage
    // conflicting, e.g. compiled models that all pack onto core 0).
    let chip_interleaved_ns: Vec<f64> = schedule
        .chips
        .iter()
        .map(|c| {
            let (from, _) = c.partition_range;
            let mut core_occupancy_ns: Vec<f64> = Vec::new();
            let mut max_stage = 0.0f64;
            for (i, program) in c.programs.iter().enumerate() {
                let lat = stage_ns(from + i, c.samples);
                max_stage = max_stage.max(lat);
                for core in 0..program.cores() {
                    if !program.core(pim_isa::CoreId(core)).instructions().is_empty() {
                        if core_occupancy_ns.len() <= core {
                            core_occupancy_ns.resize(core + 1, 0.0);
                        }
                        core_occupancy_ns[core] += lat;
                    }
                }
            }
            core_occupancy_ns.iter().copied().fold(max_stage, f64::max)
        })
        .collect();
    // Link time per hand-off over the topology's actual route. An
    // unroutable hand-off must fail loudly, not price as free.
    let link_ns = |src: usize, dst: usize, bytes: usize| -> f64 {
        let topology = &schedule.topology;
        let hops = topology
            .route(src, dst)
            .unwrap_or_else(|| panic!("hand-off {src} -> {dst} has no route on {topology}"));
        hops.iter()
            .map(|&h| {
                let spec = topology.links()[h].spec;
                spec.serialization_ns(bytes) + spec.latency_ns
            })
            .sum()
    };
    // Pipeline fill: longest chain through the hand-off DAG. The
    // function accepts caller-built schedules the simulator never
    // validated, so guard the recursion with an on-stack marker
    // instead of trusting the graph to be acyclic.
    fn chain(
        c: usize,
        schedule: &SystemSchedule,
        chip_round_ns: &[f64],
        link_ns: &dyn Fn(usize, usize, usize) -> f64,
        memo: &mut [Option<f64>],
        on_stack: &mut [bool],
    ) -> f64 {
        if let Some(hit) = memo[c] {
            return hit;
        }
        assert!(!on_stack[c], "hand-off cycle through chip {c}");
        on_stack[c] = true;
        let tail = schedule.chips[c]
            .handoffs
            .iter()
            .map(|&(dst, bytes)| {
                link_ns(c, dst, bytes)
                    + chain(dst, schedule, chip_round_ns, link_ns, memo, on_stack)
            })
            .fold(0.0f64, f64::max);
        on_stack[c] = false;
        let total = chip_round_ns[c] + tail;
        memo[c] = Some(total);
        total
    }
    let mut memo = vec![None; schedule.chips.len()];
    let mut on_stack = vec![false; schedule.chips.len()];
    let fill = (0..schedule.chips.len())
        .map(|c| chain(c, schedule, &chip_round_ns, &link_ns, &mut memo, &mut on_stack))
        .fold(0.0f64, f64::max);
    let interval = match mode {
        ScheduleMode::Barrier => chip_round_ns.iter().copied().fold(0.0, f64::max),
        ScheduleMode::Interleaved => chip_interleaved_ns.iter().copied().fold(0.0, f64::max),
    };
    fill + (rounds as f64 - 1.0) * interval
}

/// Cuts `weights` into `segments` contiguous runs with balanced sums:
/// segment `k` ends at the first prefix reaching `k+1` shares of the
/// total, while always leaving at least one element for each remaining
/// segment. Returns `segments + 1` cut positions starting at 0 and
/// ending at `weights.len()`.
fn balanced_cuts(weights: &[f64], segments: usize) -> Vec<usize> {
    let n = weights.len();
    let segments = segments.clamp(1, n.max(1));
    let total: f64 = weights.iter().sum();
    let mut cuts = Vec::with_capacity(segments + 1);
    cuts.push(0);
    let mut prefix = 0.0;
    let mut at = 0usize;
    for k in 1..segments {
        let share = total * k as f64 / segments as f64;
        while at < n - (segments - k) && prefix + weights[at] <= share {
            prefix += weights[at];
            at += 1;
        }
        // Guarantee progress: every segment owns at least one element.
        if at < cuts[k - 1] + 1 {
            prefix += weights[at];
            at = cuts[k - 1] + 1;
        }
        cuts.push(at);
    }
    cuts.push(n);
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CompileOptions, Compiler, Strategy};
    use crate::ga::GaParams;
    use pim_model::zoo;

    fn compiled(batch: usize) -> (Network, ChipSpec, CompiledModel) {
        let chip = ChipSpec::chip_s();
        let net = zoo::resnet18();
        let model = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new()
                    .with_strategy(Strategy::Layerwise)
                    .with_batch_size(batch)
                    .with_ga(GaParams::fast())
                    .with_seed(5),
            )
            .expect("compiles");
        (net, chip, model)
    }

    #[test]
    fn pipeline_covers_every_partition_exactly_once() {
        let (net, chip, model) = compiled(4);
        let target = SystemTarget::new(Topology::ring(4), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 4, 2).unwrap();
        assert_eq!(schedule.chips.len(), 4);
        let mut covered = 0;
        for (c, plan) in schedule.chips.iter().enumerate() {
            assert_eq!(plan.chip, c);
            let (from, to) = plan.partition_range;
            assert_eq!(from, covered);
            covered = to;
            assert_eq!(plan.programs.len(), to - from);
        }
        assert_eq!(covered, model.partitions().len());
        // Interior chips ship downstream; the tail does not.
        let last_active = schedule.chips.iter().rposition(|c| !c.programs.is_empty()).unwrap();
        for plan in &schedule.chips[..last_active] {
            let &[(dst, bytes)] = plan.handoffs.as_slice() else {
                panic!("interior chips hand off to exactly one peer")
            };
            assert_eq!(dst, plan.chip + 1);
            assert!(bytes > 0);
        }
        assert!(schedule.chips[last_active].handoffs.is_empty());
        assert!(schedule.to_string().contains("layer-pipeline"));
    }

    #[test]
    fn pipeline_balances_segment_latency() {
        let (net, chip, model) = compiled(4);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 4, 2).unwrap();
        let latencies: Vec<f64> = schedule
            .chips
            .iter()
            .map(|p| {
                model.estimate().partitions[p.partition_range.0..p.partition_range.1]
                    .iter()
                    .map(|e| e.latency_ns)
                    .sum()
            })
            .collect();
        let total: f64 = latencies.iter().sum();
        for l in &latencies {
            assert!(
                *l < 0.75 * total,
                "a 2-chip split should not leave one chip with {l} of {total}"
            );
        }
    }

    #[test]
    fn batch_shard_splits_samples() {
        let (net, chip, model) = compiled(5);
        let target = SystemTarget::new(Topology::fully_connected(2), SystemStrategy::BatchShard);
        let schedule = plan_system(&net, &model, &chip, &target, 5, 2).unwrap();
        let shards: Vec<usize> = schedule.chips.iter().map(|c| c.samples).collect();
        assert_eq!(shards, vec![3, 2], "front chip takes the remainder");
        assert_eq!(schedule.samples_per_round, 5);
        assert_eq!(schedule.handoff_bytes_per_round(), 0);
        for plan in &schedule.chips {
            assert_eq!(plan.programs.len(), model.partitions().len());
        }
    }

    #[test]
    fn more_chips_than_partitions_leaves_tail_idle() {
        let chip = ChipSpec::chip_s();
        let net = zoo::tiny_cnn();
        let model = Compiler::new(chip.clone())
            .compile(
                &net,
                &CompileOptions::new().with_strategy(Strategy::Greedy).with_ga(GaParams::fast()),
            )
            .unwrap();
        let parts = model.partitions().len();
        let target = SystemTarget::new(Topology::fully_connected(4), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 2, 2).unwrap();
        assert_eq!(schedule.active_chips(), parts.min(4));
        for plan in schedule.chips.iter().filter(|c| c.programs.is_empty()) {
            assert!(plan.handoffs.is_empty());
            assert_eq!(plan.samples, 0);
        }
    }

    /// A synthetic partition estimate: `replace + fill` fixed cost,
    /// `interval` per extra sample.
    fn part(replace_ns: f64, interval_ns: f64) -> PartitionEstimate {
        PartitionEstimate {
            replace_ns,
            pipeline_ns: 0.0,
            fill_ns: 0.0,
            interval_ns,
            latency_ns: replace_ns + interval_ns,
            energy: pim_arch::PowerBreakdown::new(),
        }
    }

    #[test]
    fn fan_out_allocation_replicates_the_interval_bound_segment() {
        // Two equal-replace partitions at batch 8 over 3 chips:
        // replication shards only the interval term, so cutting into
        // two segments (halving each replica's fixed cost) beats
        // replicating the whole chain.
        let parts = [part(10.0, 1.0), part(10.0, 1.0)];
        let (cuts, replicas) = fan_out_allocation(&parts, 8, 3);
        assert_eq!(cuts, vec![0, 1, 2]);
        assert_eq!(replicas.iter().sum::<usize>(), 3, "every chip is used");
        assert_eq!(replicas.len(), 2, "two segments, one replicated");
        assert!(replicas.contains(&2), "the spare chip replicates a segment");
        // Replacement-dominated partitions never replicate: sharding
        // the interval buys nothing against the fixed cost.
        let heavy = [part(1000.0, 0.1), part(1000.0, 0.1)];
        let (_, replicas) = fan_out_allocation(&heavy, 8, 4);
        assert_eq!(replicas.len(), 2, "chain, not shard");
        // One chip degenerates to a single segment.
        let (cuts, replicas) = fan_out_allocation(&parts, 8, 1);
        assert_eq!((cuts, replicas), (vec![0, 2], vec![1]));
    }

    #[test]
    fn fan_out_plan_fans_one_producer_into_two_consumers() {
        let (net, chip, model) = compiled(4);
        let target = SystemTarget::new(Topology::fully_connected(3), SystemStrategy::FanOut);
        let schedule = plan_system(&net, &model, &chip, &target, 4, 2).unwrap();
        assert_eq!(schedule.chips.len(), 3);
        let (_, replicas) = fan_out_allocation(&model.estimate().partitions, 4, 3);
        // Every replica of segment 0 together covers the batch.
        let seg0: usize = schedule.chips.iter().take(replicas[0]).map(|c| c.samples).sum();
        assert_eq!(seg0, 4, "segment 0's replicas cover the whole batch");
        // Hand-off destinations are unique per producer, and flows at
        // each boundary cover the batch's entry bytes exactly once.
        for plan in &schedule.chips {
            let dsts: Vec<usize> = plan.handoffs.iter().map(|&(d, _)| d).collect();
            let unique: std::collections::HashSet<usize> = dsts.iter().copied().collect();
            assert_eq!(dsts.len(), unique.len());
        }
        assert!(schedule.to_string().contains("fan-out"));
    }

    #[test]
    fn estimate_system_makespan_tracks_rounds_and_mode() {
        let (net, chip, model) = compiled(4);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::LayerPipeline);
        let schedule = plan_system(&net, &model, &chip, &target, 4, 2).unwrap();
        let est = model.estimate();
        let one = estimate_system_makespan(&schedule, est, 1, ScheduleMode::Barrier);
        let four = estimate_system_makespan(&schedule, est, 4, ScheduleMode::Barrier);
        assert!(one > 0.0);
        assert!(four > one, "more rounds cost more");
        // The steady-state interval is the slowest chip's round.
        let interleaved = estimate_system_makespan(&schedule, est, 4, ScheduleMode::Interleaved);
        assert!(interleaved <= four + 1e-9, "interleaving never predicts slower");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (net, chip, model) = compiled(2);
        let target = SystemTarget::new(Topology::ring(2), SystemStrategy::LayerPipeline);
        assert!(matches!(
            plan_system(&net, &model, &chip, &target, 0, 2),
            Err(CompileError::InvalidOptions(_))
        ));
        let broken = SystemTarget::new(
            Topology { name: "broken".into(), chips: 0, links: Vec::new(), overrides: Vec::new() },
            SystemStrategy::BatchShard,
        );
        assert!(matches!(
            plan_system(&net, &model, &chip, &broken, 2, 2),
            Err(CompileError::InvalidOptions(_))
        ));
    }

    #[test]
    fn balanced_cuts_properties() {
        let cuts = balanced_cuts(&[1.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(cuts, vec![0, 2, 4]);
        let skewed = balanced_cuts(&[10.0, 1.0, 1.0, 1.0], 2);
        assert_eq!(skewed, vec![0, 1, 4], "the heavy head gets its own segment");
        // More segments than elements clamps.
        assert_eq!(balanced_cuts(&[1.0, 2.0], 5), vec![0, 1, 2]);
        // Every segment is non-empty.
        let many = balanced_cuts(&[5.0, 0.1, 0.1, 0.1, 0.1], 4);
        for pair in many.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn strategy_parsing_round_trips() {
        for s in SystemStrategy::ALL {
            assert_eq!(s.to_string().parse::<SystemStrategy>().unwrap(), s);
        }
        assert!("tensor-parallel".parse::<SystemStrategy>().is_err());
    }
}
