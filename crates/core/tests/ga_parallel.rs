//! Byte-identity of the GA across evaluation strategies.
//!
//! The scaling tentpole (sharded memo + batch fan-out + speculative
//! generation pipelining) is only allowed to change *wall clock*,
//! never results: for any seed, serial evaluation, parallel batch
//! evaluation, and speculative pipelining must produce the same best
//! chromosome, the same fitness bits, and the same serialized trace.
//! These tests pin that contract for several seeds under both the
//! makespan objective and the `ServingSlo` tail objective.

use compass::fitness::{FitnessContext, FitnessKind, ServingSlo};
use compass::ga::{self, GaParams};
use compass::{decompose, UnitSequence, ValidityMap};
use pim_arch::ChipSpec;
use pim_model::{zoo, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fixture {
    net: Network,
    seq: UnitSequence,
    validity: ValidityMap,
    chip: ChipSpec,
}

fn fixture() -> Fixture {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    Fixture { net, seq, validity, chip }
}

const SEEDS: [u64; 3] = [11, 12, 13];

fn objectives() -> [Option<ServingSlo>; 2] {
    [None, Some(ServingSlo::new(2_000.0, 8))]
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct RunOutput {
    best_cuts: Vec<usize>,
    best_pgf_bits: u64,
    trace_json: String,
    memoized_groups: usize,
}

#[derive(Clone, Copy)]
enum Eval {
    Serial,
    Parallel,
    Speculative,
}

fn run_one(f: &Fixture, seed: u64, slo: Option<ServingSlo>, eval: Eval) -> RunOutput {
    let ctx = FitnessContext::new(&f.net, &f.seq, &f.validity, &f.chip, 8, FitnessKind::Latency)
        .with_serving_slo(slo);
    let ctx = match eval {
        Eval::Serial => ctx.with_parallel_eval(false),
        Eval::Parallel => ctx,
        Eval::Speculative => ctx.with_speculation(true),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (best, trace) = ga::run(&ctx, &GaParams::fast(), &mut rng);
    RunOutput {
        best_cuts: best.group.cuts().to_vec(),
        best_pgf_bits: best.pgf.to_bits(),
        trace_json: serde_json::to_string(&trace).expect("trace serializes"),
        memoized_groups: ctx.cache_len(),
    }
}

fn assert_byte_identical(reference: &RunOutput, candidate: &RunOutput, what: &str) {
    assert_eq!(reference.best_cuts, candidate.best_cuts, "{what}: best chromosome diverged");
    assert_eq!(
        reference.best_pgf_bits, candidate.best_pgf_bits,
        "{what}: best fitness bits diverged"
    );
    assert_eq!(reference.trace_json, candidate.trace_json, "{what}: fitness trace diverged");
}

#[test]
fn serial_evaluation_is_reproducible() {
    let f = fixture();
    for seed in SEEDS {
        for slo in objectives() {
            let a = run_one(&f, seed, slo, Eval::Serial);
            let b = run_one(&f, seed, slo, Eval::Serial);
            assert_byte_identical(&a, &b, "serial rerun");
            assert_eq!(a, b, "same seed, same serial run");
        }
    }
}

#[cfg(feature = "parallel")]
#[test]
fn parallel_batches_match_serial_per_seed_and_objective() {
    let f = fixture();
    for seed in SEEDS {
        for slo in objectives() {
            let serial = run_one(&f, seed, slo, Eval::Serial);
            let parallel = run_one(&f, seed, slo, Eval::Parallel);
            assert_byte_identical(&serial, &parallel, "parallel vs serial");
            // Same deduped miss set → same memo contents.
            assert_eq!(serial.memoized_groups, parallel.memoized_groups);
        }
    }
}

#[cfg(feature = "parallel")]
#[test]
fn speculative_pipelining_matches_serial_per_seed_and_objective() {
    let f = fixture();
    for seed in SEEDS {
        for slo in objectives() {
            let serial = run_one(&f, seed, slo, Eval::Serial);
            let speculative = run_one(&f, seed, slo, Eval::Speculative);
            assert_byte_identical(&serial, &speculative, "speculative vs serial");
            // Speculation may only *add* harmless memo entries (its
            // guesses), never change or lose real ones.
            assert!(
                speculative.memoized_groups >= serial.memoized_groups,
                "speculation lost memo entries: {} < {}",
                speculative.memoized_groups,
                serial.memoized_groups
            );
        }
    }
}

#[cfg(not(feature = "parallel"))]
#[test]
fn speculation_is_inert_without_the_parallel_feature() {
    let f = fixture();
    let ctx = FitnessContext::new(&f.net, &f.seq, &f.validity, &f.chip, 8, FitnessKind::Latency)
        .with_speculation(true);
    assert!(!ctx.speculation_enabled(), "serial builds must not speculate");
    let plain = run_one(&f, 11, None, Eval::Serial);
    for requested in [Eval::Parallel, Eval::Speculative] {
        let out = run_one(&f, 11, None, requested);
        assert_eq!(plain, out, "every evaluation mode is a no-op in serial builds");
    }
}
