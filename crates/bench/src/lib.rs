//! # compass-bench — harness regenerating the COMPASS paper's tables and figures
//!
//! Each binary in `src/bin/` regenerates one table or figure:
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table1` | Table I (hardware configurations) |
//! | `table2` | Table II (model sizes & compiler support) |
//! | `fig5_validity` | Fig. 5 (partition validity maps) |
//! | `fig6_throughput` | Fig. 6 (throughput vs batch/chip/scheme) |
//! | `fig7_latency_breakdown` | Fig. 7 (per-partition latency) |
//! | `fig8_energy_edp` | Fig. 8 (energy & EDP vs batch) |
//! | `fig9_weight_energy` | Fig. 9 (replacement energy vs MVM) |
//! | `fig10_convergence` | Fig. 10 (GA fitness evolution) |
//! | `ablation_mutation` | extension: mutation-operator ablation |
//! | `technology_sweep` | extension: SRAM/ReRAM/MRAM write-cost sweep |
//! | `timing_mode_sweep` | extension: analytic vs closed-loop DRAM timing |
//!
//! All binaries run in *fast* GA mode by default so the full suite
//! completes in minutes; pass `--paper` for the paper's GA
//! hyper-parameters (population 100, 30 generations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use compass::{CompileOptions, CompiledModel, Compiler, GaParams, Strategy};
use pim_arch::{ChipClass, ChipSpec, TimingMode};
use pim_model::{zoo, Network};
use pim_sim::{ChipSimulator, SimReport};

/// The paper's three benchmark networks.
pub const NETWORKS: [&str; 3] = ["vgg16", "resnet18", "squeezenet"];

/// The paper's batch-size sweep.
pub const BATCHES: [usize; 5] = [1, 2, 4, 8, 16];

/// The three partitioning schemes compared throughout the evaluation.
pub const STRATEGIES: [Strategy; 3] = [Strategy::Greedy, Strategy::Layerwise, Strategy::Compass];

/// Looks up a zoo network by name.
///
/// # Panics
///
/// Panics on unknown names (bench binaries hard-code valid ones).
pub fn network(name: &str) -> Network {
    match name {
        "vgg16" => zoo::vgg16(),
        "resnet18" => zoo::resnet18(),
        "squeezenet" => zoo::squeezenet(),
        "tiny_cnn" => zoo::tiny_cnn(),
        "tiny_resnet" => zoo::tiny_resnet(),
        other => panic!("unknown network {other}"),
    }
}

/// Bench execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// Reduced GA (default): fast enough for CI and iteration.
    Fast,
    /// The paper's GA parameters (§IV-A3).
    Paper,
}

impl BenchMode {
    /// Parses `--paper` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            BenchMode::Paper
        } else {
            BenchMode::Fast
        }
    }

    /// GA parameters for this mode.
    pub fn ga_params(self) -> GaParams {
        match self {
            BenchMode::Fast => GaParams::fast(),
            BenchMode::Paper => GaParams::paper(),
        }
    }
}

/// One measured configuration ("Network-ChipConfig-BatchSize" in the
/// paper's labeling, plus the scheme).
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// e.g. `"resnet18-S-4"`.
    pub label: String,
    /// The scheme that produced it.
    pub strategy: Strategy,
    /// Compiler output.
    pub compiled: CompiledModel,
    /// Simulator output.
    pub simulated: SimReport,
}

impl ConfigResult {
    /// Simulated throughput, inferences/s.
    pub fn throughput(&self) -> f64 {
        self.simulated.throughput_ips()
    }
}

/// Compiles and simulates one configuration in the timing mode named
/// by the `PIM_TIMING_MODE` environment variable (default: analytic —
/// the paper's methodology). CI runs the suite in both modes.
pub fn run_config(
    net_name: &str,
    class: ChipClass,
    strategy: Strategy,
    batch: usize,
    mode: BenchMode,
) -> ConfigResult {
    run_config_in_mode(net_name, class, strategy, batch, mode, TimingMode::from_env())
}

/// Compiles and simulates one configuration in an explicit timing
/// mode.
pub fn run_config_in_mode(
    net_name: &str,
    class: ChipClass,
    strategy: Strategy,
    batch: usize,
    mode: BenchMode,
    timing: TimingMode,
) -> ConfigResult {
    let net = network(net_name);
    let chip = ChipSpec::preset(class);
    let compiled = Compiler::new(chip.clone())
        .compile(
            &net,
            &CompileOptions::new()
                .with_batch_size(batch)
                .with_strategy(strategy)
                .with_ga(mode.ga_params())
                .with_seed(2025)
                .with_timing_mode(timing),
        )
        .unwrap_or_else(|e| panic!("{net_name}-{class}-{batch} ({strategy}): {e}"));
    let simulated = ChipSimulator::new(chip)
        .with_timing_mode(timing)
        .run(compiled.programs(), batch)
        .unwrap_or_else(|e| panic!("{net_name}-{class}-{batch} ({strategy}) sim: {e}"));
    ConfigResult { label: format!("{net_name}-{class}-{batch}"), strategy, compiled, simulated }
}

/// Prints a markdown-style table: headers then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Geometric mean of a slice (used for the paper's "1.78X average"
/// style summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn network_lookup() {
        assert_eq!(network("resnet18").name(), "resnet18");
        assert_eq!(network("vgg16").name(), "vgg16");
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn unknown_network_panics() {
        let _ = network("alexnet");
    }

    #[test]
    fn run_config_end_to_end_smoke() {
        let result = run_config("squeezenet", ChipClass::S, Strategy::Greedy, 2, BenchMode::Fast);
        assert!(result.throughput() > 0.0);
        assert_eq!(result.label, "squeezenet-S-2");
    }
}
