//! # compass-bench — harness regenerating the COMPASS paper's tables and figures
//!
//! Each binary in `src/bin/` regenerates one table or figure:
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table1` | Table I (hardware configurations) |
//! | `table2` | Table II (model sizes & compiler support) |
//! | `fig5_validity` | Fig. 5 (partition validity maps) |
//! | `fig6_throughput` | Fig. 6 (throughput vs batch/chip/scheme) |
//! | `fig7_latency_breakdown` | Fig. 7 (per-partition latency) |
//! | `fig8_energy_edp` | Fig. 8 (energy & EDP vs batch) |
//! | `fig9_weight_energy` | Fig. 9 (replacement energy vs MVM) |
//! | `fig10_convergence` | Fig. 10 (GA fitness evolution) |
//! | `ablation_mutation` | extension: mutation-operator ablation |
//! | `technology_sweep` | extension: SRAM/ReRAM/MRAM write-cost sweep |
//! | `timing_mode_sweep` | extension: analytic vs closed-loop DRAM timing |
//! | `topology_sweep` | extension: multi-chip ring / fully-connected scaling |
//! | `serving_sweep` | extension: open-loop serving tails (p99, goodput) |
//!
//! All binaries run in *fast* GA mode by default so the full suite
//! completes in minutes; pass `--paper` for the paper's GA
//! hyper-parameters (population 100, 30 generations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use compass::{
    plan_system, CompileOptions, CompiledModel, Compiler, GaParams, Strategy, SystemSchedule,
    SystemStrategy, SystemTarget,
};
use pim_arch::{ChipClass, ChipSpec, ScheduleMode, TimingMode, Topology};
use pim_model::{zoo, Network};
use pim_sim::{ChipLoad, ChipSimulator, SimReport, SystemSimulator};
use serde::{Deserialize, Serialize};

/// The paper's three benchmark networks.
pub const NETWORKS: [&str; 3] = ["vgg16", "resnet18", "squeezenet"];

/// The paper's batch-size sweep.
pub const BATCHES: [usize; 5] = [1, 2, 4, 8, 16];

/// The three partitioning schemes compared throughout the evaluation.
pub const STRATEGIES: [Strategy; 3] = [Strategy::Greedy, Strategy::Layerwise, Strategy::Compass];

/// Looks up a zoo network by name.
///
/// # Panics
///
/// Panics on unknown names (bench binaries hard-code valid ones).
pub fn network(name: &str) -> Network {
    match name {
        "vgg16" => zoo::vgg16(),
        "resnet18" => zoo::resnet18(),
        "squeezenet" => zoo::squeezenet(),
        "tiny_cnn" => zoo::tiny_cnn(),
        "tiny_resnet" => zoo::tiny_resnet(),
        other => panic!("unknown network {other}"),
    }
}

/// Bench execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// Reduced GA (default): fast enough for CI and iteration.
    Fast,
    /// The paper's GA parameters (§IV-A3).
    Paper,
}

impl BenchMode {
    /// Parses `--paper` from the process arguments.
    pub fn from_args() -> Self {
        if has_flag("--paper") {
            BenchMode::Paper
        } else {
            BenchMode::Fast
        }
    }

    /// GA parameters for this mode.
    pub fn ga_params(self) -> GaParams {
        match self {
            BenchMode::Fast => GaParams::fast(),
            BenchMode::Paper => GaParams::paper(),
        }
    }
}

/// One measured configuration ("Network-ChipConfig-BatchSize" in the
/// paper's labeling, plus the scheme).
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// e.g. `"resnet18-S-4"`.
    pub label: String,
    /// The scheme that produced it.
    pub strategy: Strategy,
    /// Compiler output.
    pub compiled: CompiledModel,
    /// Simulator output.
    pub simulated: SimReport,
}

impl ConfigResult {
    /// Simulated throughput, inferences/s.
    pub fn throughput(&self) -> f64 {
        self.simulated.throughput_ips()
    }
}

/// Compiles and simulates one configuration in the timing and
/// schedule modes named by the `PIM_TIMING_MODE` / `PIM_SCHEDULE_MODE`
/// environment variables (defaults: analytic, barrier — the paper's
/// methodology). CI runs the suite in both timing modes; the schedule
/// axis retargets the same harness without code changes. Barrier mode
/// runs the paper's single batch cycle; interleaved mode runs four
/// back-to-back cycles, because interleaving only overlaps
/// *consecutive* cycles — one round would measure barrier mode under
/// a different name.
pub fn run_config(
    net_name: &str,
    class: ChipClass,
    strategy: Strategy,
    batch: usize,
    mode: BenchMode,
) -> ConfigResult {
    let schedule = ScheduleMode::from_env();
    run_config_scheduled(
        net_name,
        class,
        strategy,
        batch,
        bench_rounds(schedule),
        mode,
        TimingMode::from_env(),
        schedule,
    )
}

/// The batch cycles a bench measurement runs per configuration under
/// `schedule` — the single source of truth for the env-driven
/// harness and the sweeps' `--schedule` axis. Barrier mode keeps the
/// paper's single cycle; interleaving only overlaps *consecutive*
/// cycles, so its measurements need several to say anything.
pub fn bench_rounds(schedule: ScheduleMode) -> usize {
    match schedule {
        ScheduleMode::Barrier => 1,
        ScheduleMode::Interleaved => 4,
    }
}

/// Compiles and simulates one configuration in an explicit timing
/// mode (one round, barrier scheduling).
pub fn run_config_in_mode(
    net_name: &str,
    class: ChipClass,
    strategy: Strategy,
    batch: usize,
    mode: BenchMode,
    timing: TimingMode,
) -> ConfigResult {
    run_config_scheduled(net_name, class, strategy, batch, 1, mode, timing, ScheduleMode::Barrier)
}

/// Compiles and simulates one configuration over `rounds` successive
/// batch cycles in explicit timing and intra-chip schedule modes.
/// Interleaving overlaps consecutive rounds, so a meaningful
/// interleaved measurement needs `rounds > 1`.
#[allow(clippy::too_many_arguments)]
pub fn run_config_scheduled(
    net_name: &str,
    class: ChipClass,
    strategy: Strategy,
    batch: usize,
    rounds: usize,
    mode: BenchMode,
    timing: TimingMode,
    schedule: ScheduleMode,
) -> ConfigResult {
    let net = network(net_name);
    let chip = ChipSpec::preset(class);
    let compiled = Compiler::new(chip.clone())
        .compile(
            &net,
            &CompileOptions::new()
                .with_batch_size(batch)
                .with_strategy(strategy)
                .with_ga(mode.ga_params())
                .with_seed(2025)
                .with_timing_mode(timing)
                .with_schedule_mode(schedule),
        )
        .unwrap_or_else(|e| panic!("{net_name}-{class}-{batch} ({strategy}): {e}"));
    let simulated = ChipSimulator::new(chip)
        .with_timing_mode(timing)
        .with_schedule_mode(schedule)
        .run_batches(compiled.programs(), rounds, batch)
        .unwrap_or_else(|e| panic!("{net_name}-{class}-{batch} ({strategy}) sim: {e}"));
    ConfigResult { label: format!("{net_name}-{class}-{batch}"), strategy, compiled, simulated }
}

/// `true` when `flag` appears verbatim in the process arguments.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The value following `flag` in the process arguments, if any.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// One multi-chip configuration, compiled, planned onto a topology,
/// and simulated end to end.
#[derive(Debug, Clone)]
pub struct SystemConfigResult {
    /// e.g. `"resnet18-S-4x4-ring:2-layer-pipeline"`.
    pub label: String,
    /// The partitioning scheme that produced it.
    pub strategy: Strategy,
    /// The planned system schedule.
    pub schedule: SystemSchedule,
    /// Simulator output.
    pub report: SimReport,
}

impl SystemConfigResult {
    /// Simulated throughput, inferences/s.
    pub fn throughput(&self) -> f64 {
        self.report.throughput_ips()
    }

    /// The perf-trajectory record for this configuration under
    /// `timing`. The name encodes the partitioning scheme too, so a
    /// baseline regenerated under a different scheme (e.g. GA instead
    /// of the CI `--quick` greedy run) can never be compared against
    /// the wrong numbers silently.
    pub fn record(&self, timing: TimingMode) -> BenchRecord {
        BenchRecord {
            name: format!("topology:{}:{timing}:{}", self.label, self.strategy),
            makespan_ns: self.report.makespan_ns,
            throughput_ips: self.throughput(),
            host_parallelism: None,
        }
    }
}

/// Maps a planned [`SystemSchedule`] onto the system simulator's
/// per-chip loads (the one place the compiler's `(dst, bytes)`
/// hand-off tuples become `pim_sim::Handoff`s).
pub fn system_loads(schedule: &SystemSchedule) -> Vec<ChipLoad<'_>> {
    schedule
        .chips
        .iter()
        .map(|c| {
            c.handoffs.iter().fold(ChipLoad::new(&c.programs), |load, &(dst, bytes)| {
                load.with_handoff(dst, bytes)
            })
        })
        .collect()
}

/// Compiles one network, plans it onto `topology` under
/// `system_strategy`, and simulates `rounds` pipeline rounds in
/// explicit timing and intra-chip schedule modes. The label (and
/// therefore every [`BenchRecord`] name derived from it) carries the
/// schedule mode, so barrier and interleaved baselines can never mix
/// silently.
#[allow(clippy::too_many_arguments)]
pub fn run_system_config(
    net_name: &str,
    class: ChipClass,
    strategy: Strategy,
    system_strategy: SystemStrategy,
    topology: &Topology,
    batch: usize,
    rounds: usize,
    mode: BenchMode,
    timing: TimingMode,
    schedule_mode: ScheduleMode,
) -> SystemConfigResult {
    let net = network(net_name);
    let chip = ChipSpec::preset(class);
    let target = SystemTarget::new(topology.clone(), system_strategy);
    let mut options = CompileOptions::new()
        .with_batch_size(batch)
        .with_strategy(strategy)
        .with_ga(mode.ga_params())
        .with_seed(2025)
        .with_timing_mode(timing)
        .with_schedule_mode(schedule_mode);
    if !topology.is_single() {
        options = options.with_system_target(target.clone());
    }
    let label =
        format!("{net_name}-{class}-{batch}x{rounds}-{topology}-{system_strategy}-{schedule_mode}");
    let compiled = Compiler::new(chip.clone())
        .compile(&net, &options)
        .unwrap_or_else(|e| panic!("{label} ({strategy}): {e}"));
    let schedule = plan_system(&net, &compiled, &chip, &target, batch, options.chunks_per_sample)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let loads = system_loads(&schedule);
    let report = SystemSimulator::new(chip, topology.clone())
        .with_timing_mode(timing)
        .with_schedule_mode(schedule_mode)
        .run(&loads, rounds, schedule.samples_per_round)
        .unwrap_or_else(|e| panic!("{label} sim: {e}"));
    SystemConfigResult { label, strategy, schedule, report }
}

/// One point of the CI perf trajectory: simulated cycle count (and
/// throughput) of a named configuration. Deterministic for a fixed
/// seed, so regressions are exact, not noisy.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable configuration name.
    pub name: String,
    /// Simulated makespan, ns (the gated quantity).
    pub makespan_ns: f64,
    /// Simulated throughput, inferences/s.
    pub throughput_ips: f64,
    /// Hardware threads of the host that measured this record, for
    /// records whose value depends on them (shard-scaling wall
    /// clocks). `None` for machine-independent simulated quantities.
    pub host_parallelism: Option<usize>,
}

impl BenchRecord {
    /// Stamps the record with the measuring host's hardware-thread
    /// count, marking it comparable only against baselines measured
    /// at the same parallelism.
    #[must_use]
    pub fn measured_on_this_host(mut self) -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.host_parallelism = Some(threads);
        self
    }
}

// Hand-written so the `host_parallelism` field is emitted only when
// present: stamped shard records round-trip, every other record (and
// every committed baseline written before the field existed) keeps
// its exact serialized form.
impl Serialize for BenchRecord {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        self.name.serialize_json(out);
        out.push_str(",\"makespan_ns\":");
        self.makespan_ns.serialize_json(out);
        out.push_str(",\"throughput_ips\":");
        self.throughput_ips.serialize_json(out);
        if let Some(threads) = &self.host_parallelism {
            out.push_str(",\"host_parallelism\":");
            threads.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for BenchRecord {
    fn deserialize_json(value: &serde::json::Value) -> Result<Self, serde::json::JsonError> {
        let host_parallelism = match serde::json::field(value, "host_parallelism") {
            Ok(v) => Some(Deserialize::deserialize_json(v)?),
            Err(_) => None,
        };
        Ok(Self {
            name: Deserialize::deserialize_json(serde::json::field(value, "name")?)?,
            makespan_ns: Deserialize::deserialize_json(serde::json::field(value, "makespan_ns")?)?,
            throughput_ips: Deserialize::deserialize_json(serde::json::field(
                value,
                "throughput_ips",
            )?)?,
            host_parallelism,
        })
    }
}

/// Loads a perf-record file, returning an empty list when the file
/// does not exist.
///
/// # Panics
///
/// Panics when the file exists but cannot be read or parsed — a
/// corrupt trajectory artifact must fail the job loudly.
pub fn load_records(path: &str) -> Vec<BenchRecord> {
    match std::fs::read_to_string(path) {
        Ok(json) => serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("corrupt bench records in {path}: {e:?}")),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => panic!("cannot read bench records {path}: {e}"),
    }
}

/// Merges `fresh` records into the file at `path` (existing names are
/// replaced, the rest preserved), keeping the file sorted by name so
/// diffs stay readable.
///
/// # Panics
///
/// Panics when the file cannot be written, or when `fresh` itself
/// carries two records with the same name: that is a bench-binary
/// bug (two sweep points silently shadowing each other), and keeping
/// either one would make the trajectory lie. Re-running a sweep and
/// refreshing an *existing on-disk* record stays a quiet replace.
pub fn append_records(path: &str, fresh: Vec<BenchRecord>) {
    for (i, record) in fresh.iter().enumerate() {
        if let Some(dup) = fresh[..i].iter().find(|r| r.name == record.name) {
            panic!(
                "duplicate bench record {:?} in one run (makespans {} and {} ns): \
                 sweep points must have unique names",
                dup.name, dup.makespan_ns, record.makespan_ns
            );
        }
    }
    let mut records = load_records(path);
    for record in fresh {
        match records.iter_mut().find(|r| r.name == record.name) {
            Some(existing) => *existing = record,
            None => records.push(record),
        }
    }
    records.sort_by(|a, b| a.name.cmp(&b.name));
    let json = serde_json::to_string(&records).expect("records serialize");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Prefix of hot-path records gated on **throughput** (higher is
/// better) instead of makespan: same-process speedup ratios from
/// `engine_hotpath`, machine-independent by construction.
pub const HOTPATH_GATE_PREFIX: &str = "hotpath:gate:";

/// Prefix of hot-path records carried in the trajectory for
/// visibility only: absolute wall-clock events/sec and GA-generation
/// latency. They vary with the machine that ran them, so the gate
/// skips them entirely (including the missing-record check).
pub const HOTPATH_ABS_PREFIX: &str = "hotpath:abs:";

/// GA-scaling counterpart of [`HOTPATH_GATE_PREFIX`]: same-process
/// speedup ratios from `ga_scaling` (parallel-over-serial,
/// memo-over-recompute), gated on throughput.
pub const GA_GATE_PREFIX: &str = "ga:gate:";

/// GA-scaling counterpart of [`HOTPATH_ABS_PREFIX`]: absolute
/// wall-clock generation latencies and evaluation rates, carried for
/// visibility only.
pub const GA_ABS_PREFIX: &str = "ga:abs:";

/// Serving counterpart of [`HOTPATH_GATE_PREFIX`]: same-process
/// speedup ratios from `serving_sweep --shard` (sharded-over-single
/// serving walls), gated on throughput.
pub const SERVING_GATE_PREFIX: &str = "serving:gate:";

/// Serving counterpart of [`HOTPATH_ABS_PREFIX`]: absolute serving
/// wall-clock rates (requests/sec per engine, chunked-vs-legacy
/// arrival pacing), carried for visibility only.
pub const SERVING_ABS_PREFIX: &str = "serving:abs:";

/// `true` for trajectory records judged on **throughput** ratios
/// (higher is better) instead of makespan: the `hotpath:gate:*`,
/// `ga:gate:*` and `serving:gate:*` same-process speedup families.
pub fn gates_on_throughput(name: &str) -> bool {
    name.starts_with(HOTPATH_GATE_PREFIX)
        || name.starts_with(GA_GATE_PREFIX)
        || name.starts_with(SERVING_GATE_PREFIX)
}

/// `true` for machine-dependent absolute records (`hotpath:abs:*`,
/// `ga:abs:*`, `serving:abs:*`) that ride in the trajectory for
/// visibility and are never gated — not even for presence.
pub fn is_ungated_abs(name: &str) -> bool {
    name.starts_with(HOTPATH_ABS_PREFIX)
        || name.starts_with(GA_ABS_PREFIX)
        || name.starts_with(SERVING_ABS_PREFIX)
}

/// Compares a current perf trajectory against a committed baseline:
/// every baseline record must exist in `current` with a makespan no
/// more than `tolerance` (fractional) above the baseline — except
/// hot-path and GA-scaling records, which are either gated on
/// throughput ([`gates_on_throughput`]: a relative drop beyond
/// `tolerance` fails) or informational ([`is_ungated_abs`]: never
/// gated). Returns the list of violations (empty on success); new
/// configurations absent from the baseline are allowed.
pub fn check_against_baseline(
    current: &[BenchRecord],
    baseline: &[BenchRecord],
    tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    for base in baseline {
        if is_ungated_abs(&base.name) {
            continue;
        }
        match current.iter().find(|r| r.name == base.name) {
            None => violations.push(format!("{}: missing from current run", base.name)),
            Some(now) if gates_on_throughput(&base.name) => {
                if base.host_parallelism != now.host_parallelism {
                    let show = |p: Option<usize>| match p {
                        Some(threads) => threads.to_string(),
                        None => "unstamped".to_string(),
                    };
                    println!(
                        "note: {} gate skipped — baseline measured at host parallelism {}, \
                         this run at {}",
                        base.name,
                        show(base.host_parallelism),
                        show(now.host_parallelism)
                    );
                    continue;
                }
                let floor = base.throughput_ips * (1.0 - tolerance);
                if now.throughput_ips < floor {
                    violations.push(format!(
                        "{}: throughput {:.3} fell more than {:.0}% below baseline {:.3}",
                        base.name,
                        now.throughput_ips,
                        100.0 * tolerance,
                        base.throughput_ips
                    ));
                }
            }
            Some(now) => {
                let limit = base.makespan_ns * (1.0 + tolerance);
                if now.makespan_ns > limit {
                    violations.push(format!(
                        "{}: makespan {} ns exceeds baseline {} ns by more than {:.0}%",
                        base.name,
                        now.makespan_ns,
                        base.makespan_ns,
                        100.0 * tolerance
                    ));
                }
            }
        }
    }
    violations
}

/// Renders the baseline-vs-current comparison as a GitHub-flavored
/// markdown table — one row per baseline record plus one per brand-new
/// current record — for the job-summary page. Columns mirror the gate:
/// the judged quantity (makespan for ordinary records, throughput for
/// `hotpath:gate:*` / `ga:gate:*` ones), its ratio against the
/// baseline, and whether the record is actually gated (`*:abs:*` and
/// cross-host speedup records ride along ungated).
pub fn markdown_delta_table(
    current: &[BenchRecord],
    baseline: &[BenchRecord],
    tolerance: f64,
) -> String {
    let fmt = |v: f64| {
        if v >= 1000.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    };
    let mut out = String::from("### Perf trajectory vs baseline\n\n");
    out.push_str(&format!("Tolerance: {:.0}%\n\n", 100.0 * tolerance));
    out.push_str("| Record | Baseline | Current | Ratio | Status |\n");
    out.push_str("|---|---|---|---|---|\n");
    for base in baseline {
        let on_throughput = gates_on_throughput(&base.name);
        let metric = |r: &BenchRecord| if on_throughput { r.throughput_ips } else { r.makespan_ns };
        let now = current.iter().find(|r| r.name == base.name);
        let (current_cell, ratio_cell) = match now {
            Some(r) => (fmt(metric(r)), format!("{:.3}", metric(r) / metric(base))),
            None => ("—".to_string(), "—".to_string()),
        };
        let status = if is_ungated_abs(&base.name) {
            "ungated"
        } else if on_throughput && now.is_some_and(|r| r.host_parallelism != base.host_parallelism)
        {
            "ungated (host parallelism differs)"
        } else if now.is_none() {
            "gated — missing"
        } else {
            "gated"
        };
        out.push_str(&format!(
            "| `{}` | {} | {current_cell} | {ratio_cell} | {status} |\n",
            base.name,
            fmt(metric(base))
        ));
    }
    for fresh in current.iter().filter(|r| baseline.iter().all(|b| b.name != r.name)) {
        out.push_str(&format!(
            "| `{}` | — | {} | — | new (ungated) |\n",
            fresh.name,
            fmt(fresh.makespan_ns)
        ));
    }
    out
}

/// Prints a markdown-style table: headers then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Geometric mean of a slice (used for the paper's "1.78X average"
/// style summaries).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn network_lookup() {
        assert_eq!(network("resnet18").name(), "resnet18");
        assert_eq!(network("vgg16").name(), "vgg16");
    }

    #[test]
    #[should_panic(expected = "unknown network")]
    fn unknown_network_panics() {
        let _ = network("alexnet");
    }

    #[test]
    fn run_config_end_to_end_smoke() {
        let result = run_config("squeezenet", ChipClass::S, Strategy::Greedy, 2, BenchMode::Fast);
        assert!(result.throughput() > 0.0);
        assert_eq!(result.label, "squeezenet-S-2");
    }

    #[test]
    fn run_system_config_end_to_end_smoke() {
        let result = run_system_config(
            "squeezenet",
            ChipClass::S,
            Strategy::Greedy,
            SystemStrategy::LayerPipeline,
            &Topology::ring(2),
            2,
            2,
            BenchMode::Fast,
            TimingMode::Analytic,
            ScheduleMode::Barrier,
        );
        assert!(result.throughput() > 0.0);
        assert_eq!(result.label, "squeezenet-S-2x2-ring:2-layer-pipeline-barrier");
        assert_eq!(result.report.chips.as_ref().unwrap().len(), 2);
        let record = result.record(TimingMode::Analytic);
        assert_eq!(
            record.name,
            "topology:squeezenet-S-2x2-ring:2-layer-pipeline-barrier:analytic:greedy"
        );
        assert!(record.makespan_ns > 0.0);
    }

    #[test]
    fn schedule_axis_separates_record_names() {
        let run = |schedule: ScheduleMode| {
            run_system_config(
                "squeezenet",
                ChipClass::S,
                Strategy::Greedy,
                SystemStrategy::LayerPipeline,
                &Topology::single(),
                2,
                4,
                BenchMode::Fast,
                TimingMode::Analytic,
                schedule,
            )
        };
        let barrier = run(ScheduleMode::Barrier);
        let interleaved = run(ScheduleMode::Interleaved);
        let a = barrier.record(TimingMode::Analytic);
        let b = interleaved.record(TimingMode::Analytic);
        assert_ne!(a.name, b.name, "the schedule axis must be part of the record name");
        assert!(a.name.contains("barrier"));
        assert!(b.name.contains("interleaved"));
        assert!(
            b.makespan_ns <= a.makespan_ns + 1e-9,
            "interleaving never slows the simulated chip"
        );
    }

    #[test]
    fn baseline_gate_flags_regressions_and_gaps() {
        let record = |name: &str, ns: f64| BenchRecord {
            name: name.to_string(),
            makespan_ns: ns,
            throughput_ips: 1.0,
            host_parallelism: None,
        };
        let baseline = vec![record("a", 100.0), record("b", 100.0), record("gone", 100.0)];
        let current = vec![record("a", 119.0), record("b", 121.0), record("new", 50.0)];
        let violations = check_against_baseline(&current, &baseline, 0.2);
        assert_eq!(violations.len(), 2, "one regression, one missing: {violations:?}");
        assert!(violations.iter().any(|v| v.starts_with("b:")));
        assert!(violations.iter().any(|v| v.starts_with("gone:")));
        assert!(check_against_baseline(&current, &current, 0.0).is_empty());
    }

    #[test]
    fn hotpath_records_gate_on_throughput_and_abs_records_never_gate() {
        let record = |name: &str, ns: f64, ips: f64| BenchRecord {
            name: name.to_string(),
            makespan_ns: ns,
            throughput_ips: ips,
            host_parallelism: None,
        };
        let baseline = vec![
            record("hotpath:gate:queue-speedup", 0.25, 4.0),
            record("hotpath:abs:queue:calendar", 50.0, 2.0e7),
            record("topology:x", 100.0, 1.0),
        ];
        // Speedup within tolerance, abs record missing (machine may
        // not re-measure), makespan fine: no violations.
        let ok =
            vec![record("hotpath:gate:queue-speedup", 0.30, 3.4), record("topology:x", 105.0, 1.0)];
        assert!(check_against_baseline(&ok, &baseline, 0.2).is_empty());
        // Speedup collapsed by more than 20%: violation — and the
        // makespan field of a hotpath record is never what's judged.
        let bad =
            vec![record("hotpath:gate:queue-speedup", 0.25, 3.0), record("topology:x", 100.0, 1.0)];
        let violations = check_against_baseline(&bad, &baseline, 0.2);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("throughput"));
        // A missing *gated* hotpath record still fails.
        let gone = vec![record("topology:x", 100.0, 1.0)];
        assert!(check_against_baseline(&gone, &baseline, 0.2)
            .iter()
            .any(|v| v.contains("missing")));
    }

    #[test]
    fn ga_records_share_the_hotpath_gate_semantics() {
        assert!(gates_on_throughput("ga:gate:pop:1000:parallel-speedup"));
        assert!(gates_on_throughput("hotpath:gate:queue-speedup"));
        assert!(gates_on_throughput("serving:gate:shard:ring2-r250k"));
        assert!(!gates_on_throughput("ga:abs:pop:100:serial"));
        assert!(is_ungated_abs("ga:abs:pop:100:serial"));
        assert!(is_ungated_abs("hotpath:abs:queue:calendar"));
        assert!(is_ungated_abs("serving:abs:shard:ring2-r250k:single"));
        assert!(!is_ungated_abs("topology:x"));
        // Plain serving sweep records gate on makespan, as ever.
        assert!(!gates_on_throughput("serving:mlp-S-ring2-poisson-immediate:greedy"));
        assert!(!is_ungated_abs("serving:mlp-S-ring2-poisson-immediate:greedy"));

        let record = |name: &str, ns: f64, ips: f64, threads: Option<usize>| BenchRecord {
            name: name.to_string(),
            makespan_ns: ns,
            throughput_ips: ips,
            host_parallelism: threads,
        };
        let baseline = vec![
            record("ga:gate:pop:1000:parallel-speedup", 0.5, 2.0, Some(8)),
            record("ga:abs:pop:1000:serial", 9.0e6, 1.2e3, Some(8)),
        ];
        // Abs record absent and the gate measured on a different host:
        // nothing to judge.
        let other_host = vec![record("ga:gate:pop:1000:parallel-speedup", 1.0, 1.0, Some(1))];
        assert!(check_against_baseline(&other_host, &baseline, 0.2).is_empty());
        // Same host, speedup collapsed beyond tolerance: gated on
        // throughput, with makespan ignored.
        let collapsed = vec![record("ga:gate:pop:1000:parallel-speedup", 0.5, 1.0, Some(8))];
        let violations = check_against_baseline(&collapsed, &baseline, 0.2);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("throughput"));
        // A missing ga gate record still fails; the table mirrors it.
        let gone: Vec<BenchRecord> = Vec::new();
        assert!(check_against_baseline(&gone, &baseline, 0.2)
            .iter()
            .any(|v| v.contains("missing")));
        let table = markdown_delta_table(&other_host, &baseline, 0.2);
        assert!(table.contains("ungated (host parallelism differs)"));
        assert!(table.contains("| `ga:abs:pop:1000:serial` |"));
    }

    #[test]
    fn parallelism_stamped_gates_skip_across_hosts_and_round_trip() {
        let record = |name: &str, ips: f64, threads: Option<usize>| BenchRecord {
            name: name.to_string(),
            makespan_ns: 1.0 / ips,
            throughput_ips: ips,
            host_parallelism: threads,
        };
        // A shard-scaling gate measured on a 16-thread host must not
        // fail a run on a 1-thread host (or vice versa) — nor judge an
        // unstamped legacy baseline against a stamped run.
        let baseline = vec![record("hotpath:gate:shard:ring:4", 2.0, Some(16))];
        let collapsed = vec![record("hotpath:gate:shard:ring:4", 0.5, Some(1))];
        assert!(check_against_baseline(&collapsed, &baseline, 0.2).is_empty());
        let unstamped = vec![record("hotpath:gate:shard:ring:4", 0.5, None)];
        assert!(check_against_baseline(&unstamped, &baseline, 0.2).is_empty());
        // Same host parallelism: the gate applies as usual.
        let same_host = vec![record("hotpath:gate:shard:ring:4", 0.5, Some(16))];
        assert_eq!(check_against_baseline(&same_host, &baseline, 0.2).len(), 1);
        // The stamp survives a serialize/deserialize round trip, and
        // its absence costs nothing (legacy baselines still parse).
        for rec in [record("a", 2.0, Some(4)), record("b", 3.0, None)] {
            let json = serde_json::to_string(&vec![rec.clone()]).expect("serializes");
            assert_eq!(rec.host_parallelism.is_some(), json.contains("host_parallelism"));
            let back: Vec<BenchRecord> = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, vec![rec]);
        }
        // The self-stamp helper records this very host.
        let stamped = record("c", 1.0, None).measured_on_this_host();
        let here = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(stamped.host_parallelism, Some(here));
    }

    #[test]
    #[should_panic(expected = "duplicate bench record")]
    fn duplicate_names_in_one_run_panic_instead_of_shadowing() {
        let record = |ns: f64| BenchRecord {
            name: "serving:same-point".to_string(),
            makespan_ns: ns,
            throughput_ips: 1.0,
            host_parallelism: None,
        };
        let path = std::env::temp_dir().join("compass_bench_dup_records_test.json");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        append_records(&path, vec![record(1.0), record(2.0)]);
    }

    #[test]
    fn delta_table_mirrors_the_gate() {
        let record = |name: &str, ns: f64, ips: f64, threads: Option<usize>| BenchRecord {
            name: name.to_string(),
            makespan_ns: ns,
            throughput_ips: ips,
            host_parallelism: threads,
        };
        let baseline = vec![
            record("serving:a", 100.0, 1.0, None),
            record("hotpath:gate:speedup", 1.0, 4.0, Some(8)),
            record("hotpath:abs:wall", 50.0, 2e6, Some(8)),
            record("topology:gone", 10.0, 1.0, None),
        ];
        let current = vec![
            record("serving:a", 150.0, 1.0, None),
            record("hotpath:gate:speedup", 1.0, 2.0, Some(4)),
            record("serving:brand-new", 7.0, 1.0, None),
        ];
        let table = markdown_delta_table(&current, &baseline, 0.2);
        let row = |name: &str| {
            table
                .lines()
                .find(|l| l.contains(&format!("`{name}`")))
                .unwrap_or_else(|| panic!("no row for {name} in:\n{table}"))
                .to_string()
        };
        // Ordinary records compare makespans.
        assert!(row("serving:a").contains("| 100.000 | 150.000 | 1.500 | gated |"));
        // Hotpath gate records compare throughput — and a host
        // mismatch disarms the gate, exactly like the checker.
        assert!(row("hotpath:gate:speedup").contains("| 4.000 | 2.000 | 0.500 |"));
        assert!(row("hotpath:gate:speedup").contains("ungated (host"));
        assert!(row("hotpath:abs:wall").contains("| ungated |"));
        assert!(row("topology:gone").contains("— | gated — missing |"));
        assert!(row("serving:brand-new").contains("new (ungated)"));
        assert!(table.contains("Tolerance: 20%"));
    }

    #[test]
    fn record_files_merge_and_round_trip() {
        let record = |name: &str, ns: f64| BenchRecord {
            name: name.to_string(),
            makespan_ns: ns,
            throughput_ips: 2.0,
            host_parallelism: None,
        };
        let path = std::env::temp_dir().join("compass_bench_records_test.json");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        assert!(load_records(&path).is_empty());
        append_records(&path, vec![record("b", 1.0), record("a", 2.0)]);
        append_records(&path, vec![record("b", 3.0), record("c", 4.0)]);
        let merged = load_records(&path);
        let names: Vec<&str> = merged.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"], "sorted by name");
        assert_eq!(merged[1].makespan_ns, 3.0, "later append wins");
        let _ = std::fs::remove_file(&path);
    }
}
