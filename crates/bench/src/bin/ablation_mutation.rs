//! **Extension ablation**: contribution of each GA ingredient.
//!
//! Compares the full COMPASS GA against crippled variants on
//! ResNet18-M-16:
//!
//! * `random-search` — no mutation pressure at all (fixed-random
//!   only, equivalent to repeatedly sampling the validity map),
//! * `no-merge` / `no-split` / `no-move` — one structural operator
//!   removed (approximated by running the GA with the operator's
//!   random fallback),
//! * `full` — all four operators.
//!
//! This quantifies the design choices DESIGN.md calls out: the
//! partition-score-guided structural mutations are what move the
//! population beyond random sampling.

use compass::fitness::{FitnessContext, FitnessKind};
use compass::mutation::{self, MutationKind};
use compass::{decompose, GaParams, PartitionGroup, ValidityMap};
use compass_bench::{network, BenchMode};
use pim_arch::{ChipClass, ChipSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A GA variant restricted to a subset of mutation operators.
fn run_variant(name: &str, allowed: &[MutationKind], chip: &ChipSpec, params: &GaParams) -> f64 {
    let net = network("resnet18");
    let seq = decompose(&net, chip);
    let validity = ValidityMap::build(&seq, chip);
    let ctx = FitnessContext::new(&net, &seq, &validity, chip, 16, FitnessKind::Latency);
    let mut rng = StdRng::seed_from_u64(7);

    // Simplified Algorithm 1 with a restricted operator set.
    let mut population: Vec<_> = (0..params.population)
        .map(|_| ctx.evaluate(&PartitionGroup::random(&mut rng, &validity)))
        .collect();
    for _ in 0..params.generations {
        population.sort_by(|a, b| a.pgf.partial_cmp(&b.pgf).unwrap());
        population.truncate(params.n_sel);
        let mean_m = compass::fitness::mean_unit_fitness(&population, seq.len());
        let mut offspring = Vec::new();
        while offspring.len() < params.n_mut {
            let parent = &population[rng.gen_range(0..population.len())];
            let scores = compass::fitness::partition_scores(parent, &mean_m);
            let kind = *allowed.choose(&mut rng).expect("non-empty operator set");
            let child = mutation::apply(kind, &parent.group, &scores, &mut rng, &validity)
                .unwrap_or_else(|| PartitionGroup::random(&mut rng, &validity));
            offspring.push(ctx.evaluate(&child));
        }
        population.extend(offspring);
    }
    population.sort_by(|a, b| a.pgf.partial_cmp(&b.pgf).unwrap());
    let best = &population[0];
    println!(
        "{name:<16} best PGF {:>12.0}  partitions {:>3}",
        best.pgf,
        best.group.partition_count()
    );
    best.pgf
}

fn main() {
    let mode = BenchMode::from_args();
    let params = mode.ga_params();
    let chip = ChipSpec::preset(ChipClass::M);
    println!("GA operator ablation on ResNet18-M-16 (lower PGF is better):\n");
    let full = run_variant("full", &MutationKind::ALL, &chip, &params);
    let no_merge = run_variant(
        "no-merge",
        &[MutationKind::Split, MutationKind::Move, MutationKind::FixedRandom],
        &chip,
        &params,
    );
    let no_split = run_variant(
        "no-split",
        &[MutationKind::Merge, MutationKind::Move, MutationKind::FixedRandom],
        &chip,
        &params,
    );
    let no_move = run_variant(
        "no-move",
        &[MutationKind::Merge, MutationKind::Split, MutationKind::FixedRandom],
        &chip,
        &params,
    );
    let random = run_variant("random-search", &[MutationKind::FixedRandom], &chip, &params);

    println!("\nrelative to full GA (1.00 = full):");
    for (name, pgf) in [
        ("no-merge", no_merge),
        ("no-split", no_split),
        ("no-move", no_move),
        ("random-search", random),
    ] {
        println!("  {name:<16} {:.3}x", pgf / full);
    }
    // The verification signal used by integration tests: pure random
    // search must not beat the full GA.
    ga_sanity(full, random);
}

fn ga_sanity(full: f64, random: f64) {
    if random + 1e-9 < full {
        println!("\nWARNING: random search beat the full GA — investigate operator wiring");
    } else {
        println!("\nfull GA >= random search, as expected");
    }
}
