//! Regenerates **Fig. 6** (throughput comparison).
//!
//! Simulated inference throughput for the three networks × three chip
//! configurations × batch sizes 1–16, under greedy, layerwise, and
//! COMPASS partitioning. Ends with the paper's headline speedup
//! summary (geomean of COMPASS over each baseline, per network).

use compass::Strategy;
use compass_bench::{geomean, print_table, run_config, BenchMode, BATCHES, NETWORKS};
use pim_arch::ChipClass;

fn main() {
    let mode = BenchMode::from_args();
    let mut speedup_vs_greedy: Vec<(String, f64)> = Vec::new();
    let mut speedup_vs_layerwise: Vec<(String, f64)> = Vec::new();

    for name in NETWORKS {
        for class in ChipClass::ALL {
            let mut rows = Vec::new();
            for batch in BATCHES {
                let greedy = run_config(name, class, Strategy::Greedy, batch, mode);
                let layerwise = run_config(name, class, Strategy::Layerwise, batch, mode);
                let compass = run_config(name, class, Strategy::Compass, batch, mode);
                speedup_vs_greedy
                    .push((name.to_string(), compass.throughput() / greedy.throughput()));
                speedup_vs_layerwise
                    .push((name.to_string(), compass.throughput() / layerwise.throughput()));
                rows.push(vec![
                    batch.to_string(),
                    format!("{:.1}", greedy.throughput()),
                    format!("{:.1}", layerwise.throughput()),
                    format!("{:.1}", compass.throughput()),
                    format!("{:.2}x", compass.throughput() / greedy.throughput()),
                    format!("{:.2}x", compass.throughput() / layerwise.throughput()),
                ]);
            }
            print_table(
                &format!("Fig. 6: {name} on Chip-{class} (inference/s)"),
                &["Batch", "Greedy", "Layerwise", "COMPASS", "vs greedy", "vs layerwise"],
                &rows,
            );
        }
    }

    println!("\n## Headline summary (geomean speedups)\n");
    for name in NETWORKS {
        let g: Vec<f64> =
            speedup_vs_greedy.iter().filter(|(n, _)| n == name).map(|(_, s)| *s).collect();
        let l: Vec<f64> =
            speedup_vs_layerwise.iter().filter(|(n, _)| n == name).map(|(_, s)| *s).collect();
        println!("{name}: COMPASS vs greedy {:.2}x, vs layerwise {:.2}x", geomean(&g), geomean(&l));
    }
    let all_g: Vec<f64> = speedup_vs_greedy.iter().map(|(_, s)| *s).collect();
    let all_l: Vec<f64> = speedup_vs_layerwise.iter().map(|(_, s)| *s).collect();
    let overall = geomean(&[geomean(&all_g), geomean(&all_l)]);
    println!(
        "overall: vs greedy {:.2}x, vs layerwise {:.2}x, vs both {:.2}x",
        geomean(&all_g),
        geomean(&all_l),
        overall
    );
    println!(
        "\npaper reference: 1.78x average over baselines (greedy: 1.80/1.71/2.24x, layerwise: 1.56/1.31/1.98x for VGG16/ResNet18/SqueezeNet)"
    );
}
