//! Regenerates **Fig. 7** (per-partition latency breakdown for
//! "ResNet18-M-16").
//!
//! Shows each scheme's per-partition execution time. The paper's
//! observations to look for: greedy's first partition dominates (>90%
//! of total), layerwise spreads across many small partitions with
//! DRAM overhead, COMPASS balances fewer, fatter partitions.

use compass::Strategy;
use compass_bench::{run_config, BenchMode};
use pim_arch::ChipClass;

fn main() {
    let mode = BenchMode::from_args();
    for strategy in [Strategy::Greedy, Strategy::Layerwise, Strategy::Compass] {
        let result = run_config("resnet18", ChipClass::M, strategy, 16, mode);
        let total = result.simulated.makespan_ns;
        println!(
            "\n=== {} ({} partitions, total {:.3} ms, {:.1} inf/s) ===",
            strategy,
            result.simulated.partitions.len(),
            total * 1e-6,
            result.throughput()
        );
        for p in &result.simulated.partitions {
            let frac = p.latency_ns() / total;
            let bar_len = (frac * 60.0).round() as usize;
            println!(
                "P{:<3} {:>9.1} us ({:>5.1}%) |{}| replace {:>7.1} us",
                p.index,
                p.latency_ns() / 1000.0,
                frac * 100.0,
                "#".repeat(bar_len.max(1)),
                p.replace_ns / 1000.0,
            );
        }
    }
    println!(
        "\npaper reference: COMPASS 2.26x over greedy and 1.67x over layerwise on ResNet18-M-16; greedy's P0 takes >95% of total"
    );
}
