//! **Extension**: analytic vs closed-loop memory timing.
//!
//! The paper's methodology charges a flat per-access latency on the
//! chip's memory channel (`Analytic` mode — reproduces the paper's
//! tables). `ClosedLoop` mode instead blocks each core on the in-line
//! multi-channel LPDDR3 controllers, so bank conflicts, row hits and
//! channel interleaving shape the critical path. This sweep compares
//! both modes across the paper's workloads, and scales the closed-loop
//! channel count to show where the analytic model over- or
//! under-charges memory time.

use compass::Strategy;
use compass_bench::{
    append_records, arg_value, bench_rounds, geomean, has_flag, print_table, run_config_in_mode,
    run_config_scheduled, BenchMode, BenchRecord, BATCHES, NETWORKS,
};
use pim_arch::{ChipClass, ScheduleMode, TimingMode};

fn main() {
    let mode = BenchMode::from_args();
    // `--quick` is the CI bench-smoke configuration: greedy
    // partitioning, no GA.
    let strategy = if has_flag("--quick") { Strategy::Greedy } else { Strategy::Compass };
    // `--schedule <barrier|interleaved>` selects the intra-chip stage
    // dispatch; the mode is part of every record name so baselines
    // cannot mix modes silently.
    let schedule: ScheduleMode = arg_value("--schedule")
        .map(|raw| raw.parse().unwrap_or_else(|e| panic!("--schedule: {e}")))
        .unwrap_or_default();
    let batches = [BATCHES[0], BATCHES[2], BATCHES[4]]; // 1, 4, 16

    // One cycle for barrier, several for interleaved (which only
    // overlaps consecutive cycles) — shared with the env-driven
    // harness so both axes always measure the same round count.
    let rounds = bench_rounds(schedule);

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut records: Vec<BenchRecord> = Vec::new();
    for net in NETWORKS {
        for batch in batches {
            let analytic = run_config_scheduled(
                net,
                ChipClass::S,
                strategy,
                batch,
                rounds,
                mode,
                TimingMode::Analytic,
                schedule,
            );
            let closed = run_config_scheduled(
                net,
                ChipClass::S,
                strategy,
                batch,
                rounds,
                mode,
                TimingMode::ClosedLoop,
                schedule,
            );
            for (result, timing) in
                [(&analytic, TimingMode::Analytic), (&closed, TimingMode::ClosedLoop)]
            {
                // The scheme and schedule are part of the name: a
                // baseline regenerated without --quick (GA) or under a
                // different schedule can never silently shadow the CI
                // records.
                records.push(BenchRecord {
                    name: format!(
                        "timing:{}x{rounds}:{timing}:{strategy}:{schedule}",
                        result.label
                    ),
                    makespan_ns: result.simulated.makespan_ns,
                    throughput_ips: result.throughput(),
                    host_parallelism: None,
                });
            }
            let ratio = closed.simulated.makespan_ns / analytic.simulated.makespan_ns;
            ratios.push(ratio);
            let channels = closed.simulated.dram_channels.as_deref().unwrap_or(&[]);
            let util = channels.iter().map(|c| c.utilization()).fold(0.0, f64::max);
            let hits = {
                let (h, a) = channels
                    .iter()
                    .fold((0u64, 0u64), |(h, a), c| (h + c.row_hits, a + c.activates));
                if h + a == 0 {
                    0.0
                } else {
                    h as f64 / (h + a) as f64
                }
            };
            rows.push(vec![
                analytic.label.clone(),
                format!("{:.1}", analytic.throughput()),
                format!("{:.1}", closed.throughput()),
                format!("{ratio:.3}"),
                format!("{:.1}%", 100.0 * util),
                format!("{:.1}%", 100.0 * hits),
            ]);
        }
    }
    print_table(
        &format!("Timing-mode sweep: Chip-S under {strategy} ({schedule} schedule)"),
        &[
            "Config",
            "Analytic (inf/s)",
            "Closed-loop (inf/s)",
            "CL/A latency",
            "Peak ch. util",
            "Row-hit rate",
        ],
        &rows,
    );

    if let Some(path) = arg_value("--json") {
        let count = records.len();
        append_records(&path, records);
        println!("\nwrote {count} perf records to {path}");
    }

    // Channel scaling: the closed-loop model rewards extra channels,
    // the analytic model cannot see them.
    use pim_sim::ChipSimulator;
    let base = run_config_in_mode(
        "resnet18",
        ChipClass::S,
        Strategy::Greedy,
        4,
        mode,
        TimingMode::Analytic,
    );
    let mut scale_rows = Vec::new();
    for channels in [1usize, 2, 4] {
        let report = ChipSimulator::new(pim_arch::ChipSpec::preset(ChipClass::S))
            .with_timing_mode(TimingMode::ClosedLoop)
            .with_dram_channels(channels)
            .run(base.compiled.programs(), 4)
            .expect("simulates");
        scale_rows.push(vec![
            channels.to_string(),
            format!("{:.1}", report.throughput_ips()),
            format!("{:.3}", report.makespan_ns / base.simulated.makespan_ns),
        ]);
    }
    print_table(
        "Closed-loop channel scaling: ResNet18-S-4 (greedy)",
        &["Channels", "Throughput (inf/s)", "CL/A latency"],
        &scale_rows,
    );

    println!(
        "\ngeomean closed-loop/analytic latency ratio: {:.3} (Analytic reproduces the paper's tables; ClosedLoop exposes bank conflicts and channel scaling)",
        geomean(&ratios)
    );
}
