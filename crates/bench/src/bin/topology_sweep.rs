//! **Extension**: multi-chip topology sweep.
//!
//! Runs the paper's workloads on 1/2/4-chip ring and fully-connected
//! systems in both memory timing modes, comparing layer-pipeline
//! scaling (and, for ResNet18, batch sharding) against the paper's
//! single chip. Inter-chip transfers ride the shared discrete-event
//! engine with per-link contention, so ring vs fully-connected is a
//! real routing difference, not a latency constant.
//!
//! Flags:
//!
//! * `--quick` — greedy partitioning (no GA), the CI bench-smoke
//!   configuration;
//! * `--paper` — the paper's GA hyper-parameters;
//! * `--schedule <barrier|interleaved>` — intra-chip stage dispatch
//!   (default barrier, the paper's model); the mode is part of every
//!   record name so baselines cannot mix modes silently;
//! * `--json <path>` — merge this run's perf-trajectory records
//!   (`BENCH_ci.json` in CI) into `path`.

use compass::{Strategy, SystemStrategy};
use compass_bench::{
    append_records, arg_value, geomean, has_flag, print_table, run_system_config, BenchMode,
    BenchRecord, NETWORKS,
};
use pim_arch::{ChipClass, ScheduleMode, TimingMode, Topology};

fn main() {
    let mode = BenchMode::from_args();
    let strategy = if has_flag("--quick") { Strategy::Greedy } else { Strategy::Compass };
    let schedule: ScheduleMode = arg_value("--schedule")
        .map(|raw| raw.parse().unwrap_or_else(|e| panic!("--schedule: {e}")))
        .unwrap_or_default();
    let batch = 4;
    let rounds = 4;
    let topologies = [
        Topology::single(),
        Topology::ring(2),
        Topology::ring(4),
        Topology::fully_connected(2),
        Topology::fully_connected(4),
    ];

    let mut records: Vec<BenchRecord> = Vec::new();
    for timing in TimingMode::ALL {
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for net in NETWORKS {
            let mut single_ns = 0.0;
            for topology in &topologies {
                let result = run_system_config(
                    net,
                    ChipClass::S,
                    strategy,
                    SystemStrategy::LayerPipeline,
                    topology,
                    batch,
                    rounds,
                    mode,
                    timing,
                    schedule,
                );
                if topology.is_single() {
                    single_ns = result.report.makespan_ns;
                }
                let speedup = single_ns / result.report.makespan_ns;
                if !topology.is_single() {
                    speedups.push(speedup);
                }
                let link_util =
                    result
                        .report
                        .links
                        .as_deref()
                        .unwrap_or(&[])
                        .iter()
                        .map(|l| {
                            if l.busy_ns > 0.0 {
                                l.busy_ns / result.report.makespan_ns
                            } else {
                                0.0
                            }
                        })
                        .fold(0.0, f64::max);
                // fold, not sum: f64's empty-sum identity is -0.0.
                let wait_us: f64 = result
                    .report
                    .chips
                    .as_deref()
                    .unwrap_or(&[])
                    .iter()
                    .fold(0.0, |acc, c| acc + c.handoff_wait_ns)
                    / 1000.0;
                records.push(result.record(timing));
                rows.push(vec![
                    format!("{net}-{topology}"),
                    format!("{}", result.schedule.active_chips()),
                    format!("{:.1}", result.throughput()),
                    format!("{speedup:.2}x"),
                    format!("{:.1}%", 100.0 * link_util),
                    format!("{wait_us:.1}"),
                ]);
            }
        }
        print_table(
            &format!(
                "Topology sweep ({timing} timing, {schedule} schedule, layer pipeline, batch {batch} x {rounds} rounds)"
            ),
            &[
                "Config",
                "Active chips",
                "Throughput (inf/s)",
                "Speedup vs 1 chip",
                "Peak link util",
                "Handoff wait (us)",
            ],
            &rows,
        );
        println!("\ngeomean multi-chip speedup ({timing}): {:.3}", geomean(&speedups));
    }

    // Layer pipeline vs batch shard vs fan-out on one workload:
    // sharding avoids inter-chip traffic but replicates weight
    // replacement; fan-out splits the difference by replicating only
    // the bottleneck segment.
    let mut rows = Vec::new();
    for system_strategy in SystemStrategy::ALL {
        for chips in [2usize, 4] {
            let result = run_system_config(
                "resnet18",
                ChipClass::S,
                strategy,
                system_strategy,
                &Topology::fully_connected(chips),
                batch,
                rounds,
                mode,
                TimingMode::Analytic,
                schedule,
            );
            // The topology loop above already recorded the analytic
            // fc:N layer-pipeline points; re-pushing them here would
            // trip append_records' duplicate-name check.
            if system_strategy != SystemStrategy::LayerPipeline {
                records.push(result.record(TimingMode::Analytic));
            }
            rows.push(vec![
                format!("fc:{chips} {system_strategy}"),
                format!("{:.1}", result.throughput()),
                format!("{}", result.schedule.handoff_bytes_per_round()),
                format!("{}", result.schedule.max_fan_out()),
            ]);
        }
    }
    print_table(
        &format!("ResNet18-S: system strategies (analytic, {schedule})"),
        &["Config", "Throughput (inf/s)", "Inter-chip B/round", "Max fan-out"],
        &rows,
    );

    if let Some(path) = arg_value("--json") {
        let count = records.len();
        append_records(&path, records);
        println!("\nwrote {count} perf records to {path}");
    }
}
