//! **Extension**: cell-technology sensitivity (paper §V-B).
//!
//! The paper argues COMPASS extends to eNVM technologies by
//! parameterizing crossbar write characteristics. This sweep compiles
//! ResNet18 onto Chip-M variants with SRAM, ReRAM, and MRAM crossbars
//! and reports how the chosen partitioning and the replacement
//! overhead shift: costlier writes push the optimizer toward fewer
//! rewrites (fewer partitions / less replication).

use compass::{CompileOptions, Compiler, Strategy};
use compass_bench::{network, print_table, BenchMode};
use pim_arch::{ChipClass, ChipSpec, CrossbarSpec};
use pim_sim::ChipSimulator;

fn main() {
    let mode = BenchMode::from_args();
    let technologies: [(&str, CrossbarSpec); 3] = [
        ("SRAM", CrossbarSpec::sram_16nm()),
        ("MRAM", CrossbarSpec::mram()),
        ("ReRAM", CrossbarSpec::reram()),
    ];
    let mut rows = Vec::new();
    for (name, xbar) in technologies {
        let mut chip = ChipSpec::preset(ChipClass::M);
        chip.crossbar = xbar;
        let compiled = Compiler::new(chip.clone())
            .compile(
                &network("resnet18"),
                &CompileOptions::new()
                    .with_batch_size(16)
                    .with_strategy(Strategy::Compass)
                    .with_ga(mode.ga_params())
                    .with_seed(2025),
            )
            .expect("compiles");
        let report = ChipSimulator::new(chip).run(compiled.programs(), 16).expect("simulates");
        let total_rep: usize =
            compiled.partitions().iter().flat_map(|p| p.slices.iter().map(|s| s.replication)).sum();
        let slices: usize = compiled.partitions().iter().map(|p| p.slices.len()).sum();
        rows.push(vec![
            name.to_string(),
            compiled.partitions().len().to_string(),
            format!("{:.2}", total_rep as f64 / slices as f64),
            format!("{:.1}", report.throughput_ips()),
            format!("{:.1}", report.energy_per_inference_uj()),
            format!("{:.2}", report.energy.replacement_ratio()),
        ]);
    }
    print_table(
        "Technology sweep: ResNet18-M-16 under COMPASS",
        &[
            "Cell",
            "Partitions",
            "Avg replication",
            "Throughput (inf/s)",
            "Energy/inf (uJ)",
            "Replace/MVM energy",
        ],
        &rows,
    );
    println!(
        "\nexpectation (paper §V-B): write-costly technologies (MRAM, ReRAM) raise the replacement/MVM energy ratio and reward COMPASS's rewrite-minimizing partitioning"
    );
}
