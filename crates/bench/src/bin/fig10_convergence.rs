//! Regenerates **Fig. 10** (evolution of partition groups and their
//! partition counts over GA generations, "ResNet18-M-16").

use compass::{CompileOptions, Compiler, Strategy};
use compass_bench::{network, BenchMode};
use pim_arch::{ChipClass, ChipSpec};

fn main() {
    let mode = BenchMode::from_args();
    let chip = ChipSpec::preset(ChipClass::M);
    let compiled = Compiler::new(chip)
        .compile(
            &network("resnet18"),
            &CompileOptions::new()
                .with_batch_size(16)
                .with_strategy(Strategy::Compass)
                .with_ga(mode.ga_params())
                .with_seed(2025),
        )
        .expect("compiles");
    let trace = compiled.ga_trace().expect("COMPASS runs carry a GA trace");

    println!("generation | best PGF (norm.) | mean PGF (norm.) | partition-count histogram");
    let final_best = trace.generations.last().unwrap().best_pgf;
    for g in &trace.generations {
        let mean: f64 =
            g.individuals.iter().map(|i| i.pgf).sum::<f64>() / g.individuals.len() as f64;
        // Histogram over the paper's three bands: <=8, 9-10, 11+.
        let (mut low, mut mid, mut high) = (0, 0, 0);
        for i in &g.individuals {
            match i.partitions {
                0..=8 => low += 1,
                9..=10 => mid += 1,
                _ => high += 1,
            }
        }
        println!(
            "{:>10} | {:>16.4} | {:>16.4} | <=8: {:<3} 9-10: {:<3} 11+: {:<3}",
            g.generation,
            g.best_pgf / final_best,
            mean / final_best,
            low,
            mid,
            high
        );
    }
    println!(
        "\nmutation successes (merge/split/move/fixed-random): {:?}",
        trace.mutation_successes
    );
    println!("mutation failures: {:?}", trace.mutation_failures);
    println!(
        "final: {} partitions, PGF {:.0}, throughput {:.1} inf/s",
        compiled.partitions().len(),
        final_best,
        compiled.estimate().throughput_ips()
    );
    println!(
        "\npaper reference: population converges steadily; optimal partition count reached around generation 9-10, refined within the same count afterwards"
    );
}
