//! **Hot-path microbenchmarks**: raw simulator events/sec and full
//! GA-generation latency, feeding the CI perf trajectory.
//!
//! Three measurements, all deterministic workloads (only the wall
//! clock varies):
//!
//! * **queue churn** — a classic hold-model schedule (pop an instant,
//!   reschedule into the near/far future with same-instant bursts
//!   mixed in) driven straight against [`pim_engine::EventQueue`], on
//!   both the calendar queue and the retired binary-heap reference.
//!   Their in-process ratio is the *queue speedup* — the machine-
//!   independent number the CI gate pins (`--min-speedup`, and the
//!   `hotpath:gate:queue-speedup` trajectory record).
//! * **engine dispatch** — the same churn through full
//!   [`pim_engine::Engine`] component dispatch (batched same-instant
//!   delivery, no per-event component take/put), on both queues.
//! * **GA generation** — one population-100 COMPASS generation
//!   (selection, 80 structural mutations, batch evaluation through
//!   the segment memo) on ResNet18 / Chip-S, reported as
//!   ns-per-generation and evaluations/sec.
//!
//! Records land in the perf trajectory under two prefixes:
//! `hotpath:abs:*` are absolute wall-clock numbers (trajectory
//! visibility only — machine-dependent, never gated);
//! `hotpath:gate:*` are same-process ratios, gated like every other
//! record (throughput drop > tolerance fails CI).
//!
//! With the `sharded` feature a fourth measurement runs: **shard
//! scaling** — the same multi-chip hand-off-chain workload on the
//! single-threaded system engine vs one engine thread per chip
//! (ring:4 and fc:16), recorded as `hotpath:abs:shard:*` wall times
//! plus gated `hotpath:gate:shard:*` speedup ratios. The
//! `--min-shard-speedup` floor only applies when the host has at
//! least one hardware thread per chip (fc:16 must clear 1.5× the
//! ring:4 floor; `--quick` halves both).
//!
//! ```text
//! engine_hotpath [--quick] [--json BENCH_ci.json] [--min-speedup 3.0]
//!                [--min-shard-speedup 2.0]
//! ```

use compass::fitness::{mean_unit_fitness, partition_scores, FitnessContext, FitnessKind};
use compass::mutation::{self, MutationKind};
use compass::{decompose, PartitionGroup, ValidityMap};
use compass_bench::{arg_value, has_flag, print_table, BenchRecord};
use pim_arch::ChipSpec;
use pim_engine::{Component, ComponentId, Engine, EngineCtx, Event, EventQueue, SimRng, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

/// In-flight events held by the churn benchmarks (a realistic
/// simulator working set: cores + channels + rendezvous wakeups).
const HOLD: usize = 8192;

/// A deterministic reschedule delay drawn from the *measured* delay
/// histogram of the real simulators (instrumented `EventQueue::push`
/// over the CI `topology_sweep --quick` and `timing_mode_sweep
/// --quick` workloads, delay = scheduled time − last popped time):
/// ~58% same-instant events (stage starts, barrier resets, rendezvous
/// wakeups), the rest spread roughly a half-decade per 6% from 1 ns
/// component latencies out to ~262 µs weight-load completions. One
/// RNG draw per event keeps the driver's share of the loop small, so
/// the measured events/sec reflects the queue, not the harness.
fn churn_delay(rng: &mut SimRng) -> f64 {
    let r = rng.next_u64();
    let magnitude = r >> 16;
    match r & 15 {
        0..=8 => 0.0,
        9 => 1.0 + (magnitude % 7) as f64,
        10 => 8.0 + (magnitude % 56) as f64,
        11 => 64.0 + (magnitude % 448) as f64,
        12 => 512.0 + (magnitude % 3_584) as f64,
        13 | 14 => 4_096.0 + (magnitude % 28_672) as f64,
        _ => 32_768.0 + (magnitude % 229_376) as f64,
    }
}

/// Raw queue events/sec over `total` pop/push cycles of the hold
/// model: each handled event reschedules one successor at
/// `now + churn_delay`, so the queue holds [`HOLD`] events throughout.
/// Both queue kinds run the byte-identical schedule.
fn queue_events_per_sec(reference: bool, total: u64) -> f64 {
    let mut queue: EventQueue<u32> =
        if reference { EventQueue::reference() } else { EventQueue::with_capacity(HOLD) };
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    let target = ComponentId(0);
    for i in 0..HOLD {
        queue.push(SimTime::from_ns((i % 97) as f64), target, 0);
    }
    let mut processed = 0u64;
    let start = Instant::now();
    // The engine's drain pattern: one full pop per instant, then O(1)
    // `pop_at` pops for the rest of the same-instant burst.
    while processed < total {
        let first = queue.pop().expect("hold model never drains");
        let time = first.time;
        let now = time.as_ns();
        processed += 1;
        queue.push(SimTime::from_ns(now + churn_delay(&mut rng)), target, 0);
        // Same-instant reschedules keep the drain alive; the budget
        // check bounds the chains the 58% same-instant share produces.
        while processed < total && queue.pop_at(time).is_some() {
            processed += 1;
            queue.push(SimTime::from_ns(now + churn_delay(&mut rng)), target, 0);
        }
    }
    processed as f64 / start.elapsed().as_secs_f64()
}

/// A component that forwards a countdown to a pseudo-random peer with
/// a churn delay — the engine-dispatch counterpart of the queue bench.
struct Relay {
    peers: Vec<ComponentId>,
}

impl Component<u32> for Relay {
    fn on_event(&mut self, event: Event<u32>, ctx: &mut EngineCtx<'_, u32>) {
        if event.payload == 0 {
            return;
        }
        let pick = ctx.rng().next_u64() % self.peers.len() as u64;
        let peer = self.peers[pick as usize];
        let delay = churn_delay(ctx.rng());
        ctx.schedule_in(delay, peer, event.payload - 1);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Full-engine dispatch events/sec: `seeds` countdown chains over 64
/// relay components.
fn engine_events_per_sec(reference: bool, total: u64) -> f64 {
    const RELAYS: usize = 64;
    let seeds = 256u64;
    let budget = (total / seeds).max(1) as u32;
    let mut engine: Engine<u32> = Engine::new(7);
    if reference {
        engine.use_reference_queue();
    }
    engine.reserve_events(HOLD);
    let peers: Vec<ComponentId> = (0..RELAYS).map(ComponentId).collect();
    for _ in 0..RELAYS {
        engine.add_component(Relay { peers: peers.clone() });
    }
    for s in 0..seeds {
        engine.schedule(SimTime::from_ns(s as f64), peers[(s % RELAYS as u64) as usize], budget);
    }
    let start = Instant::now();
    let processed = engine.run_until_idle();
    processed as f64 / start.elapsed().as_secs_f64()
}

/// One COMPASS GA generation (population 100, 20 survivors, 80
/// mutated offspring) on ResNet18 / Chip-S at batch 8, measured over
/// `generations` after a warm-started population. Returns
/// `(ns per generation, evaluations per second)`.
fn ga_generation_latency(generations: usize) -> (f64, f64) {
    let chip = ChipSpec::chip_s();
    let net = compass_bench::network("resnet18");
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    let ctx = FitnessContext::new(&net, &seq, &validity, &chip, 8, FitnessKind::Latency);
    let mut rng = StdRng::seed_from_u64(2025);
    let (population, n_sel, n_mut) = (100usize, 20usize, 80usize);

    let initial: Vec<PartitionGroup> =
        (0..population).map(|_| PartitionGroup::random(&mut rng, &validity)).collect();
    let mut evals = 0usize;
    let start = Instant::now();
    let mut pool = ctx.evaluate_batch(&initial);
    evals += initial.len();
    for _ in 0..generations {
        pool.sort_by(|a, b| a.pgf.partial_cmp(&b.pgf).unwrap());
        pool.truncate(n_sel);
        let mean_m = mean_unit_fitness(&pool, seq.len());
        let mut children = Vec::with_capacity(n_mut);
        while children.len() < n_mut {
            let parent = pool.choose(&mut rng).expect("non-empty");
            let scores = partition_scores(parent, &mean_m);
            let kind = *MutationKind::ALL.choose(&mut rng).expect("non-empty");
            let child = mutation::apply(kind, &parent.group, &scores, &mut rng, &validity)
                .unwrap_or_else(|| PartitionGroup::random(&mut rng, &validity));
            children.push(child);
        }
        evals += children.len();
        pool.extend(ctx.evaluate_batch(&children));
    }
    let elapsed = start.elapsed().as_secs_f64();
    // The initial-population evaluation amortizes over the measured
    // generations, matching how a real run pays it once.
    (elapsed * 1e9 / generations as f64, evals as f64 / elapsed)
}

/// Best of `runs` measurements (wall-clock benches jitter downward
/// only: the fastest run is the least-disturbed one).
fn best_of<F: FnMut() -> f64>(runs: usize, mut f: F) -> f64 {
    (0..runs).map(|_| f()).fold(f64::MIN, f64::max)
}

/// Shard-scaling measurements: the same multi-chip hand-off-chain
/// workload on the single-threaded system engine and on one engine
/// thread per chip (`pim-sim`'s `sharded` feature). The reports are
/// byte-identical (the equivalence suite pins that); only the wall
/// clock differs.
#[cfg(feature = "sharded")]
mod shard {
    use compass::{CompileOptions, Compiler, GaParams, Strategy};
    use pim_arch::{ChipSpec, Topology};
    use pim_sim::{ChipLoad, SystemSimulator};
    use std::time::Instant;

    /// One topology's single-threaded vs sharded wall clock.
    pub struct Scaling {
        /// Trajectory label (`ring:4`, `fc:16`).
        pub label: &'static str,
        /// Chip (= shard thread) count.
        pub chips: usize,
        /// Best single-threaded wall time, ns.
        pub single_ns: f64,
        /// Best sharded wall time, ns.
        pub sharded_ns: f64,
    }

    impl Scaling {
        /// Single-threaded wall time over sharded wall time.
        pub fn speedup(&self) -> f64 {
            self.single_ns / self.sharded_ns
        }
    }

    /// Measures `topology` with every chip running the compiled
    /// tiny-CNN workload and handing off to its successor (so shard
    /// boundaries carry traffic every round).
    pub fn measure(topology: Topology, label: &'static str, rounds: usize, runs: usize) -> Scaling {
        let compiled = Compiler::new(ChipSpec::chip_s())
            .compile(
                &pim_model::zoo::tiny_cnn(),
                &CompileOptions::new()
                    .with_strategy(Strategy::Greedy)
                    .with_batch_size(4)
                    .with_ga(GaParams::fast())
                    .with_seed(11),
            )
            .expect("compiles");
        let chips = topology.chips();
        let loads: Vec<ChipLoad<'_>> = (0..chips)
            .map(|c| {
                let load = ChipLoad::new(compiled.programs());
                if c + 1 < chips {
                    load.with_handoff(c + 1, 65_536)
                } else {
                    load
                }
            })
            .collect();
        let wall_ns = |sharded: bool| {
            let sim =
                SystemSimulator::new(ChipSpec::chip_s(), topology.clone()).with_sharded(sharded);
            let start = Instant::now();
            let report = sim.run(&loads, rounds, 4).expect("simulates");
            std::hint::black_box(report.makespan_ns);
            start.elapsed().as_secs_f64() * 1e9
        };
        // Lower wall time is the least-disturbed run.
        let min_of = |f: &dyn Fn() -> f64| (0..runs).map(|_| f()).fold(f64::MAX, f64::min);
        Scaling {
            label,
            chips,
            single_ns: min_of(&|| wall_ns(false)),
            sharded_ns: min_of(&|| wall_ns(true)),
        }
    }
}

fn main() -> ExitCode {
    let quick = has_flag("--quick");
    let json = arg_value("--json");
    let min_speedup: f64 = arg_value("--min-speedup")
        .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --min-speedup {v:?}: {e}")))
        .unwrap_or(0.0);
    let (queue_events, engine_events, generations, runs) =
        if quick { (600_000u64, 300_000u64, 2usize, 3usize) } else { (2_000_000, 1_000_000, 5, 3) };

    let queue_cal = best_of(runs, || queue_events_per_sec(false, queue_events));
    let queue_ref = best_of(runs, || queue_events_per_sec(true, queue_events));
    let engine_cal = best_of(runs, || engine_events_per_sec(false, engine_events));
    let engine_ref = best_of(runs, || engine_events_per_sec(true, engine_events));
    let (ga_ns, ga_evals_per_sec) = ga_generation_latency(generations);

    let queue_speedup = queue_cal / queue_ref;
    let engine_speedup = engine_cal / engine_ref;

    let meps = |v: f64| format!("{:.2}", v / 1e6);
    print_table(
        "Engine hot-path (events/sec in millions)",
        &["metric", "calendar", "reference", "speedup"],
        &[
            vec![
                "queue churn".into(),
                meps(queue_cal),
                meps(queue_ref),
                format!("{queue_speedup:.2}x"),
            ],
            vec![
                "engine dispatch".into(),
                meps(engine_cal),
                meps(engine_ref),
                format!("{engine_speedup:.2}x"),
            ],
        ],
    );
    println!(
        "\nGA generation (ResNet18-S-8, pop 100): {:.1} ms/generation, {:.0} evaluations/s",
        ga_ns / 1e6,
        ga_evals_per_sec
    );

    #[cfg(feature = "sharded")]
    let shard_scalings = {
        let (shard_rounds, shard_runs) = if quick { (6usize, 2usize) } else { (16, 3) };
        let scalings = [
            shard::measure(pim_arch::Topology::ring(4), "ring:4", shard_rounds, shard_runs),
            shard::measure(
                pim_arch::Topology::fully_connected(16),
                "fc:16",
                shard_rounds,
                shard_runs,
            ),
        ];
        print_table(
            "Shard scaling (wall ms, single-threaded vs one thread per chip)",
            &["topology", "single", "sharded", "speedup"],
            &scalings
                .iter()
                .map(|s| {
                    vec![
                        s.label.into(),
                        format!("{:.1}", s.single_ns / 1e6),
                        format!("{:.1}", s.sharded_ns / 1e6),
                        format!("{:.2}x", s.speedup()),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        scalings
    };
    #[cfg(not(feature = "sharded"))]
    println!("\nshard scaling skipped (build with --features sharded to measure)");

    if let Some(path) = json {
        let record = |name: &str, makespan_ns: f64, throughput_ips: f64| BenchRecord {
            name: name.to_string(),
            makespan_ns,
            throughput_ips,
            host_parallelism: None,
        };
        compass_bench::append_records(
            &path,
            vec![
                // Absolute wall-clock metrics: trajectory visibility
                // only (machine-dependent; the gate skips the
                // `hotpath:abs:` prefix).
                record("hotpath:abs:queue:calendar", 1e9 / queue_cal, queue_cal),
                record("hotpath:abs:queue:reference", 1e9 / queue_ref, queue_ref),
                record("hotpath:abs:engine:calendar", 1e9 / engine_cal, engine_cal),
                record("hotpath:abs:engine:reference", 1e9 / engine_ref, engine_ref),
                record("hotpath:abs:ga:generation", ga_ns, ga_evals_per_sec),
                // Same-process ratios: machine-independent, gated on
                // throughput like the satellite makespans are on
                // cycles.
                record("hotpath:gate:queue-speedup", 1.0 / queue_speedup, queue_speedup),
                record("hotpath:gate:engine-speedup", 1.0 / engine_speedup, engine_speedup),
            ],
        );
        // Shard scaling: absolute wall times for visibility, plus the
        // same-process single/sharded ratio gated like the other
        // speedups. Unlike the queue/engine ratios, shard speedup is a
        // function of the measuring host's core count, so every shard
        // record carries a parallelism stamp and the baseline gate
        // only compares records measured at matching parallelism.
        #[cfg(feature = "sharded")]
        compass_bench::append_records(
            &path,
            shard_scalings
                .iter()
                .flat_map(|s| {
                    [
                        record(
                            &format!("hotpath:abs:shard:{}:single", s.label),
                            s.single_ns,
                            1e9 / s.single_ns,
                        ),
                        record(
                            &format!("hotpath:abs:shard:{}:sharded", s.label),
                            s.sharded_ns,
                            1e9 / s.sharded_ns,
                        ),
                        record(
                            &format!("hotpath:gate:shard:{}", s.label),
                            1.0 / s.speedup(),
                            s.speedup(),
                        ),
                    ]
                    .map(compass_bench::BenchRecord::measured_on_this_host)
                })
                .collect(),
        );
        println!("\nrecorded hot-path trajectory into {path}");
    }

    #[cfg(feature = "sharded")]
    {
        let min_shard: f64 = arg_value("--min-shard-speedup")
            .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --min-shard-speedup {v:?}: {e}")))
            .unwrap_or(0.0);
        if min_shard > 0.0 {
            let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            // fc:16 must scale 1.5x further than ring:4 (the 2x/3x
            // acceptance pair at --min-shard-speedup 2.0); --quick
            // halves both floors.
            for (scaling, mult) in shard_scalings.iter().zip([1.0, 1.5]) {
                let floor = min_shard * mult * if quick { 0.5 } else { 1.0 };
                if parallelism < scaling.chips {
                    println!(
                        "note: shard gate for {} skipped ({parallelism} hardware threads < {} chips)",
                        scaling.label, scaling.chips
                    );
                } else if scaling.speedup() < floor {
                    eprintln!(
                        "engine_hotpath: shard speedup {:.2}x on {} below required {floor:.2}x",
                        scaling.speedup(),
                        scaling.label
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    if min_speedup > 0.0 && queue_speedup < min_speedup {
        eprintln!(
            "engine_hotpath: queue speedup {queue_speedup:.2}x below required {min_speedup:.2}x"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
