//! CI perf-trajectory gate.
//!
//! Compares a fresh `BENCH_ci.json` (written by `topology_sweep` /
//! `timing_mode_sweep` / `engine_hotpath` / `serving_sweep` with
//! `--json`) against the
//! committed baseline and exits non-zero when any configuration's
//! simulated cycle count regressed by more than the tolerance
//! (default 20%). The simulated makespans are deterministic for a
//! fixed seed, so the gate is exact: the tolerance absorbs
//! intentional model refinements, not noise. Hot-path records are
//! direction-aware: `hotpath:gate:*` speedup ratios fail when their
//! *throughput* drops past the tolerance, and `hotpath:abs:*`
//! wall-clock metrics ride along ungated (they depend on the machine
//! that measured them).
//!
//! ```text
//! bench_gate --current BENCH_ci.json \
//!            --baseline crates/bench/baselines/ci_baseline.json \
//!            [--tolerance 0.2]
//! ```
//!
//! On GitHub runners the full baseline-vs-current delta lands on the
//! job summary page (`$GITHUB_STEP_SUMMARY`), so a red gate comes
//! with the numbers attached.
//!
//! Baselines are updated deliberately: rerun the sweeps exactly as CI
//! does — `--quick --json <baseline path>` — and commit the diff
//! (record names encode the partitioning scheme, so a non-quick regen
//! adds GA records instead of refreshing the gated greedy ones).

use compass_bench::{arg_value, check_against_baseline, load_records, markdown_delta_table};
use std::io::Write;
use std::process::ExitCode;

/// Appends the delta table to `$GITHUB_STEP_SUMMARY` when the runner
/// provides one (append, not truncate: earlier steps own the top of
/// the summary page). Outside CI the variable is unset and this is a
/// no-op.
fn publish_step_summary(table: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{table}"));
    if let Err(e) = result {
        eprintln!("bench_gate: cannot write step summary {path}: {e}");
    }
}

fn main() -> ExitCode {
    let current_path = arg_value("--current").unwrap_or_else(|| "BENCH_ci.json".to_string());
    let baseline_path = arg_value("--baseline")
        .unwrap_or_else(|| "crates/bench/baselines/ci_baseline.json".to_string());
    let tolerance: f64 = arg_value("--tolerance")
        .map(|t| t.parse().unwrap_or_else(|e| panic!("bad --tolerance {t:?}: {e}")))
        .unwrap_or(0.2);

    let current = load_records(&current_path);
    let baseline = load_records(&baseline_path);
    if current.is_empty() {
        eprintln!("bench_gate: no current records at {current_path}");
        return ExitCode::FAILURE;
    }
    if baseline.is_empty() {
        eprintln!("bench_gate: no baseline records at {baseline_path}");
        return ExitCode::FAILURE;
    }

    let fresh = current.iter().filter(|r| baseline.iter().all(|b| b.name != r.name)).count();
    let improved = baseline
        .iter()
        .filter(|b| {
            current.iter().find(|r| r.name == b.name).is_some_and(|r| r.makespan_ns < b.makespan_ns)
        })
        .count();
    println!(
        "bench_gate: {} current vs {} baseline records ({improved} improved, {fresh} new, tolerance {:.0}%)",
        current.len(),
        baseline.len(),
        100.0 * tolerance
    );

    publish_step_summary(&markdown_delta_table(&current, &baseline, tolerance));

    let violations = check_against_baseline(&current, &baseline, tolerance);
    if violations.is_empty() {
        println!("bench_gate: trajectory within tolerance");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench_gate: REGRESSION {v}");
        }
        eprintln!(
            "bench_gate: {} violation(s); update {baseline_path} only for intentional model changes",
            violations.len()
        );
        ExitCode::FAILURE
    }
}
