//! Regenerates **Fig. 5** (partition validity maps).
//!
//! Prints an ASCII heat map of valid `(start, end)` partition spans per
//! model and chip: `#` = valid, `.` = invalid. The paper's observation
//! — the invalid portion grows toward bigger models and smaller chips
//! — shows up as the shrinking `#` wedge.

use compass::{decompose, ValidityMap};
use compass_bench::network;
use pim_arch::{ChipClass, ChipSpec};

fn main() {
    // The paper shows SqueezeNet / ResNet18 / VGG16 (growing size)
    // against Chip-S and Chip-L.
    for name in ["squeezenet", "resnet18", "vgg16"] {
        let net = network(name);
        for class in [ChipClass::L, ChipClass::S] {
            let chip = ChipSpec::preset(class);
            let seq = decompose(&net, &chip);
            let map = ValidityMap::build(&seq, &chip);
            println!(
                "\n=== {name} on Chip-{class}: M = {} units, valid fraction = {:.3} ===",
                map.len(),
                map.valid_fraction()
            );
            print!("{}", map.ascii_map(40));
        }
    }
    println!(
        "\npaper reference: valid wedge shrinks toward (bigger model, smaller chip); SqueezeNet is fully valid, VGG16-S mostly invalid"
    );
}
