//! Regenerates **Table I** (hardware configuration).

use compass_bench::print_table;
use pim_arch::{ChipClass, ChipSpec};

fn main() {
    let core = pim_arch::CoreSpec::paper();
    print_table(
        "Table I (a): per-core components",
        &["Component", "Parameters", "Specification", "Power (mW)"],
        &[
            vec![
                "VFU".into(),
                "# per core".into(),
                format!("{}", core.vfu_count),
                format!("{}", core.vfu_power_mw),
            ],
            vec![
                "Local Memory".into(),
                "# per core".into(),
                format!("{} kB", core.local_memory_bytes / 1024),
                format!("{}", core.local_memory_power_mw),
            ],
            vec![
                "Control Unit".into(),
                "# per core".into(),
                "-".into(),
                format!("{}", core.control_power_mw),
            ],
            vec![
                "DRAM config.".into(),
                "LPDDR3 8GB".into(),
                "trace-based".into(),
                "(pim-dram)".into(),
            ],
        ],
    );

    let rows: Vec<Vec<String>> = ChipClass::ALL
        .iter()
        .map(|&class| {
            let chip = ChipSpec::preset(class);
            vec![
                chip.name.clone(),
                chip.cores.to_string(),
                chip.crossbars_per_core.to_string(),
                format!("{:.3}", chip.capacity_mib()),
                format!("{:.2}", chip.chip_power_w),
            ]
        })
        .collect();
    print_table(
        "Table I (b): chip configurations",
        &["Chip", "# Cores", "# Crossbar/Core", "Capacity (MiB)", "Power (W)"],
        &rows,
    );
    println!("\npaper reference: S = 1.125 MiB / 1.57 W, M = 2.0 / 2.80, L = 4.5 / 6.30");
}
