//! **GA scaling benchmark**: how the COMPASS search loop scales with
//! population size across evaluation strategies, feeding the CI perf
//! trajectory with the `ga:*` record family.
//!
//! For each population (100 / 1000, plus 4000 in full mode) the same
//! seeded run — ResNet18 / Chip-S at batch 8, fixed generation count,
//! early stopping disabled — is measured along every axis the
//! build supports:
//!
//! * **serial** — one thread, the sharded memo on (the baseline).
//! * **serial-nomemo** — one thread, memoization off: every
//!   chromosome re-evaluates all its segments. The serial-nomemo /
//!   serial wall ratio is the *memo speedup*.
//! * **parallel** *(feature `parallel`)* — batch fan-out over the
//!   shared [`compass::MemoShards`] memo. The serial / parallel wall
//!   ratio is the *parallel speedup* the CI gate pins
//!   (`--min-speedup`).
//! * **parallel-nomemo** *(feature `parallel`)* — fan-out with the
//!   memo off (pure evaluation throughput, no sharing).
//! * **parallel-spec** *(feature `parallel`)* — fan-out plus
//!   generation-level speculative pipelining.
//!
//! Every axis must produce the byte-identical best chromosome and
//! fitness bits for the shared seed — the bin asserts this before
//! recording anything, so a trajectory point can never come from a
//! run that changed results.
//!
//! Records land under two prefixes: `ga:abs:pop:{N}:{axis}` are
//! absolute ns-per-generation / evaluations-per-second walls
//! (machine-dependent, never gated) and `ga:gate:pop:{N}:*-speedup`
//! are same-process ratios gated on throughput. Parallel speedup is a
//! function of the measuring host's core count, so every record
//! carries a `host_parallelism` stamp and the baseline gate only
//! compares records measured at matching parallelism. On a one-core
//! host the `--min-speedup` floor is skipped with a printed note — a
//! parallelism-1 fan-out has nothing to win.
//!
//! ```text
//! ga_scaling [--quick] [--json BENCH_ci.json] [--min-speedup 1.3]
//! ```

use compass::fitness::{FitnessContext, FitnessKind};
use compass::ga::{self, GaParams};
use compass::{decompose, UnitSequence, ValidityMap};
use compass_bench::{arg_value, has_flag, print_table, BenchRecord};
use pim_arch::ChipSpec;
use pim_model::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

/// The population the `--min-speedup` gate (and the committed
/// `ga:gate:*` trajectory floor) judges: large enough that fan-out
/// dominates scheduling overhead, small enough for CI.
const GATED_POPULATION: usize = 1000;

/// Evaluation strategies; the parallel axes only exist when the
/// `parallel` feature is compiled in, so serial-only builds emit a
/// trajectory with no misleading fan-out records.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    Serial,
    SerialNomemo,
    #[cfg(feature = "parallel")]
    Parallel,
    #[cfg(feature = "parallel")]
    ParallelNomemo,
    #[cfg(feature = "parallel")]
    ParallelSpec,
}

impl Axis {
    fn all() -> Vec<Axis> {
        vec![
            Axis::Serial,
            Axis::SerialNomemo,
            #[cfg(feature = "parallel")]
            Axis::Parallel,
            #[cfg(feature = "parallel")]
            Axis::ParallelNomemo,
            #[cfg(feature = "parallel")]
            Axis::ParallelSpec,
        ]
    }

    /// Trajectory label (`ga:abs:pop:{N}:{label}`).
    fn label(self) -> &'static str {
        match self {
            Axis::Serial => "serial",
            Axis::SerialNomemo => "serial-nomemo",
            #[cfg(feature = "parallel")]
            Axis::Parallel => "parallel",
            #[cfg(feature = "parallel")]
            Axis::ParallelNomemo => "parallel-nomemo",
            #[cfg(feature = "parallel")]
            Axis::ParallelSpec => "parallel-spec",
        }
    }

    fn configure<'a>(self, ctx: FitnessContext<'a>) -> FitnessContext<'a> {
        match self {
            Axis::Serial => ctx.with_parallel_eval(false),
            Axis::SerialNomemo => ctx.with_parallel_eval(false).with_memo(false),
            #[cfg(feature = "parallel")]
            Axis::Parallel => ctx,
            #[cfg(feature = "parallel")]
            Axis::ParallelNomemo => ctx.with_memo(false),
            #[cfg(feature = "parallel")]
            Axis::ParallelSpec => ctx.with_speculation(true),
        }
    }
}

/// The shared workload (borrowed by every [`FitnessContext`]).
struct Fixture {
    net: Network,
    seq: UnitSequence,
    validity: ValidityMap,
    chip: ChipSpec,
}

fn fixture() -> Fixture {
    let chip = ChipSpec::chip_s();
    let net = compass_bench::network("resnet18");
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    Fixture { net, seq, validity, chip }
}

/// COMPASS's 20/80 selection split at population `pop`, with early
/// stopping disabled so every axis runs exactly `gens` generations —
/// walls stay comparable and the byte-identity cross-check is total.
fn params_for(pop: usize, gens: usize) -> GaParams {
    let n_sel = (pop / 5).max(1);
    GaParams {
        population: pop,
        generations: gens,
        n_sel,
        n_mut: pop - n_sel,
        early_stop_patience: 0,
        crossover_rate: 0.0,
    }
}

struct Measurement {
    /// Best wall time across runs, ns (the least-disturbed run).
    wall_ns: f64,
    /// Wall per generation (initial-population evaluation amortized).
    ns_per_gen: f64,
    /// Nominal chromosome evaluations per second (memo hits count:
    /// the GA consumed that many fitness values either way).
    evals_per_sec: f64,
    /// Best chromosome, for the cross-axis byte-identity check.
    best_cuts: Vec<usize>,
    /// Best fitness bits, same purpose.
    best_pgf_bits: u64,
}

/// Runs the seeded GA `runs` times on a fresh (cold-memo) context per
/// run and keeps the fastest wall. Results must agree across runs —
/// an axis that isn't reproducible has no business in the trajectory.
fn measure(f: &Fixture, pop: usize, gens: usize, runs: usize, axis: Axis) -> Measurement {
    let params = params_for(pop, gens);
    let mut wall_ns = f64::MAX;
    let mut best: Option<(Vec<usize>, u64)> = None;
    for _ in 0..runs {
        let ctx = axis.configure(FitnessContext::new(
            &f.net,
            &f.seq,
            &f.validity,
            &f.chip,
            8,
            FitnessKind::Latency,
        ));
        let mut rng = StdRng::seed_from_u64(2025);
        let start = Instant::now();
        let (winner, _trace) = ga::run(&ctx, &params, &mut rng);
        let elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
        wall_ns = wall_ns.min(elapsed_ns);
        let cuts = winner.group.cuts().to_vec();
        let bits = winner.pgf.to_bits();
        match &best {
            None => best = Some((cuts, bits)),
            Some((prev_cuts, prev_bits)) => {
                assert_eq!(prev_cuts, &cuts, "{}: rerun diverged", axis.label());
                assert_eq!(*prev_bits, bits, "{}: rerun fitness diverged", axis.label());
            }
        }
    }
    let (best_cuts, best_pgf_bits) = best.expect("at least one run");
    let nominal_evals = (params.population + gens * params.n_mut) as f64;
    Measurement {
        wall_ns,
        ns_per_gen: wall_ns / gens as f64,
        evals_per_sec: nominal_evals / (wall_ns / 1e9),
        best_cuts,
        best_pgf_bits,
    }
}

fn main() -> ExitCode {
    let quick = has_flag("--quick");
    let json = arg_value("--json");
    let min_speedup: f64 = arg_value("--min-speedup")
        .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --min-speedup {v:?}: {e}")))
        .unwrap_or(0.0);
    let pops: &[usize] =
        if quick { &[100, GATED_POPULATION] } else { &[100, GATED_POPULATION, 4000] };
    // Always at least best-of-2: the fastest wall discards the run
    // that paid one-time process warm-up (page faults, allocator
    // growth) — with a single run the first-measured axis absorbs all
    // of it and every ratio against that axis is inflated.
    let (gens, runs) = if quick { (2usize, 2usize) } else { (4, 2) };

    let f = fixture();
    // Touch every code path once before any clock starts, for the
    // same reason.
    measure(&f, 50, 1, 1, Axis::Serial);
    let mut records: Vec<BenchRecord> = Vec::new();
    // The gated parallel speedup at GATED_POPULATION, if measured.
    #[cfg_attr(not(feature = "parallel"), allow(unused_mut))]
    let mut gated_parallel_speedup: Option<f64> = None;

    for &pop in pops {
        let axes = Axis::all();
        let measured: Vec<(Axis, Measurement)> =
            axes.iter().map(|&axis| (axis, measure(&f, pop, gens, runs, axis))).collect();

        // Byte-identity across every axis before anything is
        // recorded: the scaling machinery may only change wall clock.
        let (_, serial) = measured.iter().find(|(a, _)| *a == Axis::Serial).expect("serial axis");
        for (axis, m) in &measured {
            assert_eq!(
                serial.best_cuts,
                m.best_cuts,
                "pop {pop}: {} best chromosome diverged from serial",
                axis.label()
            );
            assert_eq!(
                serial.best_pgf_bits,
                m.best_pgf_bits,
                "pop {pop}: {} best fitness diverged from serial",
                axis.label()
            );
        }

        let wall_of = |want: Axis| {
            measured.iter().find(|(a, _)| *a == want).map(|(_, m)| m.wall_ns).expect("axis ran")
        };
        let memo_speedup = wall_of(Axis::SerialNomemo) / wall_of(Axis::Serial);
        #[cfg(feature = "parallel")]
        let parallel_speedup = wall_of(Axis::Serial) / wall_of(Axis::Parallel);
        #[cfg(feature = "parallel")]
        if pop == GATED_POPULATION {
            gated_parallel_speedup = Some(parallel_speedup);
        }

        print_table(
            &format!("GA scaling, population {pop} ({gens} generations, best of {runs})"),
            &["axis", "ms/generation", "evals/s", "vs serial"],
            &measured
                .iter()
                .map(|(axis, m)| {
                    vec![
                        axis.label().into(),
                        format!("{:.1}", m.ns_per_gen / 1e6),
                        format!("{:.0}", m.evals_per_sec),
                        format!("{:.2}x", wall_of(Axis::Serial) / m.wall_ns),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!("memo speedup at population {pop}: {memo_speedup:.2}x");
        #[cfg(feature = "parallel")]
        println!("parallel speedup at population {pop}: {parallel_speedup:.2}x");

        let record = |name: String, makespan_ns: f64, throughput_ips: f64| {
            BenchRecord { name, makespan_ns, throughput_ips, host_parallelism: None }
                .measured_on_this_host()
        };
        // Absolute walls: trajectory visibility only (the gate skips
        // the `ga:abs:` prefix entirely).
        for (axis, m) in &measured {
            records.push(record(
                format!("ga:abs:pop:{pop}:{}", axis.label()),
                m.ns_per_gen,
                m.evals_per_sec,
            ));
        }
        // Same-process ratios: gated on throughput, but only against
        // baselines measured at the same host parallelism.
        records.push(record(
            format!("ga:gate:pop:{pop}:memo-speedup"),
            1.0 / memo_speedup,
            memo_speedup,
        ));
        #[cfg(feature = "parallel")]
        records.push(record(
            format!("ga:gate:pop:{pop}:parallel-speedup"),
            1.0 / parallel_speedup,
            parallel_speedup,
        ));
    }

    if let Some(path) = json {
        compass_bench::append_records(&path, records);
        println!("\nrecorded GA scaling trajectory into {path}");
    }

    if min_speedup > 0.0 {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cfg!(not(feature = "parallel")) {
            println!(
                "note: ga parallel-speedup gate skipped (built without the `parallel` feature)"
            );
        } else if parallelism < 2 {
            println!(
                "note: ga parallel-speedup gate skipped ({parallelism} hardware thread — a \
                 parallelism-1 fan-out has nothing to win)"
            );
        } else {
            let speedup = gated_parallel_speedup.expect("gated population always measured");
            if speedup < min_speedup {
                eprintln!(
                    "ga_scaling: parallel speedup {speedup:.2}x at population \
                     {GATED_POPULATION} below required {min_speedup:.2}x"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
