//! **Extension**: open-loop serving sweep.
//!
//! Compiles each workload onto a 2-chip ring pipeline, then drives it
//! with open-loop request traffic instead of a fixed round count:
//! Poisson and bursty MMPP arrivals through the batching-policy zoo
//! (immediate dispatch, max-batch-size, batch-vs-deadline). Every
//! point reports the tail — p50/p99/p999 latency, queueing delay,
//! drops — and SLO goodput, and emits one `serving:*` perf-trajectory
//! record carrying **p99 latency in `makespan_ns`** and **goodput in
//! `throughput_ips`** (the gate's makespan direction — lower is
//! better — matches tail latency exactly).
//!
//! Arrival rates are calibrated against the pipeline's own simulated
//! round time (a fixed utilization, not a fixed req/s), so every
//! workload queues meaningfully without saturating. The calibration
//! and the arrival streams are seeded and simulated, so records are
//! byte-deterministic and the gate stays exact.
//!
//! Flags:
//!
//! * `--quick` — greedy partitioning, squeezenet only (the CI
//!   bench-smoke configuration);
//! * `--paper` — the paper's GA hyper-parameters;
//! * `--shard` — skip the sweep and measure the serving **engine**
//!   instead: single-threaded vs sharded wall clock over a rate ×
//!   topology grid (`serving:abs:shard:*` / `serving:gate:shard:*`,
//!   parallelism-stamped), plus the chunked arrival-pregeneration
//!   hot-path walls (`serving:abs:hotpath:chunk:*`). Every measured
//!   pair is first asserted byte-identical, so the trajectory can
//!   never drift away from the oracle it is timing;
//! * `--min-shard-speedup <x>` — with `--shard`, fail unless every
//!   grid point's sharded engine beats the single-threaded one by
//!   `x` (halved under `--quick`; skipped with a note when the host
//!   has fewer hardware threads than the topology has chips);
//! * `--json <path>` — merge this run's `serving:*` records into
//!   `path` (`BENCH_ci.json` in CI).

use std::process::ExitCode;

use compass::{Strategy, SystemStrategy};
use compass_bench::{
    append_records, arg_value, has_flag, print_table, run_system_config, system_loads, BenchMode,
    BenchRecord,
};
use pim_arch::{ChipClass, ChipSpec, ScheduleMode, TimingMode, Topology};
use pim_sim::{
    BatchPolicy, ServingConfig, ServingReport, SystemSimulator, TrafficModel, TrafficSpec,
};

/// One traffic × batching point of the sweep.
struct SweepPoint {
    /// Stable suffix of the record name, e.g. `"poisson-immediate"`.
    key: &'static str,
    traffic: TrafficModel,
    policy: BatchPolicy,
}

/// The sweep's traffic/policy grid, rate-calibrated so the Poisson
/// points offer `util` of the pipeline's service capacity.
fn sweep_points(service_ns: f64, batch: usize) -> Vec<SweepPoint> {
    let util = 0.6;
    let rate_per_s = util / (service_ns * 1e-9);
    let poisson = TrafficModel::Poisson { rate_per_s };
    // Bursts at 3x service capacity against long calm valleys, same
    // order of mean load as the Poisson points.
    let mmpp = TrafficModel::Mmpp {
        calm_rate_per_s: 0.3 * rate_per_s / util,
        burst_rate_per_s: 3.0 * rate_per_s / util,
        mean_calm_s: 8.0 * service_ns * 1e-9,
        mean_burst_s: 2.0 * service_ns * 1e-9,
    };
    vec![
        SweepPoint { key: "poisson-immediate", traffic: poisson, policy: BatchPolicy::Immediate },
        SweepPoint { key: "poisson-batch", traffic: poisson, policy: BatchPolicy::MaxSize(batch) },
        SweepPoint {
            key: "poisson-deadline",
            traffic: poisson,
            policy: BatchPolicy::Deadline { max_size: batch, timeout_ns: service_ns / 2.0 },
        },
        SweepPoint { key: "mmpp-immediate", traffic: mmpp, policy: BatchPolicy::Immediate },
    ]
}

fn main() -> ExitCode {
    let mode = BenchMode::from_args();
    let quick = has_flag("--quick");
    if has_flag("--shard") {
        return engine::trajectory(quick);
    }
    let strategy = if quick { Strategy::Greedy } else { Strategy::Compass };
    let nets: &[&str] = if quick { &["squeezenet"] } else { &["squeezenet", "resnet18"] };
    let requests = if quick { 96 } else { 256 };
    let batch = 4;
    let topology = Topology::ring(2);

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rows = Vec::new();
    for net in nets {
        // Compile once per network and reuse the planned loads for
        // every traffic point; the closed-loop 2-round run doubles as
        // the service-time probe for rate calibration.
        let planned = run_system_config(
            net,
            ChipClass::S,
            strategy,
            SystemStrategy::LayerPipeline,
            &topology,
            batch,
            2,
            mode,
            TimingMode::Analytic,
            ScheduleMode::Barrier,
        );
        let loads = system_loads(&planned.schedule);
        let service_ns = planned.report.makespan_ns / 2.0;
        let sim = SystemSimulator::new(ChipSpec::preset(ChipClass::S), topology.clone());
        for point in sweep_points(service_ns, batch) {
            let traffic = TrafficSpec::Synthetic { model: point.traffic, seed: 2025, requests };
            let config =
                ServingConfig::new(traffic).with_policy(point.policy).with_slo_ns(5.0 * service_ns);
            let label = format!("{net}-S-{topology}-{}", point.key);
            let report =
                sim.run_serving(&loads, &config).unwrap_or_else(|e| panic!("serving:{label}: {e}"));
            let serving = report.serving.expect("serving runs carry a serving section");
            records.push(BenchRecord {
                name: format!("serving:{label}:{strategy}"),
                makespan_ns: serving.p99_ns,
                throughput_ips: serving.goodput_rps,
                host_parallelism: None,
            });
            rows.push(summary_row(&label, &serving));
        }
    }

    print_table(
        &format!(
            "Open-loop serving sweep (ring:2 layer pipeline, batch {batch}, {requests} requests)"
        ),
        &[
            "Config",
            "Served",
            "Dropped",
            "Rounds",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "Mean queue (us)",
            "Goodput (req/s)",
        ],
        &rows,
    );

    if let Some(path) = arg_value("--json") {
        let count = records.len();
        append_records(&path, records);
        println!("\nwrote {count} perf records to {path}");
    }
    ExitCode::SUCCESS
}

fn summary_row(label: &str, s: &ServingReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{}", s.requests),
        format!("{}", s.dropped),
        format!("{}", s.rounds),
        format!("{:.1}", s.p50_ns / 1000.0),
        format!("{:.1}", s.p99_ns / 1000.0),
        format!("{:.1}", s.p999_ns / 1000.0),
        format!("{:.1}", s.mean_queue_ns / 1000.0),
        format!("{:.1}", s.goodput_rps),
    ]
}

/// `--shard`: serving-engine trajectory — wall clocks of the serving
/// hot path itself rather than the simulated tail.
mod engine {
    use super::*;
    use compass::{CompileOptions, CompiledModel, Compiler, GaParams};
    use pim_sim::ChipLoad;
    use std::time::Instant;

    /// Compiles the shared tiny-CNN engine workload (same recipe as
    /// `engine_hotpath`'s shard bench, so the two trajectories time
    /// comparable graphs).
    fn compile_workload() -> CompiledModel {
        Compiler::new(ChipSpec::chip_s())
            .compile(
                &pim_model::zoo::tiny_cnn(),
                &CompileOptions::new()
                    .with_strategy(Strategy::Greedy)
                    .with_batch_size(4)
                    .with_ga(GaParams::fast())
                    .with_seed(11),
            )
            .expect("compiles")
    }

    /// Every chip runs the compiled workload and hands off to its
    /// successor, so shard boundaries carry traffic every round.
    fn chain_loads(compiled: &CompiledModel, chips: usize) -> Vec<ChipLoad<'_>> {
        (0..chips)
            .map(|c| {
                let load = ChipLoad::new(compiled.programs());
                if c + 1 < chips {
                    load.with_handoff(c + 1, 65_536)
                } else {
                    load
                }
            })
            .collect()
    }

    /// Poisson serving config at `util` of the chain's measured
    /// per-round service capacity.
    fn serving_config(service_ns: f64, util: f64, requests: usize) -> ServingConfig {
        let traffic = TrafficSpec::Synthetic {
            model: TrafficModel::Poisson { rate_per_s: util / (service_ns * 1e-9) },
            seed: 2025,
            requests,
        };
        ServingConfig::new(traffic)
            .with_policy(BatchPolicy::MaxSize(4))
            .with_slo_ns(8.0 * service_ns)
    }

    /// Best-of-`runs` wall time, ns (lower is the least-disturbed
    /// run).
    fn min_wall_ns<F: Fn() -> f64>(runs: usize, f: F) -> f64 {
        (0..runs).map(|_| f()).fold(f64::MAX, f64::min)
    }

    /// Probes the chain's round time with a closed-loop 2-round run
    /// (same calibration trick as the tail sweep).
    fn probe_service_ns(topology: &Topology, loads: &[ChipLoad<'_>]) -> f64 {
        let sim = SystemSimulator::new(ChipSpec::chip_s(), topology.clone());
        sim.run(loads, 2, 4).expect("probe simulates").makespan_ns / 2.0
    }

    /// One grid point's single-threaded vs sharded serving wall clock.
    #[cfg(feature = "sharded")]
    struct Scaling {
        /// Stable record key, e.g. `"ring2-u90"`.
        key: String,
        /// Chip (= shard thread) count.
        chips: usize,
        /// Best single-threaded wall time, ns.
        single_ns: f64,
        /// Best sharded wall time, ns.
        sharded_ns: f64,
    }

    #[cfg(feature = "sharded")]
    impl Scaling {
        /// Single-threaded wall time over sharded wall time.
        fn speedup(&self) -> f64 {
            self.single_ns / self.sharded_ns
        }
    }

    /// Measures the rate grid on one topology: asserts the sharded
    /// report byte-identical to the oracle at every point, then times
    /// both engines.
    #[cfg(feature = "sharded")]
    fn measure_topology(
        topology: Topology,
        label: &str,
        requests: usize,
        runs: usize,
    ) -> Vec<Scaling> {
        use pim_sim::EngineMode;

        let compiled = compile_workload();
        let chips = topology.chips();
        let loads = chain_loads(&compiled, chips);
        let service_ns = probe_service_ns(&topology, &loads);
        [(0.5, "u50"), (0.9, "u90")]
            .iter()
            .map(|&(util, rate_key)| {
                let config = serving_config(service_ns, util, requests);
                let run = |sharded: bool| {
                    SystemSimulator::new(ChipSpec::chip_s(), topology.clone())
                        .with_sharded(sharded)
                        .run_serving(&loads, &config)
                        .expect("serving simulates")
                };
                // Identity first: the trajectory only times engines
                // that agree byte-for-byte.
                let oracle = run(false);
                let sharded = run(true);
                assert!(
                    matches!(sharded.engine, Some(EngineMode::Sharded { .. })),
                    "{label}-{rate_key}: sharded run fell back to {:?}",
                    sharded.engine
                );
                assert!(
                    oracle == sharded,
                    "{label}-{rate_key}: sharded serving report diverged from the oracle"
                );
                let wall = |sharded: bool| {
                    let start = Instant::now();
                    std::hint::black_box(run(sharded).makespan_ns);
                    start.elapsed().as_secs_f64() * 1e9
                };
                Scaling {
                    key: format!("{label}-{rate_key}"),
                    chips,
                    single_ns: min_wall_ns(runs, || wall(false)),
                    sharded_ns: min_wall_ns(runs, || wall(true)),
                }
            })
            .collect()
    }

    /// The serving-engine trajectory behind `--shard`.
    pub fn trajectory(quick: bool) -> ExitCode {
        let (requests, runs) = if quick { (128, 2) } else { (512, 3) };
        let mut records: Vec<BenchRecord> = Vec::new();

        // Chunked-arrival hot path: the same single-threaded run with
        // arrival pre-generation disabled (chunk 1 reproduces the
        // legacy one-event-per-arrival pacing) vs the default chunk.
        // Absolute walls only — trajectory visibility, no gate.
        {
            let topology = Topology::ring(2);
            let compiled = compile_workload();
            let loads = chain_loads(&compiled, 2);
            let service_ns = probe_service_ns(&topology, &loads);
            let config = serving_config(service_ns, 0.9, requests);
            let run = |chunk: usize| {
                SystemSimulator::new(ChipSpec::chip_s(), topology.clone())
                    .with_arrival_chunk(chunk)
                    .run_serving(&loads, &config)
                    .expect("serving simulates")
            };
            assert!(
                run(1) == run(512),
                "arrival chunking changed the serving report (chunk 1 vs 512)"
            );
            let wall = |chunk: usize| {
                let start = Instant::now();
                std::hint::black_box(run(chunk).makespan_ns);
                start.elapsed().as_secs_f64() * 1e9
            };
            let legacy_ns = min_wall_ns(runs, || wall(1));
            let chunked_ns = min_wall_ns(runs, || wall(512));
            println!(
                "serving hot path (ring:2, {requests} requests): chunk 1 {:.1} ms, chunk 512 {:.1} ms ({:.2}x)",
                legacy_ns / 1e6,
                chunked_ns / 1e6,
                legacy_ns / chunked_ns
            );
            let rps = |wall_ns: f64| requests as f64 * 1e9 / wall_ns;
            records.push(BenchRecord {
                name: "serving:abs:hotpath:chunk:1".into(),
                makespan_ns: legacy_ns,
                throughput_ips: rps(legacy_ns),
                host_parallelism: None,
            });
            records.push(BenchRecord {
                name: "serving:abs:hotpath:chunk:512".into(),
                makespan_ns: chunked_ns,
                throughput_ips: rps(chunked_ns),
                host_parallelism: None,
            });
        }

        // Shard scaling: rate × topology grid, byte-identity asserted
        // per point before timing. Shard speedup is a function of the
        // measuring host's core count, so every record carries a
        // parallelism stamp and the baseline gate only compares
        // records measured at matching parallelism.
        #[cfg(feature = "sharded")]
        let scalings = {
            let mut scalings = measure_topology(Topology::ring(2), "ring2", requests, runs);
            scalings.extend(measure_topology(Topology::fully_connected(4), "fc4", requests, runs));
            print_table(
                "Sharded serving scaling (wall ms, single-threaded vs one thread per chip)",
                &["grid point", "single", "sharded", "speedup"],
                &scalings
                    .iter()
                    .map(|s| {
                        vec![
                            s.key.clone(),
                            format!("{:.1}", s.single_ns / 1e6),
                            format!("{:.1}", s.sharded_ns / 1e6),
                            format!("{:.2}x", s.speedup()),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
            for s in &scalings {
                let record = |name: String, makespan_ns: f64, throughput_ips: f64| {
                    BenchRecord { name, makespan_ns, throughput_ips, host_parallelism: None }
                        .measured_on_this_host()
                };
                records.push(record(
                    format!("serving:abs:shard:{}:single", s.key),
                    s.single_ns,
                    1e9 / s.single_ns,
                ));
                records.push(record(
                    format!("serving:abs:shard:{}:sharded", s.key),
                    s.sharded_ns,
                    1e9 / s.sharded_ns,
                ));
                records.push(record(
                    format!("serving:gate:shard:{}", s.key),
                    1.0 / s.speedup(),
                    s.speedup(),
                ));
            }
            scalings
        };
        #[cfg(not(feature = "sharded"))]
        println!("shard scaling skipped (build with --features sharded to measure)");

        if let Some(path) = arg_value("--json") {
            let count = records.len();
            append_records(&path, records);
            println!("\nwrote {count} perf records to {path}");
        }

        #[cfg(feature = "sharded")]
        {
            let min_shard: f64 = arg_value("--min-shard-speedup")
                .map(|v| v.parse().unwrap_or_else(|e| panic!("bad --min-shard-speedup {v:?}: {e}")))
                .unwrap_or(0.0);
            if min_shard > 0.0 {
                let parallelism =
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
                let floor = min_shard * if quick { 0.5 } else { 1.0 };
                for s in &scalings {
                    if parallelism < s.chips {
                        println!(
                            "note: shard gate for {} skipped ({parallelism} hardware threads < {} chips)",
                            s.key, s.chips
                        );
                    } else if s.speedup() < floor {
                        eprintln!(
                            "serving_sweep: shard speedup {:.2}x on {} below required {floor:.2}x",
                            s.speedup(),
                            s.key
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        ExitCode::SUCCESS
    }
}
