//! **Extension**: open-loop serving sweep.
//!
//! Compiles each workload onto a 2-chip ring pipeline, then drives it
//! with open-loop request traffic instead of a fixed round count:
//! Poisson and bursty MMPP arrivals through the batching-policy zoo
//! (immediate dispatch, max-batch-size, batch-vs-deadline). Every
//! point reports the tail — p50/p99/p999 latency, queueing delay,
//! drops — and SLO goodput, and emits one `serving:*` perf-trajectory
//! record carrying **p99 latency in `makespan_ns`** and **goodput in
//! `throughput_ips`** (the gate's makespan direction — lower is
//! better — matches tail latency exactly).
//!
//! Arrival rates are calibrated against the pipeline's own simulated
//! round time (a fixed utilization, not a fixed req/s), so every
//! workload queues meaningfully without saturating. The calibration
//! and the arrival streams are seeded and simulated, so records are
//! byte-deterministic and the gate stays exact.
//!
//! Flags:
//!
//! * `--quick` — greedy partitioning, squeezenet only (the CI
//!   bench-smoke configuration);
//! * `--paper` — the paper's GA hyper-parameters;
//! * `--json <path>` — merge this run's `serving:*` records into
//!   `path` (`BENCH_ci.json` in CI).

use compass::{Strategy, SystemStrategy};
use compass_bench::{
    append_records, arg_value, has_flag, print_table, run_system_config, system_loads, BenchMode,
    BenchRecord,
};
use pim_arch::{ChipClass, ChipSpec, ScheduleMode, TimingMode, Topology};
use pim_sim::{
    BatchPolicy, ServingConfig, ServingReport, SystemSimulator, TrafficModel, TrafficSpec,
};

/// One traffic × batching point of the sweep.
struct SweepPoint {
    /// Stable suffix of the record name, e.g. `"poisson-immediate"`.
    key: &'static str,
    traffic: TrafficModel,
    policy: BatchPolicy,
}

/// The sweep's traffic/policy grid, rate-calibrated so the Poisson
/// points offer `util` of the pipeline's service capacity.
fn sweep_points(service_ns: f64, batch: usize) -> Vec<SweepPoint> {
    let util = 0.6;
    let rate_per_s = util / (service_ns * 1e-9);
    let poisson = TrafficModel::Poisson { rate_per_s };
    // Bursts at 3x service capacity against long calm valleys, same
    // order of mean load as the Poisson points.
    let mmpp = TrafficModel::Mmpp {
        calm_rate_per_s: 0.3 * rate_per_s / util,
        burst_rate_per_s: 3.0 * rate_per_s / util,
        mean_calm_s: 8.0 * service_ns * 1e-9,
        mean_burst_s: 2.0 * service_ns * 1e-9,
    };
    vec![
        SweepPoint { key: "poisson-immediate", traffic: poisson, policy: BatchPolicy::Immediate },
        SweepPoint { key: "poisson-batch", traffic: poisson, policy: BatchPolicy::MaxSize(batch) },
        SweepPoint {
            key: "poisson-deadline",
            traffic: poisson,
            policy: BatchPolicy::Deadline { max_size: batch, timeout_ns: service_ns / 2.0 },
        },
        SweepPoint { key: "mmpp-immediate", traffic: mmpp, policy: BatchPolicy::Immediate },
    ]
}

fn main() {
    let mode = BenchMode::from_args();
    let quick = has_flag("--quick");
    let strategy = if quick { Strategy::Greedy } else { Strategy::Compass };
    let nets: &[&str] = if quick { &["squeezenet"] } else { &["squeezenet", "resnet18"] };
    let requests = if quick { 96 } else { 256 };
    let batch = 4;
    let topology = Topology::ring(2);

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rows = Vec::new();
    for net in nets {
        // Compile once per network and reuse the planned loads for
        // every traffic point; the closed-loop 2-round run doubles as
        // the service-time probe for rate calibration.
        let planned = run_system_config(
            net,
            ChipClass::S,
            strategy,
            SystemStrategy::LayerPipeline,
            &topology,
            batch,
            2,
            mode,
            TimingMode::Analytic,
            ScheduleMode::Barrier,
        );
        let loads = system_loads(&planned.schedule);
        let service_ns = planned.report.makespan_ns / 2.0;
        let sim = SystemSimulator::new(ChipSpec::preset(ChipClass::S), topology.clone());
        for point in sweep_points(service_ns, batch) {
            let traffic = TrafficSpec::Synthetic { model: point.traffic, seed: 2025, requests };
            let config =
                ServingConfig::new(traffic).with_policy(point.policy).with_slo_ns(5.0 * service_ns);
            let label = format!("{net}-S-{topology}-{}", point.key);
            let report =
                sim.run_serving(&loads, &config).unwrap_or_else(|e| panic!("serving:{label}: {e}"));
            let serving = report.serving.expect("serving runs carry a serving section");
            records.push(BenchRecord {
                name: format!("serving:{label}:{strategy}"),
                makespan_ns: serving.p99_ns,
                throughput_ips: serving.goodput_rps,
                host_parallelism: None,
            });
            rows.push(summary_row(&label, &serving));
        }
    }

    print_table(
        &format!(
            "Open-loop serving sweep (ring:2 layer pipeline, batch {batch}, {requests} requests)"
        ),
        &[
            "Config",
            "Served",
            "Dropped",
            "Rounds",
            "p50 (us)",
            "p99 (us)",
            "p999 (us)",
            "Mean queue (us)",
            "Goodput (req/s)",
        ],
        &rows,
    );

    if let Some(path) = arg_value("--json") {
        let count = records.len();
        append_records(&path, records);
        println!("\nwrote {count} perf records to {path}");
    }
}

fn summary_row(label: &str, s: &ServingReport) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{}", s.requests),
        format!("{}", s.dropped),
        format!("{}", s.rounds),
        format!("{:.1}", s.p50_ns / 1000.0),
        format!("{:.1}", s.p99_ns / 1000.0),
        format!("{:.1}", s.p999_ns / 1000.0),
        format!("{:.1}", s.mean_queue_ns / 1000.0),
        format!("{:.1}", s.goodput_rps),
    ]
}
