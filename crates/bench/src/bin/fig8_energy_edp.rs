//! Regenerates **Fig. 8** (inference energy and EDP per sample,
//! "ResNet18-S" across batch sizes).

use compass_bench::{print_table, run_config, BenchMode, BATCHES, STRATEGIES};
use pim_arch::ChipClass;

fn main() {
    let mode = BenchMode::from_args();
    let mut energy_rows = Vec::new();
    let mut edp_rows = Vec::new();
    let mut edp_ratio_greedy = Vec::new();
    let mut edp_ratio_layerwise = Vec::new();

    for batch in BATCHES {
        let mut energies = vec![format!("ResNet18-S-{batch}")];
        let mut edps = vec![format!("ResNet18-S-{batch}")];
        let mut by_strategy = Vec::new();
        for strategy in STRATEGIES {
            let r = run_config("resnet18", ChipClass::S, strategy, batch, mode);
            energies.push(format!("{:.1}", r.simulated.energy_per_inference_uj()));
            edps.push(format!("{:.2}", r.simulated.edp_per_inference()));
            by_strategy.push(r.simulated.edp_per_inference());
        }
        // STRATEGIES order: greedy, layerwise, compass.
        edp_ratio_greedy.push(by_strategy[0] / by_strategy[2]);
        edp_ratio_layerwise.push(by_strategy[1] / by_strategy[2]);
        energy_rows.push(energies);
        edp_rows.push(edps);
    }

    print_table(
        "Fig. 8 (left): inference energy per sample (uJ)",
        &["Config", "Greedy", "Layerwise", "COMPASS"],
        &energy_rows,
    );
    print_table(
        "Fig. 8 (right): EDP per sample (uJ x ms)",
        &["Config", "Greedy", "Layerwise", "COMPASS"],
        &edp_rows,
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nCOMPASS EDP advantage: {:.2}x vs greedy, {:.2}x vs layerwise (average over batches)",
        avg(&edp_ratio_greedy),
        avg(&edp_ratio_layerwise)
    );
    println!("paper reference: 1.28x vs greedy, 2.08x vs layerwise on average");
}
