//! Regenerates **Table II** (network model sizes and compiler support).
//!
//! "Prev." (PUMA/PIMCOMP-style compilers) supports a network only if
//! it fits entirely on chip — i.e. a single valid partition covering
//! all units exists. COMPASS ("Ours") supports everything it can
//! decompose.

use compass::{decompose, ValidityMap};
use compass_bench::{network, print_table, NETWORKS};
use pim_arch::{ChipClass, ChipSpec};
use pim_model::stats::NetworkStats;

fn main() {
    // Support is judged against the largest chip (Chip-L), matching
    // the paper's "resource-constrained chips" framing.
    let chip = ChipSpec::preset(ChipClass::L);
    let mut rows = Vec::new();
    for name in NETWORKS {
        let net = network(name);
        let stats = NetworkStats::of(&net, chip.precision);
        let seq = decompose(&net, &chip);
        let validity = ValidityMap::build(&seq, &chip);
        let prev = validity.max_end(0) == validity.len();
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", stats.linear_weight_mib()),
            format!("{:.3}", stats.conv_weight_mib()),
            format!("{:.3}", stats.total_weight_mib()),
            if prev { "yes".into() } else { "no".into() },
            "yes".into(),
        ]);
    }
    print_table(
        "Table II: network models and compiler support (4-bit weights)",
        &["Network", "Linear (MiB)", "Conv (MiB)", "Total (MiB)", "Prev.", "Ours"],
        &rows,
    );
    println!(
        "\npaper reference: VGG16 58.95+7.02=65.97 (prev no), ResNet18 0.244+5.324=5.569 (prev no), SqueezeNet 0.587 (prev yes)"
    );
}
