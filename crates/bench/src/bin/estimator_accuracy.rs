//! **Extension**: estimator-vs-simulator fidelity check.
//!
//! The GA optimizes against the fast analytical estimator (as the
//! paper optimizes against its enhanced PIMCOMP estimator); the
//! figures come from the event-driven simulator. This binary
//! quantifies whether the proxy is trustworthy: across many random
//! partitionings it reports the estimate/simulation latency ratio and
//! — the property the GA actually needs — the *rank correlation*
//! between the two.

use compass::plan::GroupPlan;
use compass::replication::optimize_group;
use compass::scheduler::{schedule_group, SchedulerOptions};
use compass::{decompose, estimate::Estimator, PartitionGroup, ValidityMap};
use compass_bench::network;
use pim_arch::{ChipClass, ChipSpec};
use pim_sim::ChipSimulator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let chip = ChipSpec::preset(ChipClass::S);
    let net = network("resnet18");
    let batch = 8;
    let samples = 40;
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    let estimator = Estimator::new(&chip);
    let simulator = ChipSimulator::new(chip.clone()).with_dram_replay(false);
    let mut rng = StdRng::seed_from_u64(99);

    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let group = PartitionGroup::random(&mut rng, &validity);
        let mut plans = GroupPlan::build(&net, &seq, &group);
        optimize_group(&mut plans, &chip);
        let est = estimator.estimate_group(&plans, batch).batch_latency_ns;
        let options = SchedulerOptions { batch, chunks_per_sample: 4, ..Default::default() };
        let programs = schedule_group(&net, plans.plans(), &chip, &options);
        let sim = simulator.run(&programs, batch).expect("simulates").makespan_ns;
        pairs.push((est, sim));
    }

    let ratios: Vec<f64> = pairs.iter().map(|(e, s)| s / e).collect();
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let spearman = rank_correlation(&pairs);
    println!("estimator fidelity on ResNet18-S-{batch} over {samples} random partitionings:");
    println!(
        "  sim/estimate latency ratio: mean {:.2} (min {:.2}, max {:.2})",
        mean_ratio,
        ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        ratios.iter().cloned().fold(0.0, f64::max)
    );
    println!("  Spearman rank correlation: {spearman:.3}");
    println!(
        "\ninterpretation: the estimator may be biased in absolute terms (the GA does not\ncare) but must *rank* candidate partitionings like the simulator does — a rank\ncorrelation near 1.0 validates using it as the GA fitness proxy."
    );
    println!(
        "\nknown gap: the estimator idealizes core pipelining; the simulator's in-order\ncores suffer head-of-line blocking when one core hosts distant pipeline stages,\nwhich random partitionings provoke far more than optimized ones. The decisive\ncheck is that the GA's winner beats both baselines under the *simulator*\n(tests/end_to_end.rs::compass_beats_baselines_in_simulation_resnet18_m_16)."
    );
    if spearman < 0.2 {
        println!("WARNING: very weak correlation — the GA may be optimizing the wrong proxy");
    }
}

/// Spearman rank correlation of (estimate, simulation) pairs.
fn rank_correlation(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len();
    let rank = |values: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let mut ranks = vec![0.0; n];
        for (r, &i) in idx.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let ra = rank(pairs.iter().map(|p| p.0).collect());
    let rb = rank(pairs.iter().map(|p| p.1).collect());
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    num / (da.sqrt() * db.sqrt()).max(1e-12)
}
