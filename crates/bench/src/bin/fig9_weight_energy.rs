//! Regenerates **Fig. 9** (energy of weight writes and loads relative
//! to MVMUL, ResNet18 across chips and batch sizes).
//!
//! Plots `(MVMUL + weight write + weight load) / MVMUL` per
//! configuration, matching the paper's normalization: MVMUL alone is
//! 1.0, batch 1 sits near 4x, batch 16 amortizes toward ~1.2x, and
//! bigger chips (more replication) sit slightly higher.

use compass::Strategy;
use compass_bench::{print_table, run_config, BenchMode, BATCHES};
use pim_arch::ChipClass;

fn main() {
    let mode = BenchMode::from_args();
    let mut rows = Vec::new();
    for batch in BATCHES {
        for class in [ChipClass::L, ChipClass::M, ChipClass::S] {
            let r = run_config("resnet18", class, Strategy::Compass, batch, mode);
            let e = &r.simulated.energy;
            let total_rel = 1.0 + e.replacement_ratio();
            rows.push(vec![
                format!("{class}-{batch}"),
                format!("{:.1}", e.mvm_nj / 1000.0),
                format!("{:.1}", e.weight_write_nj / 1000.0),
                format!("{:.1}", e.weight_load_nj / 1000.0),
                format!("x{:.2}", total_rel),
            ]);
        }
    }
    print_table(
        "Fig. 9: weight write/load energy relative to MVMUL (ResNet18, COMPASS)",
        &["Config", "MVMUL (uJ)", "Write (uJ)", "Load (uJ)", "Total rel. MVMUL"],
        &rows,
    );
    println!(
        "\npaper reference: L-1 x4.03 ... S-1 x3.65 down to L-16 x1.18 ... S-16 x1.18; batch 16 sufficiently amortizes replacement"
    );
}
