//! Criterion micro-benchmarks for the simulation substrates: the
//! LPDDR3 DRAM model, the event-driven chip simulator, and the
//! analytical estimator that the GA calls in its inner loop.

use compass::estimate::Estimator;
use compass::plan::GroupPlan;
use compass::replication::optimize_group;
use compass::{baselines, decompose, CompileOptions, Compiler, GaParams, Strategy, ValidityMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_arch::ChipSpec;
use pim_dram::{DramConfig, DramSimulator, Request, RequestKind};
use pim_model::zoo;
use pim_sim::ChipSimulator;
use std::hint::black_box;

fn bench_dram_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_sequential_read");
    for kib in [64usize, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(kib), &kib, |b, &kib| {
            b.iter(|| {
                let mut sim = DramSimulator::new(DramConfig::lpddr3_1600());
                sim.enqueue(Request::new(0, 0, RequestKind::Read, kib * 1024));
                sim.run_to_completion()
            })
        });
    }
    group.finish();
}

fn bench_dram_random(c: &mut Criterion) {
    c.bench_function("dram_random_reads/1024x64B", |b| {
        b.iter(|| {
            let mut sim = DramSimulator::new(DramConfig::lpddr3_1600());
            let mut state = 0x9e3779b9u64;
            for _ in 0..1024 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let addr = (state % (256 << 20)) & !63;
                sim.enqueue(Request::new(0, addr, RequestKind::Read, 64));
            }
            sim.run_to_completion()
        })
    });
}

fn bench_chip_simulator(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let compiled = Compiler::new(chip.clone())
        .compile(
            &zoo::resnet18(),
            &CompileOptions::new()
                .with_strategy(Strategy::Greedy)
                .with_batch_size(8)
                .with_ga(GaParams::fast())
                .with_seed(1),
        )
        .expect("compiles");
    let mut group = c.benchmark_group("chip_simulator/resnet18-S-8");
    group.bench_function("with_dram_replay", |b| {
        let sim = ChipSimulator::new(chip.clone());
        b.iter(|| sim.run(black_box(compiled.programs()), 8).unwrap().makespan_ns)
    });
    group.bench_function("timing_only", |b| {
        let sim = ChipSimulator::new(chip.clone()).with_dram_replay(false);
        b.iter(|| sim.run(black_box(compiled.programs()), 8).unwrap().makespan_ns)
    });
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    let group = baselines::greedy(&validity);
    let mut plans = GroupPlan::build(&net, &seq, &group);
    optimize_group(&mut plans, &chip);
    c.bench_function("estimator/resnet18-S-8", |b| {
        let estimator = Estimator::new(&chip);
        b.iter(|| estimator.estimate_group(black_box(&plans), 8).batch_latency_ns)
    });
}

criterion_group!(
    benches,
    bench_dram_sequential,
    bench_dram_random,
    bench_chip_simulator,
    bench_estimator,
);
criterion_main!(benches);
