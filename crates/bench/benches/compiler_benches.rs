//! Criterion micro-benchmarks for the compiler stack: decomposition,
//! validity-map construction, plan building + replication, full
//! fitness evaluation, GA generations, and instruction scheduling.

use compass::fitness::{FitnessContext, FitnessKind};
use compass::plan::GroupPlan;
use compass::replication::optimize_group;
use compass::scheduler::{schedule_group, SchedulerOptions};
use compass::{baselines, decompose, ga, GaParams, PartitionGroup, ValidityMap};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_arch::ChipSpec;
use pim_model::zoo;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let mut group = c.benchmark_group("decompose");
    for (name, net) in
        [("squeezenet", zoo::squeezenet()), ("resnet18", zoo::resnet18()), ("vgg16", zoo::vgg16())]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            b.iter(|| decompose(black_box(net), black_box(&chip)))
        });
    }
    group.finish();
}

fn bench_validity_map(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let mut group = c.benchmark_group("validity_map");
    for (name, net) in [("resnet18", zoo::resnet18()), ("vgg16", zoo::vgg16())] {
        let seq = decompose(&net, &chip);
        group.bench_with_input(BenchmarkId::from_parameter(name), &seq, |b, seq| {
            b.iter(|| ValidityMap::build(black_box(seq), black_box(&chip)))
        });
    }
    group.finish();
}

fn bench_plan_and_replicate(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    let mut rng = StdRng::seed_from_u64(1);
    let group = PartitionGroup::random(&mut rng, &validity);
    c.bench_function("plan_build_and_replication/resnet18-S", |b| {
        b.iter(|| {
            let mut plans = GroupPlan::build(black_box(&net), black_box(&seq), black_box(&group));
            optimize_group(&mut plans, &chip);
            plans
        })
    });
}

fn bench_fitness_evaluation(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    c.bench_function("fitness_eval_uncached/resnet18-S-8", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            // A fresh context per iteration measures the uncached path.
            let ctx = FitnessContext::new(&net, &seq, &validity, &chip, 8, FitnessKind::Latency);
            let group = PartitionGroup::random(&mut rng, &validity);
            ctx.evaluate(black_box(&group)).pgf
        })
    });
}

fn bench_ga_generation(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    c.bench_function("ga_run/resnet18-S-8 (pop 12, 3 gens)", |b| {
        b.iter(|| {
            let ctx = FitnessContext::new(&net, &seq, &validity, &chip, 8, FitnessKind::Latency);
            let params = GaParams {
                population: 12,
                generations: 3,
                n_sel: 4,
                n_mut: 8,
                early_stop_patience: 0,
                ..GaParams::fast()
            };
            let mut rng = StdRng::seed_from_u64(3);
            ga::run(&ctx, &params, &mut rng).0.pgf
        })
    });
}

fn bench_baselines(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let net = zoo::vgg16();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    c.bench_function("baseline_greedy/vgg16-S", |b| {
        b.iter(|| baselines::greedy(black_box(&validity)))
    });
    c.bench_function("baseline_layerwise/vgg16-S", |b| {
        b.iter(|| baselines::layerwise(black_box(&seq), black_box(&validity)))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let chip = ChipSpec::chip_s();
    let net = zoo::resnet18();
    let seq = decompose(&net, &chip);
    let validity = ValidityMap::build(&seq, &chip);
    let group = baselines::greedy(&validity);
    let mut plans = GroupPlan::build(&net, &seq, &group);
    optimize_group(&mut plans, &chip);
    let options = SchedulerOptions { batch: 8, chunks_per_sample: 4, ..Default::default() };
    c.bench_function("schedule_group/resnet18-S-8", |b| {
        b.iter(|| schedule_group(black_box(&net), black_box(plans.plans()), &chip, &options))
    });
}

criterion_group!(
    benches,
    bench_decompose,
    bench_validity_map,
    bench_plan_and_replicate,
    bench_fitness_evaluation,
    bench_ga_generation,
    bench_baselines,
    bench_scheduler,
);
criterion_main!(benches);
