//! Chip-level energy accounting.
//!
//! Follows the paper's methodology (§IV-A1): crossbar write energy from
//! the 16 nm SRAM-CIM prototype, MVM energy from ADC + wordline-scaled
//! array power, per-core component powers from Table I, and DRAM energy
//! from the memory interface model (detailed timing in `pim-dram`).

use crate::chip::ChipSpec;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Energy totals in nanojoules, broken down by source.
///
/// The categories mirror Fig. 9 of the paper (MVMUL vs weight write vs
/// weight load) plus the remaining contributors needed for Fig. 8's
/// total-energy and EDP results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct PowerBreakdown {
    /// Matrix-vector multiplications in the crossbars.
    pub mvm_nj: f64,
    /// Crossbar cell writes during weight replacement.
    pub weight_write_nj: f64,
    /// DRAM reads streaming weights in (weight load).
    pub weight_load_nj: f64,
    /// DRAM traffic for intermediate activations (partition entry
    /// loads and exit stores).
    pub activation_dram_nj: f64,
    /// On-chip bus transfers (inter-core send/recv).
    pub interconnect_nj: f64,
    /// VFU vector operations.
    pub vfu_nj: f64,
    /// Static/background energy (chip power × makespan).
    pub static_nj: f64,
}

impl PowerBreakdown {
    /// Creates an all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.mvm_nj
            + self.weight_write_nj
            + self.weight_load_nj
            + self.activation_dram_nj
            + self.interconnect_nj
            + self.vfu_nj
            + self.static_nj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_nj() / 1000.0
    }

    /// Weight replacement overhead (write + load) relative to MVM
    /// energy — the y-axis of the paper's Fig. 9 is
    /// `1 + replacement_ratio` (total of MVM + write + load, normalized
    /// to MVM).
    pub fn replacement_ratio(&self) -> f64 {
        if self.mvm_nj == 0.0 {
            return 0.0;
        }
        (self.weight_write_nj + self.weight_load_nj) / self.mvm_nj
    }
}

impl Add for PowerBreakdown {
    type Output = PowerBreakdown;

    fn add(self, rhs: PowerBreakdown) -> PowerBreakdown {
        PowerBreakdown {
            mvm_nj: self.mvm_nj + rhs.mvm_nj,
            weight_write_nj: self.weight_write_nj + rhs.weight_write_nj,
            weight_load_nj: self.weight_load_nj + rhs.weight_load_nj,
            activation_dram_nj: self.activation_dram_nj + rhs.activation_dram_nj,
            interconnect_nj: self.interconnect_nj + rhs.interconnect_nj,
            vfu_nj: self.vfu_nj + rhs.vfu_nj,
            static_nj: self.static_nj + rhs.static_nj,
        }
    }
}

impl AddAssign for PowerBreakdown {
    fn add_assign(&mut self, rhs: PowerBreakdown) {
        *self = *self + rhs;
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mvm {:.1} nJ, wr {:.1} nJ, ld {:.1} nJ, act {:.1} nJ, bus {:.1} nJ, vfu {:.1} nJ, static {:.1} nJ (total {:.2} uJ)",
            self.mvm_nj,
            self.weight_write_nj,
            self.weight_load_nj,
            self.activation_dram_nj,
            self.interconnect_nj,
            self.vfu_nj,
            self.static_nj,
            self.total_uj()
        )
    }
}

/// Converts event counts into energies for a given chip.
///
/// # Example
///
/// ```
/// use pim_arch::{ChipSpec, EnergyModel};
///
/// let chip = ChipSpec::chip_s();
/// let model = EnergyModel::new(&chip);
/// // 1000 crossbar MVM activations at 420 pJ = 420 nJ.
/// assert!((model.mvm_energy_nj(1000) - 420.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    mvm_pj_per_activation: f64,
    write_pj_per_bit: f64,
    dram_pj_per_bit: f64,
    bus_pj_per_byte: f64,
    vfu_pj_per_op: f64,
    chip_power_w: f64,
}

impl EnergyModel {
    /// Derives an energy model from a chip specification.
    pub fn new(chip: &ChipSpec) -> Self {
        Self {
            mvm_pj_per_activation: chip.crossbar.mvm_energy_pj,
            write_pj_per_bit: chip.crossbar.cell_write_energy_pj,
            dram_pj_per_bit: chip.memory.energy_pj_per_bit,
            bus_pj_per_byte: chip.interconnect.energy_pj_per_byte,
            // One VFU ALU op at 16 nm: ~0.2 pJ.
            vfu_pj_per_op: 0.2,
            chip_power_w: chip.chip_power_w,
        }
    }

    /// Energy of `activations` crossbar MVM activations, nJ.
    pub fn mvm_energy_nj(&self, activations: usize) -> f64 {
        activations as f64 * self.mvm_pj_per_activation / 1000.0
    }

    /// Energy to write `bits` crossbar cells, nJ.
    pub fn weight_write_energy_nj(&self, bits: usize) -> f64 {
        bits as f64 * self.write_pj_per_bit / 1000.0
    }

    /// Energy to move `bits` through DRAM (read or write), nJ.
    pub fn dram_energy_nj(&self, bits: usize) -> f64 {
        bits as f64 * self.dram_pj_per_bit / 1000.0
    }

    /// Energy to move `bytes` across the on-chip bus, nJ.
    pub fn bus_energy_nj(&self, bytes: usize) -> f64 {
        bytes as f64 * self.bus_pj_per_byte / 1000.0
    }

    /// Energy of `ops` VFU element operations, nJ.
    pub fn vfu_energy_nj(&self, ops: usize) -> f64 {
        ops as f64 * self.vfu_pj_per_op / 1000.0
    }

    /// Static/background energy over a `ns` makespan, nJ.
    pub fn static_energy_nj(&self, ns: f64) -> f64 {
        // P[W] x t[ns] = energy in nJ directly.
        self.chip_power_w * ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(&ChipSpec::chip_s())
    }

    #[test]
    fn mvm_energy_scales() {
        let m = model();
        // 10 activations x 420 pJ = 4.2 nJ.
        assert!((m.mvm_energy_nj(10) - 4.2).abs() < 1e-12);
        assert_eq!(m.mvm_energy_nj(0), 0.0);
    }

    #[test]
    fn write_and_dram_energy() {
        let m = model();
        // 1e6 bits * 0.5 pJ = 500 nJ.
        assert!((m.weight_write_energy_nj(1_000_000) - 500.0).abs() < 1e-9);
        // 1e6 bits * 2 pJ = 2000 nJ.
        assert!((m.dram_energy_nj(1_000_000) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn static_energy_is_power_times_time() {
        let m = model();
        // 1.57 W x 1000 ns = 1570 nJ.
        assert!((m.static_energy_nj(1000.0) - 1570.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals_and_ratio() {
        let b = PowerBreakdown {
            mvm_nj: 100.0,
            weight_write_nj: 50.0,
            weight_load_nj: 250.0,
            activation_dram_nj: 10.0,
            interconnect_nj: 5.0,
            vfu_nj: 5.0,
            static_nj: 80.0,
        };
        assert!((b.total_nj() - 500.0).abs() < 1e-12);
        assert!((b.replacement_ratio() - 3.0).abs() < 1e-12);
        let sum = b + b;
        assert!((sum.total_nj() - 1000.0).abs() < 1e-12);
        let mut acc = PowerBreakdown::new();
        acc += b;
        assert_eq!(acc, b);
    }

    #[test]
    fn zero_mvm_ratio_is_zero() {
        assert_eq!(PowerBreakdown::new().replacement_ratio(), 0.0);
    }
}
