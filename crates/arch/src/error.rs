//! Configuration validation errors.

use std::error::Error;
use std::fmt;

/// A hardware configuration failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfigError {
    detail: String,
}

impl InvalidConfigError {
    /// Creates an error with a human-readable description.
    pub fn new(detail: impl Into<String>) -> Self {
        Self { detail: detail.into() }
    }

    /// The description of what failed validation.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for InvalidConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid hardware configuration: {}", self.detail)
    }
}

impl Error for InvalidConfigError {}
