//! Crossbar CIM macro specification.

use crate::WeightPrecision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory technology of the CIM cell.
///
/// The paper evaluates an SRAM-based design but argues (§V-B) that the
/// approach extends to eNVM technologies whose write characteristics
/// differ; the presets below expose exactly those differences so the
/// compiler can optimize weight replacement per technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CellTechnology {
    /// 16 nm SRAM (Jia et al., ISSCC'21) — the paper's operating point.
    #[default]
    Sram,
    /// ReRAM — limited write endurance, moderate write energy.
    Reram,
    /// MRAM — high write latency and energy.
    Mram,
}

impl fmt::Display for CellTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellTechnology::Sram => write!(f, "SRAM"),
            CellTechnology::Reram => write!(f, "ReRAM"),
            CellTechnology::Mram => write!(f, "MRAM"),
        }
    }
}

/// One crossbar CIM macro: a `rows × cols` array of single-bit cells
/// that performs matrix-vector multiplication in place.
///
/// Multi-bit weights are bit-sliced across adjacent columns, so a
/// `256 × 256` array stores `256 × 64` 4-bit weights. The capacity
/// figures of the paper's Table I follow this convention
/// (16 cores × 9 crossbars × 8 KiB = 1.125 MiB for Chip-S).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarSpec {
    /// Cell technology (affects presets only; all parameters are
    /// explicit fields).
    pub technology: CellTechnology,
    /// Wordlines (input rows).
    pub rows: usize,
    /// Bitlines (single-bit cell columns).
    pub cols: usize,
    /// Latency of one matrix-vector multiplication through the array,
    /// including DAC/ADC conversion, in nanoseconds.
    pub mvm_latency_ns: f64,
    /// Energy of one MVM activation of this crossbar in picojoules
    /// (ADC-dominated; scaled to the number of wordlines per §IV-A1).
    pub mvm_energy_pj: f64,
    /// Latency to write one row of cells, in nanoseconds.
    pub row_write_latency_ns: f64,
    /// Energy to write one cell (one bit), in picojoules.
    pub cell_write_energy_pj: f64,
}

impl CrossbarSpec {
    /// The paper's crossbar: 256×256, parameters derived from the 16 nm
    /// SRAM-CIM prototype of Jia et al. (ISSCC'21). Write power is taken
    /// directly from the prototype; inference energy adds the ADC power
    /// and wordline-scaled array power.
    pub fn sram_16nm() -> Self {
        Self {
            technology: CellTechnology::Sram,
            rows: 256,
            cols: 256,
            // ~100 ns per MVM wave (PUMA-class read+ADC pipeline).
            mvm_latency_ns: 100.0,
            // 256 bitline conversions/activation, ~1.5 pJ each, plus
            // array read and wordline-scaled peripheral energy
            // -> ~420 pJ per crossbar activation.
            mvm_energy_pj: 420.0,
            // SRAM row write: one cycle-class operation per row.
            row_write_latency_ns: 2.0,
            // SRAM cell write energy.
            cell_write_energy_pj: 0.5,
        }
    }

    /// A ReRAM crossbar preset (same geometry, slower/costlier writes,
    /// cheaper reads). Used by the technology-sensitivity extension
    /// benches, exercising the §V-B discussion.
    pub fn reram() -> Self {
        Self {
            technology: CellTechnology::Reram,
            rows: 256,
            cols: 256,
            mvm_latency_ns: 110.0,
            mvm_energy_pj: 220.0,
            row_write_latency_ns: 50.0,
            cell_write_energy_pj: 10.0,
        }
    }

    /// An MRAM crossbar preset (high write latency and energy, per
    /// §V-B).
    pub fn mram() -> Self {
        Self {
            technology: CellTechnology::Mram,
            rows: 256,
            cols: 256,
            mvm_latency_ns: 105.0,
            mvm_energy_pj: 260.0,
            row_write_latency_ns: 20.0,
            cell_write_energy_pj: 4.0,
        }
    }

    /// Raw storage capacity in bits (one bit per cell).
    pub const fn bits(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of weight columns available at `precision` (bit-slicing
    /// spreads each weight across `precision.bits()` adjacent cells).
    pub fn weight_cols(&self, precision: WeightPrecision) -> usize {
        self.cols / precision.bits()
    }

    /// Weights storable in one crossbar at `precision`.
    pub fn weight_capacity(&self, precision: WeightPrecision) -> usize {
        self.rows * self.weight_cols(precision)
    }

    /// Latency to (re)write the full array, in nanoseconds.
    pub fn full_write_latency_ns(&self) -> f64 {
        self.rows as f64 * self.row_write_latency_ns
    }

    /// Energy to write `bits` cells, in picojoules.
    pub fn write_energy_pj(&self, bits: usize) -> f64 {
        bits as f64 * self.cell_write_energy_pj
    }
}

impl Default for CrossbarSpec {
    fn default() -> Self {
        Self::sram_16nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_geometry_matches_paper() {
        let xbar = CrossbarSpec::sram_16nm();
        assert_eq!(xbar.bits(), 256 * 256);
        assert_eq!(xbar.bits() / 8, 8 * 1024); // 8 KiB per crossbar
        assert_eq!(xbar.weight_cols(WeightPrecision::Int4), 64);
        assert_eq!(xbar.weight_capacity(WeightPrecision::Int4), 256 * 64);
    }

    #[test]
    fn weight_cols_scale_with_precision() {
        let xbar = CrossbarSpec::sram_16nm();
        assert_eq!(xbar.weight_cols(WeightPrecision::Int1), 256);
        assert_eq!(xbar.weight_cols(WeightPrecision::Int8), 32);
    }

    #[test]
    fn technology_presets_order_write_costs() {
        let sram = CrossbarSpec::sram_16nm();
        let reram = CrossbarSpec::reram();
        let mram = CrossbarSpec::mram();
        assert!(sram.cell_write_energy_pj < mram.cell_write_energy_pj);
        assert!(mram.cell_write_energy_pj < reram.cell_write_energy_pj);
        assert!(sram.row_write_latency_ns < mram.row_write_latency_ns);
    }

    #[test]
    fn full_write_latency() {
        let xbar = CrossbarSpec::sram_16nm();
        assert!((xbar.full_write_latency_ns() - 512.0).abs() < 1e-9);
    }
}
