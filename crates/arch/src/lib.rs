//! # pim-arch — crossbar/core/chip hardware model for PIM accelerators
//!
//! Implements the abstract in-memory DNN accelerator template of the
//! COMPASS paper (§II, Fig. 1): a chip of PIM cores on a shared bus with
//! a global memory; each core holds a matrix unit of crossbar CIM
//! macros, vector functional units (VFUs), local memory, and a control
//! unit. The chip presets reproduce Table I of the paper exactly
//! (Chip-S/M/L capacities of 1.125 / 2.0 / 4.5 MiB).
//!
//! The energy model follows the paper's §IV-A1 methodology: crossbar
//! write energy taken from the 16 nm SRAM-CIM prototype (Jia et al.,
//! ISSCC'21), MVM (inference) energy dominated by ADC conversions and
//! scaled with activated wordlines, component powers from PIMCOMP
//! scaled to 16 nm, and DRAM energy delegated to the `pim-dram` crate.
//!
//! # Example
//!
//! ```
//! use pim_arch::{ChipSpec, WeightPrecision};
//!
//! let chip = ChipSpec::chip_s();
//! assert_eq!(chip.cores, 16);
//! assert!((chip.capacity_mib() - 1.125).abs() < 1e-9);
//! // One 256x256 crossbar holds 256 x 64 4-bit weights.
//! assert_eq!(chip.crossbar.weight_cols(WeightPrecision::Int4), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod crossbar;
pub mod energy;
pub mod mapping;
pub mod schedule;
pub mod timing;
pub mod topology;

mod error;

pub use chip::{ChipClass, ChipSpec, CoreSpec, InterconnectSpec, MemorySpec};
pub use crossbar::{CellTechnology, CrossbarSpec};
pub use energy::{EnergyModel, PowerBreakdown};
pub use error::InvalidConfigError;
pub use mapping::{crossbars_for_matrix, MatrixFootprint};
pub use schedule::ScheduleMode;
pub use timing::TimingMode;
pub use topology::{Link, LinkSpec, Topology};

/// Re-export of the weight precision type shared with `pim-model`.
pub use pim_model::Precision as WeightPrecision;
