//! Core and chip specifications, including the paper's Table I presets.

use crate::crossbar::CrossbarSpec;
use crate::error::InvalidConfigError;
use crate::WeightPrecision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three chip configurations (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipClass {
    /// 16 cores × 9 crossbars = 1.125 MiB.
    S,
    /// 16 cores × 16 crossbars = 2.0 MiB.
    M,
    /// 36 cores × 16 crossbars = 4.5 MiB.
    L,
}

impl ChipClass {
    /// All classes in ascending capacity order.
    pub const ALL: [ChipClass; 3] = [ChipClass::S, ChipClass::M, ChipClass::L];
}

impl fmt::Display for ChipClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipClass::S => write!(f, "S"),
            ChipClass::M => write!(f, "M"),
            ChipClass::L => write!(f, "L"),
        }
    }
}

/// Per-core resources (matrix unit aside, which is described by
/// [`ChipSpec::crossbars_per_core`] × [`ChipSpec::crossbar`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// Vector functional units per core (Table I: 12).
    pub vfu_count: usize,
    /// Elements each VFU processes per cycle.
    pub vfu_lanes: usize,
    /// Local scratch memory per core in bytes (Table I: 64 KiB).
    pub local_memory_bytes: usize,
    /// Core clock frequency in GHz.
    pub clock_ghz: f64,
    /// VFU power per core in milliwatts (Table I: 22.8 mW).
    pub vfu_power_mw: f64,
    /// Local memory power per core in milliwatts (Table I: 18.0 mW).
    pub local_memory_power_mw: f64,
    /// Control unit power per core in milliwatts (Table I: 8.0 mW).
    pub control_power_mw: f64,
}

impl CoreSpec {
    /// The paper's core: 12 VFUs, 64 KiB local memory, 1 GHz, powers
    /// from Table I (PIMCOMP parameters scaled to 16 nm).
    pub fn paper() -> Self {
        Self {
            vfu_count: 12,
            vfu_lanes: 1,
            local_memory_bytes: 64 * 1024,
            clock_ghz: 1.0,
            vfu_power_mw: 22.8,
            local_memory_power_mw: 18.0,
            control_power_mw: 8.0,
        }
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Elements the VFU array processes per nanosecond.
    pub fn vfu_throughput_per_ns(&self) -> f64 {
        self.vfu_count as f64 * self.vfu_lanes as f64 * self.clock_ghz
    }

    /// Static power per core in milliwatts (VFU + local memory +
    /// control).
    pub fn static_power_mw(&self) -> f64 {
        self.vfu_power_mw + self.local_memory_power_mw + self.control_power_mw
    }
}

impl Default for CoreSpec {
    fn default() -> Self {
        Self::paper()
    }
}

/// On-chip interconnect (the paper uses a shared bus).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Aggregate bus bandwidth in bytes per nanosecond (GB/s).
    pub bandwidth_gbps: f64,
    /// Fixed per-transfer arbitration latency in nanoseconds.
    pub arbitration_ns: f64,
    /// Energy per byte moved across the bus, in picojoules.
    pub energy_pj_per_byte: f64,
}

impl InterconnectSpec {
    /// A 32 GB/s shared bus with 4 ns arbitration.
    pub fn bus() -> Self {
        Self { bandwidth_gbps: 32.0, arbitration_ns: 4.0, energy_pj_per_byte: 1.0 }
    }

    /// Time to move `bytes` across the bus (excluding arbitration).
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_gbps
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        Self::bus()
    }
}

/// Global (off-chip) memory interface summary as seen by the chip.
///
/// Detailed timing comes from `pim-dram`; the compiler's analytical
/// estimator uses this coarse view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Peak DRAM bandwidth in bytes per nanosecond (GB/s).
    pub bandwidth_gbps: f64,
    /// Typical access latency for a first access in nanoseconds.
    pub access_latency_ns: f64,
    /// Energy per bit transferred, in picojoules (device + IO +
    /// controller, LPDDR3 class).
    pub energy_pj_per_bit: f64,
}

impl MemorySpec {
    /// LPDDR3-1600 x32: 6.4 GB/s, ~80 ns first-access latency.
    pub fn lpddr3() -> Self {
        Self { bandwidth_gbps: 6.4, access_latency_ns: 80.0, energy_pj_per_bit: 2.0 }
    }
}

impl Default for MemorySpec {
    fn default() -> Self {
        Self::lpddr3()
    }
}

/// A full chip: cores, crossbars per core, interconnect, global memory
/// interface, and the weight precision the arrays are operated at.
///
/// # Example
///
/// ```
/// use pim_arch::ChipSpec;
///
/// let chips = [ChipSpec::chip_s(), ChipSpec::chip_m(), ChipSpec::chip_l()];
/// let mibs: Vec<f64> = chips.iter().map(|c| c.capacity_mib()).collect();
/// assert_eq!(mibs, vec![1.125, 2.0, 4.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Human-readable configuration name (e.g. `"S"`).
    pub name: String,
    /// Number of PIM cores.
    pub cores: usize,
    /// Crossbar macros per core.
    pub crossbars_per_core: usize,
    /// Crossbar macro specification.
    pub crossbar: CrossbarSpec,
    /// Per-core resources.
    pub core: CoreSpec,
    /// On-chip interconnect.
    pub interconnect: InterconnectSpec,
    /// Global memory interface.
    pub memory: MemorySpec,
    /// Weight precision the arrays operate at (paper: 4-bit).
    pub precision: WeightPrecision,
    /// Total chip power budget in watts (Table I), used for
    /// static-energy accounting.
    pub chip_power_w: f64,
}

impl ChipSpec {
    /// Chip-S: 16 cores × 9 crossbars, 1.125 MiB, 1.57 W (Table I).
    pub fn chip_s() -> Self {
        Self::paper_config("S", 16, 9, 1.57)
    }

    /// Chip-M: 16 cores × 16 crossbars, 2.0 MiB, 2.80 W (Table I).
    pub fn chip_m() -> Self {
        Self::paper_config("M", 16, 16, 2.80)
    }

    /// Chip-L: 36 cores × 16 crossbars, 4.5 MiB, 6.30 W (Table I).
    pub fn chip_l() -> Self {
        Self::paper_config("L", 36, 16, 6.30)
    }

    /// Preset lookup by [`ChipClass`].
    pub fn preset(class: ChipClass) -> Self {
        match class {
            ChipClass::S => Self::chip_s(),
            ChipClass::M => Self::chip_m(),
            ChipClass::L => Self::chip_l(),
        }
    }

    fn paper_config(name: &str, cores: usize, crossbars_per_core: usize, power_w: f64) -> Self {
        Self {
            name: name.to_string(),
            cores,
            crossbars_per_core,
            crossbar: CrossbarSpec::sram_16nm(),
            core: CoreSpec::paper(),
            interconnect: InterconnectSpec::bus(),
            memory: MemorySpec::lpddr3(),
            precision: WeightPrecision::Int4,
            chip_power_w: power_w,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] when a structural parameter is
    /// zero or the crossbar geometry cannot hold a single weight at the
    /// configured precision.
    pub fn validate(&self) -> Result<(), InvalidConfigError> {
        if self.cores == 0 {
            return Err(InvalidConfigError::new("chip must have at least one core"));
        }
        if self.crossbars_per_core == 0 {
            return Err(InvalidConfigError::new("core must have at least one crossbar"));
        }
        if self.crossbar.rows == 0 || self.crossbar.cols == 0 {
            return Err(InvalidConfigError::new("crossbar dimensions must be nonzero"));
        }
        if self.crossbar.cols < self.precision.bits() {
            return Err(InvalidConfigError::new("crossbar has fewer columns than bits per weight"));
        }
        if self.core.clock_ghz <= 0.0 {
            return Err(InvalidConfigError::new("core clock must be positive"));
        }
        Ok(())
    }

    /// Total crossbars on the chip.
    pub fn total_crossbars(&self) -> usize {
        self.cores * self.crossbars_per_core
    }

    /// Total in-memory computing capacity in bits (1 bit per cell).
    pub fn capacity_bits(&self) -> usize {
        self.total_crossbars() * self.crossbar.bits()
    }

    /// Capacity in MiB — the paper's Table I "Capacity(MB)" column.
    pub fn capacity_mib(&self) -> f64 {
        self.capacity_bits() as f64 / 8.0 / (1024.0 * 1024.0)
    }

    /// Weights storable on the whole chip at the configured precision.
    pub fn weight_capacity(&self) -> usize {
        self.total_crossbars() * self.crossbar.weight_capacity(self.precision)
    }

    /// Weights storable in one core at the configured precision.
    pub fn core_weight_capacity(&self) -> usize {
        self.crossbars_per_core * self.crossbar.weight_capacity(self.precision)
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Chip-{} ({} cores x {} xbars, {:.3} MiB, {:.2} W)",
            self.name,
            self.cores,
            self.crossbars_per_core,
            self.capacity_mib(),
            self.chip_power_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_capacities() {
        assert!((ChipSpec::chip_s().capacity_mib() - 1.125).abs() < 1e-12);
        assert!((ChipSpec::chip_m().capacity_mib() - 2.0).abs() < 1e-12);
        assert!((ChipSpec::chip_l().capacity_mib() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn table1_powers() {
        assert_eq!(ChipSpec::chip_s().chip_power_w, 1.57);
        assert_eq!(ChipSpec::chip_m().chip_power_w, 2.80);
        assert_eq!(ChipSpec::chip_l().chip_power_w, 6.30);
    }

    #[test]
    fn weight_capacity_at_4bit() {
        let s = ChipSpec::chip_s();
        // 144 crossbars x 256 rows x 64 cols of 4-bit weights.
        assert_eq!(s.weight_capacity(), 144 * 256 * 64);
        assert_eq!(s.core_weight_capacity(), 9 * 256 * 64);
    }

    #[test]
    fn presets_validate() {
        for class in ChipClass::ALL {
            ChipSpec::preset(class).validate().expect("preset is valid");
        }
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut chip = ChipSpec::chip_s();
        chip.cores = 0;
        assert!(chip.validate().is_err());

        let mut chip = ChipSpec::chip_s();
        chip.crossbar.cols = 2; // fewer columns than 4 bits/weight
        assert!(chip.validate().is_err());

        let mut chip = ChipSpec::chip_s();
        chip.core.clock_ghz = 0.0;
        assert!(chip.validate().is_err());
    }

    #[test]
    fn core_static_power_sums_components() {
        let core = CoreSpec::paper();
        assert!((core.static_power_mw() - 48.8).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_class() {
        assert!(ChipSpec::chip_m().to_string().contains("Chip-M"));
    }
}
