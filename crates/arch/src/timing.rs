//! Memory-channel timing fidelity selection.
//!
//! The chip model charges memory traffic in one of two ways. `Analytic`
//! is the paper's methodology: a flat first-access latency plus
//! bandwidth streaming on the memory channel, with the LPDDR3
//! controller refining energy only. `ClosedLoop` routes every channel
//! transfer through the in-line multi-channel LPDDR3 controllers and
//! blocks the requesting core until the completion event fires, so bank
//! conflicts, row hits/misses, and channel interleaving shape the
//! critical path.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How the memory channel's latency is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TimingMode {
    /// Flat per-access latency + bandwidth streaming (the paper's
    /// methodology; reproduces the paper's tables bit-for-bit).
    #[default]
    Analytic,
    /// Closed-loop timing from the in-line multi-channel LPDDR3
    /// controllers: cores block until the controller completes.
    ClosedLoop,
}

impl TimingMode {
    /// Both modes, in fidelity order.
    pub const ALL: [TimingMode; 2] = [TimingMode::Analytic, TimingMode::ClosedLoop];

    /// Reads the mode from the `PIM_TIMING_MODE` environment variable
    /// (`analytic` / `closed-loop`, case-insensitive), defaulting to
    /// [`TimingMode::Analytic`] when the variable is unset.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value — a
    /// misspelled CI matrix leg must fail loudly, not silently run
    /// the analytic suite twice.
    pub fn from_env() -> Self {
        match std::env::var("PIM_TIMING_MODE") {
            Ok(raw) => raw
                .parse()
                .unwrap_or_else(|e| panic!("PIM_TIMING_MODE: {e} (use analytic or closed-loop)")),
            Err(_) => TimingMode::Analytic,
        }
    }
}

impl fmt::Display for TimingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingMode::Analytic => write!(f, "analytic"),
            TimingMode::ClosedLoop => write!(f, "closed-loop"),
        }
    }
}

impl FromStr for TimingMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "analytic" => Ok(TimingMode::Analytic),
            "closed-loop" | "closed_loop" | "closedloop" => Ok(TimingMode::ClosedLoop),
            other => Err(format!("unknown timing mode {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_analytic() {
        assert_eq!(TimingMode::default(), TimingMode::Analytic);
    }

    #[test]
    fn parses_both_spellings() {
        assert_eq!("analytic".parse::<TimingMode>().unwrap(), TimingMode::Analytic);
        assert_eq!("closed-loop".parse::<TimingMode>().unwrap(), TimingMode::ClosedLoop);
        assert_eq!("Closed_Loop".parse::<TimingMode>().unwrap(), TimingMode::ClosedLoop);
        assert!("cycle-exact".parse::<TimingMode>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for mode in TimingMode::ALL {
            assert_eq!(mode.to_string().parse::<TimingMode>().unwrap(), mode);
        }
    }
}
