//! Multi-chip system topologies.
//!
//! A topology names how many chips a system instantiates and the
//! directed inter-chip links joining them, each with its own
//! serialization bandwidth and propagation latency. The simulator
//! models every transfer hop-by-hop on the shared discrete-event
//! engine, so two transfers crossing the same link contend for it
//! rather than seeing a flat latency.
//!
//! Presets cover the single-chip machine of the paper, a
//! bidirectional ring, and a fully connected mesh; `PIM_TOPOLOGY`
//! selects one from the environment (`single`, `ring:N`, `fc:N`) so
//! CI legs and sweeps can retarget the whole harness without code
//! changes.

use crate::chip::ChipSpec;
use crate::error::InvalidConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Timing/width parameters of one inter-chip link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Propagation latency per traversal, ns (not occupancy).
    pub latency_ns: f64,
    /// Serialization bandwidth in bytes per nanosecond (GB/s); the
    /// link is occupied for `bytes / bandwidth` per transfer.
    pub bandwidth_gbps: f64,
    /// Energy per byte moved across the link, in picojoules.
    pub energy_pj_per_byte: f64,
}

impl LinkSpec {
    /// A board-level chip-to-chip SerDes lane: 8 GB/s, 120 ns
    /// propagation (an order slower and further than the on-chip bus).
    pub fn board() -> Self {
        Self { latency_ns: 120.0, bandwidth_gbps: 8.0, energy_pj_per_byte: 4.0 }
    }

    /// Time the link is occupied serializing `bytes`.
    pub fn serialization_ns(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_gbps
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::board()
    }
}

/// One directed inter-chip link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source chip index.
    pub src: usize,
    /// Destination chip index.
    pub dst: usize,
    /// Link parameters.
    pub spec: LinkSpec,
}

/// A multi-chip system shape: chip count plus the directed link graph.
///
/// # Example
///
/// ```
/// use pim_arch::Topology;
///
/// let ring = Topology::ring(4);
/// assert_eq!(ring.chips(), 4);
/// // Bidirectional ring: two directed links per edge.
/// assert_eq!(ring.links().len(), 8);
/// // Opposite corner of the ring is two hops away.
/// assert_eq!(ring.route(0, 2).unwrap().len(), 2);
/// ring.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name (`"single"`, `"ring:4"`, ...).
    pub name: String,
    /// Number of chips in the system.
    pub chips: usize,
    /// Directed links between chips.
    pub links: Vec<Link>,
    /// Per-slot chip overrides for heterogeneous systems, as
    /// `(slot, spec)` pairs; slots without an entry run the system's
    /// base chip. Empty (the presets) means a homogeneous system.
    pub overrides: Vec<(usize, ChipSpec)>,
}

impl Topology {
    /// The paper's machine: one chip, no interconnect.
    pub fn single() -> Self {
        Self { name: "single".to_string(), chips: 1, links: Vec::new(), overrides: Vec::new() }
    }

    /// A bidirectional ring of `chips` chips with [`LinkSpec::board`]
    /// links (a single chip degenerates to [`Topology::single`]).
    pub fn ring(chips: usize) -> Self {
        let chips = chips.max(1);
        if chips == 1 {
            return Self::single();
        }
        let mut links = Vec::with_capacity(2 * chips);
        for c in 0..chips {
            let next = (c + 1) % chips;
            links.push(Link { src: c, dst: next, spec: LinkSpec::board() });
            links.push(Link { src: next, dst: c, spec: LinkSpec::board() });
        }
        // A 2-chip "ring" is one bidirectional edge, not a double one.
        if chips == 2 {
            links.truncate(2);
        }
        Self { name: format!("ring:{chips}"), chips, links, overrides: Vec::new() }
    }

    /// A fully connected mesh: one dedicated directed link per ordered
    /// chip pair.
    pub fn fully_connected(chips: usize) -> Self {
        let chips = chips.max(1);
        if chips == 1 {
            return Self::single();
        }
        let mut links = Vec::new();
        for src in 0..chips {
            for dst in 0..chips {
                if src != dst {
                    links.push(Link { src, dst, spec: LinkSpec::board() });
                }
            }
        }
        Self { name: format!("fc:{chips}"), chips, links, overrides: Vec::new() }
    }

    /// Replaces slot `slot`'s chip with `spec` (heterogeneous system);
    /// a later override of the same slot wins. Validation rejects
    /// out-of-range slots and invalid specs.
    pub fn with_chip_override(mut self, slot: usize, spec: ChipSpec) -> Self {
        self.overrides.retain(|(s, _)| *s != slot);
        self.overrides.push((slot, spec));
        self
    }

    /// The override installed for `slot`, if any.
    pub fn chip_override(&self, slot: usize) -> Option<&ChipSpec> {
        self.overrides.iter().find(|(s, _)| *s == slot).map(|(_, spec)| spec)
    }

    /// `true` when any slot carries a chip override.
    pub fn is_heterogeneous(&self) -> bool {
        !self.overrides.is_empty()
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// The directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// `true` for the degenerate one-chip topology.
    pub fn is_single(&self) -> bool {
        self.chips <= 1
    }

    /// Validates the link graph.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfigError`] when the system has zero chips, a
    /// link endpoint is out of range or degenerate, a link has
    /// non-positive bandwidth or negative latency, or (for multi-chip
    /// systems) some ordered chip pair has no route.
    pub fn validate(&self) -> Result<(), InvalidConfigError> {
        if self.chips == 0 {
            return Err(InvalidConfigError::new("topology must have at least one chip"));
        }
        for link in &self.links {
            if link.src >= self.chips || link.dst >= self.chips {
                return Err(InvalidConfigError::new("link endpoint out of range"));
            }
            if link.src == link.dst {
                return Err(InvalidConfigError::new("link must join two distinct chips"));
            }
            if link.spec.bandwidth_gbps <= 0.0 {
                return Err(InvalidConfigError::new("link bandwidth must be positive"));
            }
            if link.spec.latency_ns < 0.0 || !link.spec.latency_ns.is_finite() {
                return Err(InvalidConfigError::new(
                    "link latency must be finite and non-negative",
                ));
            }
        }
        for (slot, spec) in &self.overrides {
            if *slot >= self.chips {
                return Err(InvalidConfigError::new("chip override slot out of range"));
            }
            spec.validate()?;
        }
        for src in 0..self.chips {
            for dst in 0..self.chips {
                if src != dst && self.route(src, dst).is_none() {
                    return Err(InvalidConfigError::new("topology is not strongly connected"));
                }
            }
        }
        Ok(())
    }

    /// Shortest route from `src` to `dst` as a sequence of link
    /// indices (BFS by hop count; ties broken by lowest link index, so
    /// routing is deterministic). `None` when unreachable; an empty
    /// route when `src == dst`.
    pub fn route(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src >= self.chips || dst >= self.chips {
            return None;
        }
        if src == dst {
            return Some(Vec::new());
        }
        // `via[c]` remembers the link that first reached chip `c`.
        let mut via: Vec<Option<usize>> = vec![None; self.chips];
        let mut frontier = vec![src];
        let mut seen = vec![false; self.chips];
        seen[src] = true;
        while !frontier.is_empty() && !seen[dst] {
            let mut next = Vec::new();
            for &at in &frontier {
                for (i, link) in self.links.iter().enumerate() {
                    if link.src == at && !seen[link.dst] {
                        seen[link.dst] = true;
                        via[link.dst] = Some(i);
                        next.push(link.dst);
                    }
                }
            }
            frontier = next;
        }
        if !seen[dst] {
            return None;
        }
        let mut hops = Vec::new();
        let mut at = dst;
        while at != src {
            let link = via[at].expect("reached chips have an inbound hop");
            hops.push(link);
            at = self.links[link].src;
        }
        hops.reverse();
        Some(hops)
    }

    /// The slowest link bandwidth in the system (GB/s).
    /// [`f64::INFINITY`] when there are no links (a single chip pays
    /// no interconnect cost); validation rejects multi-chip
    /// topologies without routes, so estimator callers never see the
    /// infinity for a real system.
    pub fn bottleneck_bandwidth_gbps(&self) -> f64 {
        self.links.iter().map(|l| l.spec.bandwidth_gbps).fold(f64::INFINITY, f64::min)
    }

    /// The smallest per-hop link propagation latency, ns — the
    /// conservative lookahead of a sharded (per-chip event loop)
    /// simulation: no cross-chip effect can land sooner than one link
    /// traversal, so every shard may safely advance that far beyond
    /// the globally earliest pending event. `None` when there are no
    /// links (a single chip has nothing to synchronize with).
    pub fn min_link_latency_ns(&self) -> Option<f64> {
        self.links.iter().map(|l| l.spec.latency_ns).min_by(f64::total_cmp)
    }

    /// Propagation latency of the deterministic route from `src` to
    /// `dst` (sum of per-hop link latencies), ns. `None` when
    /// unreachable; zero when `src == dst`.
    pub fn route_latency_ns(&self, src: usize, dst: usize) -> Option<f64> {
        let hops = self.route(src, dst)?;
        Some(hops.iter().map(|&h| self.links[h].spec.latency_ns).sum())
    }

    /// Lower bound on the end-to-end delivery delay of a `bytes`-sized
    /// transfer injected at `src` and routed to `dst`: every hop pays
    /// its full serialization plus propagation even when completely
    /// uncontended, so this is a safe per-destination lookahead term
    /// for conservative parallel simulation. `None` when unreachable;
    /// zero when `src == dst`.
    pub fn route_transfer_bound_ns(&self, src: usize, dst: usize, bytes: usize) -> Option<f64> {
        let hops = self.route(src, dst)?;
        Some(
            hops.iter()
                .map(|&h| {
                    let spec = &self.links[h].spec;
                    spec.serialization_ns(bytes) + spec.latency_ns
                })
                .sum(),
        )
    }

    /// The worst-case route latency between any ordered chip pair
    /// (sum of per-hop propagation latencies), ns. Zero for a single
    /// chip.
    pub fn max_route_latency_ns(&self) -> f64 {
        let mut worst = 0.0f64;
        for src in 0..self.chips {
            for dst in 0..self.chips {
                if src == dst {
                    continue;
                }
                if let Some(hops) = self.route(src, dst) {
                    let lat: f64 = hops.iter().map(|&h| self.links[h].spec.latency_ns).sum();
                    worst = worst.max(lat);
                }
            }
        }
        worst
    }

    /// Reads the topology from the `PIM_TOPOLOGY` environment variable
    /// (`single`, `ring:N`, `fc:N` / `fully-connected:N`), defaulting
    /// to [`Topology::single`] when unset.
    ///
    /// # Errors
    ///
    /// Returns the parse failure for a malformed value, naming the
    /// offending preset and every accepted form.
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("PIM_TOPOLOGY") {
            Ok(raw) => raw.parse().map_err(|e| format!("PIM_TOPOLOGY: {e}")),
            Err(_) => Ok(Topology::single()),
        }
    }

    /// [`Self::try_from_env`] for harness entry points.
    ///
    /// # Panics
    ///
    /// Panics with the descriptive parse error when the variable is
    /// set to an unrecognized value — a misspelled CI matrix leg must
    /// fail loudly, not silently run the single-chip suite twice.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The preset spellings [`Topology::from_str`] accepts, quoted in
/// every parse error so a malformed `PIM_TOPOLOGY` names its fix.
const ACCEPTED_FORMS: &str = "accepted forms: single, ring:N, fc:N / fully-connected:N (N >= 1)";

impl Default for Topology {
    fn default() -> Self {
        Self::single()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl FromStr for Topology {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        let lower = raw.trim().to_ascii_lowercase();
        if lower == "single" || lower == "1" {
            return Ok(Topology::single());
        }
        let (kind, count) = lower
            .split_once(':')
            .ok_or_else(|| format!("unknown topology preset {raw:?}; {ACCEPTED_FORMS}"))?;
        let chips: usize = count.parse().map_err(|_| {
            format!("invalid chip count {count:?} in topology preset {raw:?}; {ACCEPTED_FORMS}")
        })?;
        if chips == 0 {
            return Err(format!(
                "topology preset {raw:?} must have at least one chip; {ACCEPTED_FORMS}"
            ));
        }
        match kind {
            "ring" => Ok(Topology::ring(chips)),
            "fc" | "fully-connected" | "fully_connected" => Ok(Topology::fully_connected(chips)),
            other => {
                Err(format!("unknown topology kind {other:?} in preset {raw:?}; {ACCEPTED_FORMS}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for topo in [
            Topology::single(),
            Topology::ring(2),
            Topology::ring(4),
            Topology::fully_connected(2),
            Topology::fully_connected(4),
        ] {
            topo.validate().unwrap_or_else(|e| panic!("{topo}: {e}"));
        }
    }

    #[test]
    fn ring_routes_are_shortest() {
        let ring = Topology::ring(4);
        assert_eq!(ring.route(0, 1).unwrap().len(), 1);
        assert_eq!(ring.route(0, 2).unwrap().len(), 2);
        assert_eq!(ring.route(0, 3).unwrap().len(), 1, "wrap-around beats three forward hops");
        assert_eq!(ring.route(2, 2).unwrap().len(), 0);
    }

    #[test]
    fn fully_connected_is_one_hop_everywhere() {
        let fc = Topology::fully_connected(4);
        for src in 0..4 {
            for dst in 0..4 {
                if src != dst {
                    let hops = fc.route(src, dst).unwrap();
                    assert_eq!(hops.len(), 1);
                    let link = fc.links()[hops[0]];
                    assert_eq!((link.src, link.dst), (src, dst));
                }
            }
        }
    }

    #[test]
    fn two_chip_ring_has_one_edge_pair() {
        assert_eq!(Topology::ring(2).links().len(), 2);
    }

    #[test]
    fn parses_all_spellings() {
        assert!(Topology::from_str("single").unwrap().is_single());
        assert_eq!(Topology::from_str("ring:4").unwrap(), Topology::ring(4));
        assert_eq!(Topology::from_str("fc:2").unwrap(), Topology::fully_connected(2));
        assert_eq!(Topology::from_str("Fully-Connected:3").unwrap(), Topology::fully_connected(3));
        assert!(Topology::from_str("mesh:4").is_err());
        assert!(Topology::from_str("ring:0").is_err());
        assert!(Topology::from_str("torus").is_err());
    }

    #[test]
    fn display_round_trips() {
        for topo in [Topology::single(), Topology::ring(3), Topology::fully_connected(4)] {
            assert_eq!(topo.to_string().parse::<Topology>().unwrap(), topo);
        }
    }

    #[test]
    fn validation_rejects_broken_graphs() {
        let mut topo = Topology::ring(3);
        topo.links[0].dst = 7;
        assert!(topo.validate().is_err());

        let disconnected = Topology {
            name: "broken".to_string(),
            chips: 3,
            links: Topology::ring(2).links,
            overrides: Vec::new(),
        };
        assert!(disconnected.validate().is_err(), "chip 2 is unreachable");

        let mut bad_bw = Topology::ring(2);
        bad_bw.links[0].spec.bandwidth_gbps = 0.0;
        assert!(bad_bw.validate().is_err());
    }

    #[test]
    fn bottleneck_terms() {
        let ring = Topology::ring(4);
        assert_eq!(ring.bottleneck_bandwidth_gbps(), LinkSpec::board().bandwidth_gbps);
        // The ring's worst pair is two hops away.
        assert!((ring.max_route_latency_ns() - 2.0 * LinkSpec::board().latency_ns).abs() < 1e-9);
        assert_eq!(Topology::single().max_route_latency_ns(), 0.0);
    }

    #[test]
    fn min_link_latency_is_the_shard_lookahead() {
        assert_eq!(Topology::ring(4).min_link_latency_ns(), Some(LinkSpec::board().latency_ns));
        assert_eq!(Topology::fully_connected(3).min_link_latency_ns(), Some(120.0));
        assert_eq!(Topology::single().min_link_latency_ns(), None, "no links, no lookahead");
    }

    #[test]
    fn route_lookahead_queries_sum_the_deterministic_route() {
        let ring = Topology::ring(4);
        let board = LinkSpec::board();
        // Adjacent chips: one hop.
        assert_eq!(ring.route_latency_ns(0, 1), Some(board.latency_ns));
        // Opposite corner: two hops.
        assert_eq!(ring.route_latency_ns(0, 2), Some(2.0 * board.latency_ns));
        assert_eq!(ring.route_latency_ns(2, 2), Some(0.0));
        assert_eq!(ring.route_latency_ns(0, 9), None, "out of range is unreachable");
        // The transfer bound adds per-hop serialization on top of
        // propagation — every hop re-serializes the full payload.
        let bytes = 4096;
        let per_hop = board.serialization_ns(bytes) + board.latency_ns;
        assert!((ring.route_transfer_bound_ns(0, 2, bytes).unwrap() - 2.0 * per_hop).abs() < 1e-9);
        assert!(
            ring.route_transfer_bound_ns(0, 1, 0).unwrap() >= board.latency_ns,
            "a zero-byte transfer still pays propagation"
        );
    }

    #[test]
    fn serde_round_trip() {
        let topo = Topology::ring(3).with_chip_override(1, ChipSpec::chip_l());
        let json = serde_json::to_string(&topo).unwrap();
        let back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(topo, back);
    }

    #[test]
    fn chip_overrides_install_and_validate() {
        let topo = Topology::ring(2)
            .with_chip_override(1, ChipSpec::chip_m())
            .with_chip_override(1, ChipSpec::chip_l());
        assert!(topo.is_heterogeneous());
        assert!(topo.chip_override(0).is_none());
        assert_eq!(topo.chip_override(1).unwrap().name, "L", "later override wins");
        assert_eq!(topo.overrides.len(), 1, "same slot replaced, not stacked");
        topo.validate().unwrap();
        // Out-of-range slots and invalid specs are rejected.
        let out_of_range = Topology::ring(2).with_chip_override(5, ChipSpec::chip_s());
        assert!(out_of_range.validate().is_err());
        let mut broken = ChipSpec::chip_s();
        broken.cores = 0;
        assert!(Topology::ring(2).with_chip_override(0, broken).validate().is_err());
        assert!(!Topology::ring(2).is_heterogeneous());
    }

    #[test]
    fn parse_errors_name_the_preset_and_accepted_forms() {
        for raw in ["mesh:4", "ring:x", "ring:0", "torus"] {
            let err = Topology::from_str(raw).unwrap_err();
            assert!(err.contains(raw), "{err:?} must quote the offending value {raw:?}");
            assert!(err.contains("single, ring:N, fc:N"), "{err:?} must list accepted forms");
        }
    }

    #[test]
    fn env_parse_errors_are_descriptive() {
        // try_from_env reads the live environment; exercise the
        // formatting through the same code path FromStr feeds.
        let err = "star:3".parse::<Topology>().unwrap_err();
        assert!(err.contains("star"), "{err}");
        assert!(err.contains("accepted forms"), "{err}");
    }
}
