//! Weight-matrix-to-crossbar footprint arithmetic.

use crate::crossbar::CrossbarSpec;
use crate::WeightPrecision;
use serde::{Deserialize, Serialize};

/// The crossbar footprint of a weight matrix tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatrixFootprint {
    /// Crossbars along the row (input) dimension.
    pub row_tiles: usize,
    /// Crossbars along the column (output) dimension.
    pub col_tiles: usize,
}

impl MatrixFootprint {
    /// Total crossbars occupied.
    pub const fn crossbars(&self) -> usize {
        self.row_tiles * self.col_tiles
    }
}

/// Computes the crossbar footprint of a `rows × cols` weight matrix at
/// `precision` on crossbar `xbar`: `ceil(rows / xbar.rows)` row tiles
/// times `ceil(cols / weight_cols)` column tiles (bit-slicing reduces
/// the usable columns).
///
/// # Example
///
/// ```
/// use pim_arch::{crossbars_for_matrix, CrossbarSpec, WeightPrecision};
///
/// let xbar = CrossbarSpec::sram_16nm();
/// // A 3x3 conv from 64 to 128 channels: 576 x 128 matrix.
/// let fp = crossbars_for_matrix(576, 128, &xbar, WeightPrecision::Int4);
/// assert_eq!((fp.row_tiles, fp.col_tiles), (3, 2));
/// assert_eq!(fp.crossbars(), 6);
/// ```
pub fn crossbars_for_matrix(
    rows: usize,
    cols: usize,
    xbar: &CrossbarSpec,
    precision: WeightPrecision,
) -> MatrixFootprint {
    let weight_cols = xbar.weight_cols(precision).max(1);
    MatrixFootprint { row_tiles: rows.div_ceil(xbar.rows), col_tiles: cols.div_ceil(weight_cols) }
}

/// Number of weight bits physically occupied by a `rows × cols` matrix
/// at `precision` (cells used, not padded tiles).
pub fn matrix_weight_bits(rows: usize, cols: usize, precision: WeightPrecision) -> usize {
    rows * cols * precision.bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar() -> CrossbarSpec {
        CrossbarSpec::sram_16nm()
    }

    #[test]
    fn exact_fit() {
        let fp = crossbars_for_matrix(256, 64, &xbar(), WeightPrecision::Int4);
        assert_eq!(fp.crossbars(), 1);
    }

    #[test]
    fn one_extra_row_forces_new_tile() {
        let fp = crossbars_for_matrix(257, 64, &xbar(), WeightPrecision::Int4);
        assert_eq!((fp.row_tiles, fp.col_tiles), (2, 1));
    }

    #[test]
    fn resnet_fc_footprint() {
        // fc 512 -> 1000 at 4-bit: 2 row tiles x ceil(1000/64)=16 col tiles.
        let fp = crossbars_for_matrix(512, 1000, &xbar(), WeightPrecision::Int4);
        assert_eq!((fp.row_tiles, fp.col_tiles), (2, 16));
        assert_eq!(fp.crossbars(), 32);
    }

    #[test]
    fn vgg_fc6_is_huge() {
        // 25088 x 4096 at 4-bit: 98 x 64 tiles = 6272 crossbars
        // (vs 144 on Chip-S — a single layer exceeds the chip).
        let fp = crossbars_for_matrix(25088, 4096, &xbar(), WeightPrecision::Int4);
        assert_eq!(fp.crossbars(), 98 * 64);
    }

    #[test]
    fn precision_trades_columns() {
        let fp8 = crossbars_for_matrix(256, 64, &xbar(), WeightPrecision::Int8);
        assert_eq!((fp8.row_tiles, fp8.col_tiles), (1, 2));
        let fp1 = crossbars_for_matrix(256, 256, &xbar(), WeightPrecision::Int1);
        assert_eq!(fp1.crossbars(), 1);
    }

    #[test]
    fn weight_bits() {
        assert_eq!(matrix_weight_bits(10, 10, WeightPrecision::Int4), 400);
    }
}
