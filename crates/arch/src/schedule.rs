//! Intra-chip stage scheduling policy.
//!
//! A chip executes one `(batch, partition)` stage per partition program
//! per round. `Barrier` is the paper's execution model: a full-chip
//! barrier after every stage, so a round's partitions run strictly in
//! order and the next round starts only when the previous one has
//! fully drained. `Interleaved` relaxes the barrier to a stage
//! dependency graph: a stage may start as soon as its dataflow
//! predecessors are done and its resource claims (crossbar groups) are
//! free, so batch `b+1`'s partition 0 overlaps batch `b`'s draining
//! tail whenever the two touch disjoint cores.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How a chip's `(batch, partition)` stages are dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScheduleMode {
    /// Full-chip barrier between stages (the paper's methodology;
    /// reproduces the golden report fixtures bit-for-bit).
    #[default]
    Barrier,
    /// Dependency-driven dispatch: stages overlap when their resource
    /// claims do not conflict, hiding pipeline fill/drain across
    /// batches.
    Interleaved,
}

impl ScheduleMode {
    /// Both modes, in increasing overlap order.
    pub const ALL: [ScheduleMode; 2] = [ScheduleMode::Barrier, ScheduleMode::Interleaved];

    /// Reads the mode from the `PIM_SCHEDULE_MODE` environment
    /// variable (`barrier` / `interleaved`, case-insensitive),
    /// defaulting to [`ScheduleMode::Barrier`] when unset.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to an unrecognized value — a
    /// misspelled CI matrix leg must fail loudly, not silently run the
    /// barrier suite twice.
    pub fn from_env() -> Self {
        match std::env::var("PIM_SCHEDULE_MODE") {
            Ok(raw) => raw
                .parse()
                .unwrap_or_else(|e| panic!("PIM_SCHEDULE_MODE: {e} (use barrier or interleaved)")),
            Err(_) => ScheduleMode::Barrier,
        }
    }
}

impl fmt::Display for ScheduleMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleMode::Barrier => write!(f, "barrier"),
            ScheduleMode::Interleaved => write!(f, "interleaved"),
        }
    }
}

impl FromStr for ScheduleMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "barrier" => Ok(ScheduleMode::Barrier),
            "interleaved" | "interleave" => Ok(ScheduleMode::Interleaved),
            other => Err(format!("unknown schedule mode {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_barrier() {
        assert_eq!(ScheduleMode::default(), ScheduleMode::Barrier);
    }

    #[test]
    fn parses_spellings() {
        assert_eq!("barrier".parse::<ScheduleMode>().unwrap(), ScheduleMode::Barrier);
        assert_eq!("Interleaved".parse::<ScheduleMode>().unwrap(), ScheduleMode::Interleaved);
        assert_eq!("interleave".parse::<ScheduleMode>().unwrap(), ScheduleMode::Interleaved);
        assert!("lockstep".parse::<ScheduleMode>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for mode in ScheduleMode::ALL {
            assert_eq!(mode.to_string().parse::<ScheduleMode>().unwrap(), mode);
        }
    }
}
