//! Multi-channel DRAM: several independent controllers with
//! address-interleaved routing.
//!
//! LPDDR3 systems commonly gang two or four 32-bit channels for
//! bandwidth; the chip-level `MemorySpec` bandwidth then aggregates.
//! Channels are fully independent (own banks, bus, refresh), and
//! requests route by address interleave at a configurable granularity.

use crate::config::DramConfig;
use crate::controller::{CompletedRequest, DramSimulator};
use crate::energy::DramEnergy;
use crate::request::{Request, RequestId};

/// A set of independent DRAM channels with interleaved addressing.
///
/// # Example
///
/// ```
/// use pim_dram::{DramConfig, MultiChannelDram, Request, RequestKind};
///
/// let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), 2, 4096);
/// mem.enqueue(Request::new(0, 0, RequestKind::Read, 64 * 1024));
/// let done = mem.run_to_completion();
/// assert!(!done.is_empty());
/// // Two channels stream roughly twice as fast as one.
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelDram {
    channels: Vec<DramSimulator>,
    interleave_bytes: usize,
    next_id: u64,
}

impl MultiChannelDram {
    /// Creates `channels` identical controllers interleaved every
    /// `interleave_bytes` (rounded up to at least one burst).
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(cfg: DramConfig, channels: usize, interleave_bytes: usize) -> Self {
        assert!(channels > 0, "need at least one channel");
        let interleave = interleave_bytes.max(cfg.burst_bytes);
        Self {
            channels: (0..channels).map(|_| DramSimulator::new(cfg.clone())).collect(),
            interleave_bytes: interleave,
            next_id: 0,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Splits a block request across channels by interleave and
    /// enqueues the pieces. Returns one id (of the first piece) for
    /// bookkeeping; completions report per-piece.
    pub fn enqueue(&mut self, request: Request) -> RequestId {
        let first = RequestId(self.next_id);
        let n = self.channels.len();
        let il = self.interleave_bytes as u64;
        let mut addr = request.addr;
        let mut remaining = request.bytes;
        while remaining > 0 {
            let stripe_off = addr % il;
            let take = ((il - stripe_off) as usize).min(remaining);
            let channel = ((addr / il) % n as u64) as usize;
            // Channel-local address folds the interleave out so each
            // channel sees a dense address space.
            let local = (addr / (il * n as u64)) * il + stripe_off;
            self.channels[channel].enqueue(Request::at_ns(
                request.issue_ns,
                local,
                request.kind,
                take,
            ));
            self.next_id += 1;
            addr += take as u64;
            remaining -= take;
        }
        first
    }

    /// Drains every channel, returning all completions (channel order,
    /// then service order).
    pub fn run_to_completion(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        for channel in &mut self.channels {
            done.extend(channel.run_to_completion());
        }
        done
    }

    /// Latest completion time across channels.
    pub fn makespan_ns(&self) -> f64 {
        self.channels.iter().map(DramSimulator::makespan_ns).fold(0.0, f64::max)
    }

    /// Total energy across channels.
    pub fn energy(&self) -> DramEnergy {
        self.channels.iter().map(DramSimulator::energy).fold(DramEnergy::default(), |acc, e| {
            DramEnergy {
                activate_nj: acc.activate_nj + e.activate_nj,
                read_nj: acc.read_nj + e.read_nj,
                write_nj: acc.write_nj + e.write_nj,
                refresh_nj: acc.refresh_nj + e.refresh_nj,
                background_nj: acc.background_nj + e.background_nj,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn stream_time(channels: usize, bytes: usize) -> f64 {
        let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, 4096);
        mem.enqueue(Request::new(0, 0, RequestKind::Read, bytes));
        mem.run_to_completion();
        mem.makespan_ns()
    }

    #[test]
    fn two_channels_nearly_double_stream_bandwidth() {
        let one = stream_time(1, 1 << 20);
        let two = stream_time(2, 1 << 20);
        let speedup = one / two;
        assert!(
            speedup > 1.7 && speedup < 2.2,
            "2-channel speedup {speedup} (one {one} ns, two {two} ns)"
        );
    }

    #[test]
    fn four_channels_scale_further() {
        let two = stream_time(2, 1 << 20);
        let four = stream_time(4, 1 << 20);
        assert!(two / four > 1.6, "4-ch should beat 2-ch: {two} vs {four}");
    }

    #[test]
    fn all_bytes_accounted() {
        let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), 2, 4096);
        mem.enqueue(Request::new(0, 1000, RequestKind::Read, 100_000));
        let done = mem.run_to_completion();
        let total: usize = done.iter().map(|c| c.bytes).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn energy_sums_channels() {
        let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), 2, 4096);
        mem.enqueue(Request::new(0, 0, RequestKind::Write, 64 * 1024));
        mem.run_to_completion();
        let e = mem.energy();
        assert!(e.write_nj > 0.0);
        assert!(e.total_nj() > e.write_nj);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = MultiChannelDram::new(DramConfig::lpddr3_1600(), 0, 4096);
    }
}
