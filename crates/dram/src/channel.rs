//! Multi-channel DRAM: several independent controllers with
//! address-interleaved routing.
//!
//! LPDDR3 systems commonly gang two or four 32-bit channels for
//! bandwidth; the chip-level `MemorySpec` bandwidth then aggregates.
//! Channels are fully independent (own banks, bus, refresh), and
//! requests route by address interleave at a configurable granularity.
//!
//! Two front ends share the routing policy: the batch path
//! ([`MultiChannelDram::enqueue`] + [`MultiChannelDram::run_to_completion`])
//! for trace replay, and the immediate path ([`MultiChannelDram::service`])
//! used by the chip simulator's closed-loop timing mode, where each
//! block access is served as its event arrives and the aggregated
//! completion time feeds back into the chip's critical path.

use crate::config::DramConfig;
use crate::controller::{ChannelStats, CompletedRequest, DramSimulator};
use crate::energy::DramEnergy;
use crate::error::DramError;
use crate::request::{Request, RequestId};

/// The closed-loop outcome of one block access: when its first stripe
/// started service and when its last stripe's data completed, across
/// every channel it touched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelAccess {
    /// Earliest service start across the stripes, ns.
    pub start_ns: f64,
    /// Latest completion across the stripes, ns.
    pub finish_ns: f64,
    /// Number of interleave stripes the access was split into.
    pub stripes: usize,
}

/// A set of independent DRAM channels with interleaved addressing.
///
/// # Example
///
/// ```
/// use pim_dram::{DramConfig, MultiChannelDram, Request, RequestKind};
///
/// let mut mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), 2, 4096).unwrap();
/// mem.enqueue(Request::new(0, 0, RequestKind::Read, 64 * 1024));
/// let done = mem.run_to_completion();
/// assert!(!done.is_empty());
/// // Two channels stream roughly twice as fast as one.
/// ```
#[derive(Debug, Clone)]
pub struct MultiChannelDram {
    channels: Vec<DramSimulator>,
    interleave_bytes: usize,
    next_id: u64,
}

impl MultiChannelDram {
    /// Creates `channels` identical controllers interleaved every
    /// `interleave_bytes` (rounded up to at least one burst).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoChannels`] if `channels == 0`.
    pub fn new(
        cfg: DramConfig,
        channels: usize,
        interleave_bytes: usize,
    ) -> Result<Self, DramError> {
        if channels == 0 {
            return Err(DramError::NoChannels);
        }
        let interleave = interleave_bytes.max(cfg.burst_bytes);
        Ok(Self {
            channels: (0..channels).map(|_| DramSimulator::new(cfg.clone())).collect(),
            interleave_bytes: interleave,
            next_id: 0,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The interleave granularity in bytes.
    pub fn interleave_bytes(&self) -> usize {
        self.interleave_bytes
    }

    /// Splits a block request across channels by interleave and
    /// enqueues the pieces. Returns one id (of the first piece) for
    /// bookkeeping; completions report per-piece.
    pub fn enqueue(&mut self, request: Request) -> RequestId {
        let first = RequestId(self.next_id);
        for (channel, piece) in Self::stripes(self.channels.len(), self.interleave_bytes, request) {
            self.channels[channel].enqueue(piece);
            self.next_id += 1;
        }
        first
    }

    /// Serves a block request immediately (closed-loop path): every
    /// stripe is serviced on its channel in call order, and the
    /// access completes when its slowest stripe's data lands. Channel
    /// queueing, bank conflicts, row hits/misses, and refresh all show
    /// up in the returned window.
    pub fn service(&mut self, request: Request) -> ChannelAccess {
        let mut start_ns = f64::INFINITY;
        let mut finish_ns = request.issue_ns.max(0.0);
        let mut count = 0usize;
        for (channel, piece) in Self::stripes(self.channels.len(), self.interleave_bytes, request) {
            let done = self.channels[channel].service_one(piece);
            self.next_id += 1;
            start_ns = start_ns.min(done.start_ns);
            finish_ns = finish_ns.max(done.finish_ns);
            count += 1;
        }
        if !start_ns.is_finite() {
            start_ns = finish_ns; // zero-byte access: an empty window
        }
        ChannelAccess { start_ns, finish_ns, stripes: count }
    }

    /// Serves a batch of in-flight block requests with FR-FCFS
    /// reordering: every stripe of every request is enqueued first,
    /// then each channel drains its queue through the controller's
    /// row-hit-preferring pick ([`DramSimulator::service_pending`]), so
    /// stripes of *different* requests may overtake each other when
    /// that keeps a row buffer open. Returns one [`ChannelAccess`] per
    /// input request, in input order.
    ///
    /// With a single request this degenerates to [`Self::service`]
    /// modulo the intra-request pick order; the chip simulator exposes
    /// it behind an off-by-default flag because it relaxes the
    /// arrival-order service guarantee the closed-loop mode documents.
    pub fn service_batch(&mut self, requests: &[Request]) -> Vec<ChannelAccess> {
        let mut owner: Vec<Vec<(RequestId, usize)>> = vec![Vec::new(); self.channels.len()];
        for (parent, request) in requests.iter().enumerate() {
            for (channel, piece) in
                Self::stripes(self.channels.len(), self.interleave_bytes, *request)
            {
                let id = self.channels[channel].enqueue(piece);
                owner[channel].push((id, parent));
                self.next_id += 1;
            }
        }
        let mut accesses: Vec<ChannelAccess> = requests
            .iter()
            .map(|r| ChannelAccess {
                start_ns: f64::INFINITY,
                finish_ns: r.issue_ns.max(0.0),
                stripes: 0,
            })
            .collect();
        for (channel, owners) in self.channels.iter_mut().zip(&owner) {
            for done in channel.service_pending() {
                let &(_, parent) = owners
                    .iter()
                    .find(|(id, _)| *id == done.id)
                    .expect("every completion belongs to a batched request");
                let acc = &mut accesses[parent];
                acc.start_ns = acc.start_ns.min(done.start_ns);
                acc.finish_ns = acc.finish_ns.max(done.finish_ns);
                acc.stripes += 1;
            }
        }
        for acc in &mut accesses {
            if !acc.start_ns.is_finite() {
                acc.start_ns = acc.finish_ns; // zero-byte access
            }
        }
        accesses
    }

    /// Splits a block request into per-channel stripes: for each
    /// piece, the channel index and the channel-local request. The
    /// local address folds the interleave out so each channel sees a
    /// dense address space. Takes `Copy` inputs rather than `&self` so
    /// the routing loops can mutate `self.channels` while iterating —
    /// no per-request stripe buffer is allocated.
    fn stripes(
        channels: usize,
        interleave_bytes: usize,
        request: Request,
    ) -> impl Iterator<Item = (usize, Request)> {
        let n = channels as u64;
        let il = interleave_bytes as u64;
        let mut addr = request.addr;
        let mut remaining = request.bytes;
        std::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let stripe_off = addr % il;
            let take = ((il - stripe_off) as usize).min(remaining);
            let channel = ((addr / il) % n) as usize;
            let local = (addr / (il * n)) * il + stripe_off;
            addr += take as u64;
            remaining -= take;
            Some((channel, Request::at_ns(request.issue_ns, local, request.kind, take)))
        })
    }

    /// Drains every channel, returning all completions (channel order,
    /// then service order).
    pub fn run_to_completion(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::new();
        for channel in &mut self.channels {
            done.extend(channel.run_to_completion());
        }
        done
    }

    /// Latest completion time across channels.
    pub fn makespan_ns(&self) -> f64 {
        self.channels.iter().map(DramSimulator::makespan_ns).fold(0.0, f64::max)
    }

    /// Per-channel aggregate counters, in channel order.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(DramSimulator::stats).collect()
    }

    /// Total energy across channels.
    pub fn energy(&self) -> DramEnergy {
        self.channels.iter().map(DramSimulator::energy).fold(DramEnergy::default(), |acc, e| {
            DramEnergy {
                activate_nj: acc.activate_nj + e.activate_nj,
                read_nj: acc.read_nj + e.read_nj,
                write_nj: acc.write_nj + e.write_nj,
                refresh_nj: acc.refresh_nj + e.refresh_nj,
                background_nj: acc.background_nj + e.background_nj,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;

    fn mem(channels: usize) -> MultiChannelDram {
        MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, 4096).unwrap()
    }

    fn stream_time(channels: usize, bytes: usize) -> f64 {
        let mut mem = mem(channels);
        mem.enqueue(Request::new(0, 0, RequestKind::Read, bytes));
        mem.run_to_completion();
        mem.makespan_ns()
    }

    #[test]
    fn two_channels_nearly_double_stream_bandwidth() {
        let one = stream_time(1, 1 << 20);
        let two = stream_time(2, 1 << 20);
        let speedup = one / two;
        assert!(
            speedup > 1.7 && speedup < 2.2,
            "2-channel speedup {speedup} (one {one} ns, two {two} ns)"
        );
    }

    #[test]
    fn four_channels_scale_further() {
        let two = stream_time(2, 1 << 20);
        let four = stream_time(4, 1 << 20);
        assert!(two / four > 1.6, "4-ch should beat 2-ch: {two} vs {four}");
    }

    #[test]
    fn all_bytes_accounted() {
        let mut mem = mem(2);
        mem.enqueue(Request::new(0, 1000, RequestKind::Read, 100_000));
        let done = mem.run_to_completion();
        let total: usize = done.iter().map(|c| c.bytes).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn energy_sums_channels() {
        let mut mem = mem(2);
        mem.enqueue(Request::new(0, 0, RequestKind::Write, 64 * 1024));
        mem.run_to_completion();
        let e = mem.energy();
        assert!(e.write_nj > 0.0);
        assert!(e.total_nj() > e.write_nj);
    }

    #[test]
    fn zero_channels_is_an_error() {
        let err = MultiChannelDram::new(DramConfig::lpddr3_1600(), 0, 4096).unwrap_err();
        assert_eq!(err, DramError::NoChannels);
        assert!(err.to_string().contains("at least one channel"));
    }

    #[test]
    fn service_window_is_ordered_and_covers_stripes() {
        let mut mem = mem(2);
        let access = mem.service(Request::new(0, 0, RequestKind::Read, 64 * 1024));
        // 64 KiB over 4 KiB stripes = 16 stripes, 8 per channel.
        assert_eq!(access.stripes, 16);
        assert!(access.start_ns >= 0.0);
        assert!(access.finish_ns > access.start_ns);
        let stats = mem.channel_stats();
        assert_eq!(stats.len(), 2);
        let total: u64 = stats.iter().map(ChannelStats::total_bytes).sum();
        assert_eq!(total, 64 * 1024);
    }

    #[test]
    fn service_batch_serves_every_request_exactly_once() {
        let requests: Vec<Request> = (0..6)
            .map(|i| Request::new(0, i as u64 * (1 << 16), RequestKind::Read, 16 * 1024))
            .collect();
        let mut mem = mem(2);
        let accesses = mem.service_batch(&requests);
        assert_eq!(accesses.len(), requests.len());
        for acc in &accesses {
            assert_eq!(acc.stripes, 4, "16 KiB over 4 KiB stripes");
            assert!(acc.finish_ns > acc.start_ns);
        }
        let total: u64 = mem.channel_stats().iter().map(ChannelStats::total_bytes).sum();
        assert_eq!(total, 6 * 16 * 1024, "byte conservation across the batch");
    }

    #[test]
    fn service_batch_is_deterministic() {
        let requests: Vec<Request> = (0..8)
            .map(|i| Request::new(0, (i as u64 * 977) << 10, RequestKind::Read, 8 * 1024))
            .collect();
        let run = || {
            let mut mem = mem(2);
            mem.service_batch(&requests)
        };
        assert_eq!(run(), run(), "same batch, same windows, every run");
    }

    #[test]
    fn stats_track_hits_and_utilization() {
        let mut mem = mem(1);
        mem.service(Request::new(0, 0, RequestKind::Read, 1 << 16));
        let s = mem.channel_stats()[0];
        assert!(s.row_hit_rate() > 0.8, "sequential stream mostly hits: {}", s.row_hit_rate());
        assert!(s.utilization() > 0.0 && s.utilization() <= 1.0);
        assert!(s.makespan_ns >= s.busy_ns);
    }
}
