//! Per-bank row-buffer state machine.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};

/// Outcome class of a column access, used for energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessClass {
    /// Row buffer hit (no activate needed).
    RowHit,
    /// Row buffer miss on a closed bank (activate only).
    RowClosed,
    /// Row buffer conflict (precharge + activate).
    RowConflict,
}

/// One DRAM bank with an open-page row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Earliest time the bank can issue its next column command, ns.
    ready_ns: f64,
    /// Time the current row was activated (for tRAS), ns.
    activated_ns: f64,
}

impl Bank {
    /// Creates a closed, idle bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest time the bank can accept a new column command.
    pub fn ready_ns(&self) -> f64 {
        self.ready_ns
    }

    /// Classifies an access to `row` without mutating state.
    pub fn classify(&self, row: u64) -> AccessClass {
        match self.open_row {
            Some(open) if open == row => AccessClass::RowHit,
            Some(_) => AccessClass::RowConflict,
            None => AccessClass::RowClosed,
        }
    }

    /// Performs one burst access to `row` starting no earlier than
    /// `now_ns`, returning `(data_ready_ns, class)`: the time the data
    /// burst completes on the data bus and the row-buffer outcome.
    ///
    /// The bank becomes ready for its next column command `tCCD` after
    /// the column command issues; the caller (controller) serializes
    /// the shared data bus separately.
    pub fn access(
        &mut self,
        cfg: &DramConfig,
        now_ns: f64,
        row: u64,
        is_write: bool,
    ) -> (f64, AccessClass) {
        let cyc = cfg.cycle_ns();
        let class = self.classify(row);
        let mut t = now_ns.max(self.ready_ns);
        match class {
            AccessClass::RowHit => {}
            AccessClass::RowClosed => {
                t += cfg.t_rcd as f64 * cyc;
                self.activated_ns = t;
                self.open_row = Some(row);
            }
            AccessClass::RowConflict => {
                // Respect tRAS from the previous activate, then
                // precharge and activate the new row.
                let ras_done = self.activated_ns + cfg.t_ras as f64 * cyc;
                t = t.max(ras_done);
                t += (cfg.t_rp + cfg.t_rcd) as f64 * cyc;
                self.activated_ns = t;
                self.open_row = Some(row);
            }
        }
        let cas = if is_write { cfg.t_cwl } else { cfg.t_cl };
        let data_ready =
            t + (cas + cfg.t_ccd) as f64 * cyc + if is_write { cfg.t_wr as f64 * cyc } else { 0.0 };
        // Next column command to this bank can issue tCCD after this one.
        self.ready_ns = t + cfg.t_ccd as f64 * cyc;
        (data_ready, class)
    }

    /// Applies a refresh completing at `end_ns`: all rows closed, bank
    /// unavailable until then.
    pub fn refresh_until(&mut self, end_ns: f64) {
        self.open_row = None;
        self.ready_ns = self.ready_ns.max(end_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::lpddr3_1600()
    }

    #[test]
    fn first_access_activates() {
        let cfg = cfg();
        let mut bank = Bank::new();
        let (done, class) = bank.access(&cfg, 0.0, 7, false);
        assert_eq!(class, AccessClass::RowClosed);
        // tRCD + tCL + tCCD cycles.
        let expect = (cfg.t_rcd + cfg.t_cl + cfg.t_ccd) as f64 * cfg.cycle_ns();
        assert!((done - expect).abs() < 1e-9, "{done} vs {expect}");
        assert_eq!(bank.open_row(), Some(7));
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let cfg = cfg();
        let mut bank = Bank::new();
        let (t0, _) = bank.access(&cfg, 0.0, 1, false);
        let (t_hit, c_hit) = bank.access(&cfg, t0, 1, false);
        assert_eq!(c_hit, AccessClass::RowHit);

        let mut bank2 = Bank::new();
        let (s0, _) = bank2.access(&cfg, 0.0, 1, false);
        let (t_conf, c_conf) = bank2.access(&cfg, s0, 2, false);
        assert_eq!(c_conf, AccessClass::RowConflict);
        assert!(t_conf - s0 > t_hit - t0, "conflict {t_conf} hit {t_hit}");
    }

    #[test]
    fn conflict_respects_tras() {
        let cfg = cfg();
        let mut bank = Bank::new();
        bank.access(&cfg, 0.0, 1, false);
        // Immediately conflict: precharge cannot begin before
        // activate + tRAS.
        let (done, _) = bank.access(&cfg, 0.0, 2, false);
        let min_done = (cfg.t_rcd + cfg.t_ras + cfg.t_rp + cfg.t_rcd + cfg.t_cl + cfg.t_ccd) as f64
            * cfg.cycle_ns();
        assert!(done >= min_done - 1e-9, "{done} vs {min_done}");
    }

    #[test]
    fn write_includes_recovery() {
        let cfg = cfg();
        let mut rd = Bank::new();
        let (t_read, _) = rd.access(&cfg, 0.0, 1, false);
        let mut wr = Bank::new();
        let (t_write, _) = wr.access(&cfg, 0.0, 1, true);
        // Write: tCWL < tCL but +tWR recovery makes it slower overall.
        assert!(t_write > t_read);
    }

    #[test]
    fn refresh_closes_rows() {
        let cfg = cfg();
        let mut bank = Bank::new();
        bank.access(&cfg, 0.0, 3, false);
        bank.refresh_until(500.0);
        assert_eq!(bank.open_row(), None);
        assert!(bank.ready_ns() >= 500.0);
    }
}
