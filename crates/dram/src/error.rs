//! DRAM configuration errors.

use std::error::Error;
use std::fmt;

/// A structurally invalid DRAM configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A multi-channel memory needs at least one channel.
    NoChannels,
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::NoChannels => write!(f, "multi-channel DRAM needs at least one channel"),
        }
    }
}

impl Error for DramError {}
