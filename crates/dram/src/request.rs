//! Memory requests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier assigned to each enqueued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Memory read (weights and activation loads).
    Read,
    /// Memory write (activation stores).
    Write,
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestKind::Read => write!(f, "R"),
            RequestKind::Write => write!(f, "W"),
        }
    }
}

/// One trace entry: a block transfer issued at a given time.
///
/// Transfers larger than one burst are split into sequential bursts by
/// the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Earliest time the request may start, in nanoseconds.
    pub issue_ns: f64,
    /// Starting byte address.
    pub addr: u64,
    /// Read or write.
    pub kind: RequestKind,
    /// Transfer size in bytes.
    pub bytes: usize,
}

impl Request {
    /// Creates a request. `issue_ns` is the earliest start time.
    pub fn new(issue_ns: u64, addr: u64, kind: RequestKind, bytes: usize) -> Self {
        Self { issue_ns: issue_ns as f64, addr, kind, bytes }
    }

    /// Creates a request with a fractional issue time.
    pub fn at_ns(issue_ns: f64, addr: u64, kind: RequestKind, bytes: usize) -> Self {
        Self { issue_ns, addr, kind, bytes }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} 0x{:x} {}B @{:.1}ns", self.kind, self.addr, self.bytes, self.issue_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = Request::new(10, 0x40, RequestKind::Read, 64);
        assert_eq!(r.issue_ns, 10.0);
        let w = Request::at_ns(2.5, 0x80, RequestKind::Write, 32);
        assert_eq!(w.issue_ns, 2.5);
    }

    #[test]
    fn display() {
        let r = Request::new(0, 0x100, RequestKind::Read, 64);
        assert_eq!(r.to_string(), "R 0x100 64B @0.0ns");
    }
}
