//! # pim-dram — cycle-approximate LPDDR3 DRAM simulator
//!
//! A functional stand-in for DRAMsim3 as used by the COMPASS paper
//! (§IV-A1: "We model the DRAM energy by generating a memory trace from
//! the scheduled instruction and feeding it into DRAMsim3").
//!
//! The model implements the behaviours a PIM weight-replacement
//! compiler actually exercises:
//!
//! * per-bank row-buffer state with open-page policy — bulk sequential
//!   weight streams hit the row buffer, scattered activation traffic
//!   pays activate/precharge,
//! * JEDEC-style timing constraints (tRCD, tRP, tCL/tCWL, tRAS, tWR,
//!   tCCD, tRFC with periodic refresh),
//! * a FR-FCFS-lite controller queue with bank-level parallelism,
//! * energy accounting (activate, read, write, IO, background).
//!
//! It consumes the same kind of trace DRAMsim3 does: a sequence of
//! `(issue cycle, address, read/write, burst bytes)` requests, and
//! reports per-request completion plus aggregate bandwidth/energy.
//!
//! # Example
//!
//! ```
//! use pim_dram::{DramConfig, DramSimulator, Request, RequestKind};
//!
//! let mut sim = DramSimulator::new(DramConfig::lpddr3_1600());
//! let id = sim.enqueue(Request::new(0, 0x1000, RequestKind::Read, 64));
//! let results = sim.run_to_completion();
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].id, id);
//! assert!(results[0].finish_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod channel;
pub mod config;
pub mod controller;
pub mod energy;
pub mod request;
pub mod trace;

mod error;

pub use channel::{ChannelAccess, MultiChannelDram};
pub use config::DramConfig;
pub use controller::{ChannelStats, CompletedRequest, DrainLatch, DramSimulator};
pub use energy::DramEnergy;
pub use error::DramError;
pub use request::{Request, RequestId, RequestKind};
pub use trace::{ParseTraceError, Trace, TraceStats};
