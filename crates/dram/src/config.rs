//! DRAM device and timing configuration.

use serde::{Deserialize, Serialize};

/// DRAM configuration: geometry, JEDEC-style timing (in device clock
/// cycles), and energy parameters.
///
/// The default preset models the paper's LPDDR3 8 GB part behind a
/// 32-bit channel (6.4 GB/s peak).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Device clock in MHz (data rate is 2× for DDR).
    pub clock_mhz: f64,
    /// Number of banks per rank.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: usize,
    /// Bytes transferred per burst (BL8 on a 32-bit bus = 32 B).
    pub burst_bytes: usize,
    /// Activate-to-read delay (tRCD), cycles.
    pub t_rcd: u64,
    /// Precharge time (tRP), cycles.
    pub t_rp: u64,
    /// Read CAS latency (tCL), cycles.
    pub t_cl: u64,
    /// Write CAS latency (tCWL), cycles.
    pub t_cwl: u64,
    /// Minimum row-open time (tRAS), cycles.
    pub t_ras: u64,
    /// Write recovery (tWR), cycles.
    pub t_wr: u64,
    /// Column-to-column delay / burst occupancy (tCCD), cycles.
    pub t_ccd: u64,
    /// Refresh cycle time (tRFC), cycles.
    pub t_rfc: u64,
    /// Refresh interval (tREFI), cycles.
    pub t_refi: u64,
    /// Energy per activate+precharge pair, in nanojoules.
    pub activate_energy_nj: f64,
    /// Read data movement energy, pJ per bit.
    pub read_pj_per_bit: f64,
    /// Write data movement energy, pJ per bit.
    pub write_pj_per_bit: f64,
    /// Background (standby + peripheral) power in milliwatts.
    pub background_power_mw: f64,
}

impl DramConfig {
    /// LPDDR3-1600 (800 MHz clock), 8 banks, 2 KiB rows, 32-bit bus:
    /// 6.4 GB/s peak bandwidth. Timing values follow JEDEC LPDDR3
    /// datasheet-class numbers; energy follows published LPDDR3
    /// pJ/bit estimates (device + IO ≈ 1.5–2.5 pJ/bit, activation
    /// ≈ 1–2 nJ per row cycle).
    pub fn lpddr3_1600() -> Self {
        Self {
            clock_mhz: 800.0,
            banks: 8,
            row_bytes: 2048,
            burst_bytes: 32,
            t_rcd: 15,
            t_rp: 15,
            t_cl: 12,
            t_cwl: 6,
            t_ras: 34,
            t_wr: 12,
            t_ccd: 4,
            t_rfc: 104,
            t_refi: 3120,
            activate_energy_nj: 1.5,
            read_pj_per_bit: 2.0,
            write_pj_per_bit: 2.2,
            background_power_mw: 60.0,
        }
    }

    /// Device clock cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// Peak bandwidth in bytes per nanosecond (GB/s): DDR moves
    /// `burst_bytes` every `t_ccd` cycles.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.burst_bytes as f64 / (self.t_ccd as f64 * self.cycle_ns())
    }

    /// Channels needed to expose `aggregate_gbps` of chip-level memory
    /// bandwidth at this configuration's per-channel peak (at least
    /// one; rounded up so the modelled memory system never
    /// under-provisions the chip's stated bandwidth). The closed-loop
    /// chip simulator and the compiler's estimator both derive the
    /// channel count through this helper, so the GA tunes against the
    /// same topology the simulator times.
    pub fn channels_for_bandwidth(&self, aggregate_gbps: f64) -> usize {
        ((aggregate_gbps / self.peak_bandwidth_gbps()).ceil() as usize).max(1)
    }

    /// Maps a byte address to `(bank, row)` using row-interleaved
    /// mapping (consecutive rows rotate across banks so sequential
    /// streams exploit bank-level parallelism).
    pub fn map_address(&self, addr: u64) -> (usize, u64) {
        let row_global = addr / self.row_bytes as u64;
        let bank = (row_global % self.banks as u64) as usize;
        let row = row_global / self.banks as u64;
        (bank, row)
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::lpddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr3_peak_bandwidth_is_12_8() {
        let cfg = DramConfig::lpddr3_1600();
        // One BL8 burst (32 B on a 32-bit bus) per tCCD=4 device
        // cycles at 1.25 ns/cycle = 6.4 GB/s, i.e. LPDDR3-1600 x32.
        let bw = cfg.peak_bandwidth_gbps();
        assert!((bw - 6.4).abs() < 1e-9, "peak bandwidth {bw} GB/s");
    }

    #[test]
    fn address_mapping_rotates_banks() {
        let cfg = DramConfig::lpddr3_1600();
        let (b0, r0) = cfg.map_address(0);
        let (b1, r1) = cfg.map_address(2048);
        assert_eq!((b0, r0), (0, 0));
        assert_eq!((b1, r1), (1, 0));
        let (b8, r8) = cfg.map_address(2048 * 8);
        assert_eq!((b8, r8), (0, 1));
    }

    #[test]
    fn same_row_same_bank() {
        let cfg = DramConfig::lpddr3_1600();
        assert_eq!(cfg.map_address(100), cfg.map_address(2000));
    }

    #[test]
    fn cycle_time() {
        assert!((DramConfig::lpddr3_1600().cycle_ns() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn channel_derivation_never_under_provisions() {
        let cfg = DramConfig::lpddr3_1600(); // 6.4 GB/s per channel
        assert_eq!(cfg.channels_for_bandwidth(6.4), 1);
        assert_eq!(cfg.channels_for_bandwidth(8.0), 2); // 1 ch would be 20% short
        assert_eq!(cfg.channels_for_bandwidth(12.8), 2);
        assert_eq!(cfg.channels_for_bandwidth(25.6), 4);
        assert_eq!(cfg.channels_for_bandwidth(0.0), 1);
    }
}
