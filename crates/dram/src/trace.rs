//! Memory trace containers and aggregate statistics.
//!
//! Mirrors the DRAMsim3 workflow the paper uses: the scheduler emits a
//! trace of DRAM transactions, the trace is replayed through the
//! simulator, and latency/energy come back out.

use crate::controller::{CompletedRequest, DramSimulator};
use crate::request::{Request, RequestKind};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// An ordered list of memory requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Appends a request.
    pub fn push(&mut self, request: Request) {
        self.requests.push(request);
    }

    /// The requests in order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Appends a bulk sequential transfer starting at `addr`,
    /// split into `chunk` byte requests issued back-to-back at
    /// `issue_ns`. Returns the address one past the end (useful for
    /// laying out consecutive tensors).
    pub fn push_stream(
        &mut self,
        issue_ns: f64,
        addr: u64,
        kind: RequestKind,
        bytes: usize,
        chunk: usize,
    ) -> u64 {
        let chunk = chunk.max(1);
        let mut offset = 0usize;
        while offset < bytes {
            let size = chunk.min(bytes - offset);
            self.push(Request::at_ns(issue_ns, addr + offset as u64, kind, size));
            offset += size;
        }
        addr + bytes as u64
    }

    /// Replays the trace through a simulator, returning completions.
    pub fn replay(&self, sim: &mut DramSimulator) -> Vec<CompletedRequest> {
        for req in &self.requests {
            sim.enqueue(*req);
        }
        sim.run_to_completion()
    }

    /// Aggregate statistics (byte totals; timing requires replay).
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        for r in &self.requests {
            match r.kind {
                RequestKind::Read => s.read_bytes += r.bytes,
                RequestKind::Write => s.write_bytes += r.bytes,
            }
            s.requests += 1;
        }
        s
    }
}

impl Extend<Request> for Trace {
    fn extend<T: IntoIterator<Item = Request>>(&mut self, iter: T) {
        self.requests.extend(iter);
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Self {
        Self { requests: iter.into_iter().collect() }
    }
}

impl Trace {
    /// Renders the trace in DRAMsim3-style text: one request per line,
    /// `0xADDR READ|WRITE cycle_ns [bytes]`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.requests {
            let kind = match r.kind {
                RequestKind::Read => "READ",
                RequestKind::Write => "WRITE",
            };
            out.push_str(&format!("0x{:x} {} {} {}\n", r.addr, kind, r.issue_ns, r.bytes));
        }
        out
    }
}

/// Failure parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub detail: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.detail)
    }
}

impl Error for ParseTraceError {}

impl FromStr for Trace {
    type Err = ParseTraceError;

    /// Parses DRAMsim3-style text: `0xADDR READ|WRITE cycle [bytes]`
    /// per line; `bytes` defaults to one burst (32). Blank lines and
    /// `#` comments are skipped.
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut trace = Trace::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |detail: String| ParseTraceError { line: line_no, detail };
            let mut parts = line.split_whitespace();
            let addr_tok = parts.next().ok_or_else(|| err("missing address".into()))?;
            let addr = addr_tok
                .strip_prefix("0x")
                .or_else(|| addr_tok.strip_prefix("0X"))
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(|| err(format!("bad address {addr_tok:?}")))?;
            let kind = match parts.next() {
                Some("READ") | Some("read") => RequestKind::Read,
                Some("WRITE") | Some("write") => RequestKind::Write,
                other => return Err(err(format!("bad kind {other:?}"))),
            };
            let issue: f64 = parts
                .next()
                .ok_or_else(|| err("missing issue time".into()))?
                .parse()
                .map_err(|_| err("bad issue time".into()))?;
            let bytes: usize = match parts.next() {
                Some(tok) => tok.parse().map_err(|_| err(format!("bad size {tok:?}")))?,
                None => 32,
            };
            trace.push(Request::at_ns(issue, addr, kind, bytes));
        }
        Ok(trace)
    }
}

/// Byte totals over a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Total bytes read.
    pub read_bytes: usize,
    /// Total bytes written.
    pub write_bytes: usize,
}

impl TraceStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> usize {
        self.read_bytes + self.write_bytes
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests, {} B read, {} B written",
            self.requests, self.read_bytes, self.write_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    #[test]
    fn stream_splits_into_chunks() {
        let mut t = Trace::new();
        let end = t.push_stream(0.0, 0x100, RequestKind::Read, 100, 32);
        assert_eq!(end, 0x100 + 100);
        assert_eq!(t.len(), 4); // 32+32+32+4
        assert_eq!(t.requests()[3].bytes, 4);
        assert_eq!(t.stats().read_bytes, 100);
    }

    #[test]
    fn replay_completes_everything() {
        let mut t = Trace::new();
        t.push_stream(0.0, 0, RequestKind::Read, 4096, 256);
        t.push_stream(100.0, 1 << 20, RequestKind::Write, 2048, 256);
        let mut sim = DramSimulator::new(DramConfig::lpddr3_1600());
        let done = t.replay(&mut sim);
        assert_eq!(done.len(), t.len());
        assert_eq!(t.stats().total_bytes(), 6144);
    }

    #[test]
    fn text_round_trip() {
        let mut t = Trace::new();
        t.push(Request::at_ns(0.0, 0x1000, RequestKind::Read, 64));
        t.push(Request::at_ns(12.5, 0x2000, RequestKind::Write, 128));
        let text = t.to_text();
        let back: Trace = text.parse().expect("parses");
        assert_eq!(back, t);
    }

    #[test]
    fn parse_defaults_and_comments() {
        let text = "# DRAMsim3-style trace\n0x40 READ 0\n\n0x80 WRITE 100 256\n";
        let t: Trace = text.parse().expect("parses");
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0].bytes, 32); // default burst
        assert_eq!(t.requests()[1].bytes, 256);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "0x40 READ 0\nBADLINE".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 2);
        let err = "0x40 FROB 0".parse::<Trace>().unwrap_err();
        assert!(err.detail.contains("kind"));
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..4).map(|i| Request::new(i, i * 64, RequestKind::Read, 64)).collect();
        assert_eq!(t.len(), 4);
    }
}
