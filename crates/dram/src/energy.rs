//! DRAM energy accounting.

use crate::config::DramConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Energy breakdown for a simulated DRAM episode, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DramEnergy {
    /// Row activate + precharge energy.
    pub activate_nj: f64,
    /// Read burst energy (array + IO).
    pub read_nj: f64,
    /// Write burst energy (array + IO).
    pub write_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background/standby energy over the makespan.
    pub background_nj: f64,
}

impl DramEnergy {
    /// Builds a breakdown from event counts.
    pub fn from_counts(
        cfg: &DramConfig,
        activates: u64,
        refreshes: u64,
        read_bits: u64,
        write_bits: u64,
        makespan_ns: f64,
    ) -> Self {
        // A refresh internally activates every bank once.
        let refresh_nj = refreshes as f64 * cfg.banks as f64 * cfg.activate_energy_nj;
        Self {
            activate_nj: activates as f64 * cfg.activate_energy_nj,
            read_nj: read_bits as f64 * cfg.read_pj_per_bit / 1000.0,
            write_nj: write_bits as f64 * cfg.write_pj_per_bit / 1000.0,
            refresh_nj,
            background_nj: cfg.background_power_mw * 1e-3 * makespan_ns,
        }
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Average energy per bit moved, in picojoules (excluding
    /// background), given total bits.
    pub fn pj_per_bit(&self, total_bits: u64) -> f64 {
        if total_bits == 0 {
            return 0.0;
        }
        (self.activate_nj + self.read_nj + self.write_nj + self.refresh_nj) * 1000.0
            / total_bits as f64
    }
}

impl fmt::Display for DramEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "act {:.1} nJ, rd {:.1} nJ, wr {:.1} nJ, ref {:.1} nJ, bg {:.1} nJ (total {:.2} uJ)",
            self.activate_nj,
            self.read_nj,
            self.write_nj,
            self.refresh_nj,
            self.background_nj,
            self.total_nj() / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_convert_to_energy() {
        let cfg = DramConfig::lpddr3_1600();
        let e = DramEnergy::from_counts(&cfg, 10, 2, 8000, 4000, 1000.0);
        assert!((e.activate_nj - 15.0).abs() < 1e-9); // 10 * 1.5 nJ
        assert!((e.read_nj - 16.0).abs() < 1e-9); // 8000 bits * 2 pJ
        assert!((e.write_nj - 8.8).abs() < 1e-9); // 4000 * 2.2 pJ
        assert!((e.refresh_nj - 24.0).abs() < 1e-9); // 2 * 8 banks * 1.5
        assert!((e.background_nj - 60.0).abs() < 1e-9); // 60 mW * 1 us
        assert!(e.total_nj() > 100.0);
    }

    #[test]
    fn pj_per_bit_sane_for_bulk() {
        let cfg = DramConfig::lpddr3_1600();
        // 1 Mib sequential: one activate per 2 KiB row = 64 activates.
        let bits = 1u64 << 20;
        let e = DramEnergy::from_counts(&cfg, 64, 0, bits, 0, 0.0);
        let pj = e.pj_per_bit(bits);
        assert!(pj > 1.5 && pj < 4.0, "bulk pJ/bit = {pj}");
    }

    #[test]
    fn zero_bits_no_nan() {
        assert_eq!(DramEnergy::default().pj_per_bit(0), 0.0);
    }
}
