//! The memory controller / simulator front end.

use crate::bank::{AccessClass, Bank};
use crate::config::DramConfig;
use crate::energy::DramEnergy;
use crate::request::{Request, RequestId, RequestKind};
use pim_engine::{Component, Engine, EngineCtx, Event, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Completion record for one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The id returned by [`DramSimulator::enqueue`].
    pub id: RequestId,
    /// When the request became eligible.
    pub issue_ns: f64,
    /// When its first burst started service.
    pub start_ns: f64,
    /// When its last burst's data completed.
    pub finish_ns: f64,
    /// Read or write.
    pub kind: RequestKind,
    /// Total bytes transferred.
    pub bytes: usize,
}

impl CompletedRequest {
    /// Queueing + service latency.
    pub fn latency_ns(&self) -> f64 {
        self.finish_ns - self.issue_ns
    }
}

/// Aggregate counters of one controller (one channel), as reported in
/// closed-loop timing mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ChannelStats {
    /// Requests served.
    pub requests: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Row activations (row-buffer misses + conflicts).
    pub activates: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Data-bus occupancy, ns.
    pub busy_ns: f64,
    /// Completion time of the channel's last burst, ns.
    pub makespan_ns: f64,
}

impl ChannelStats {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Data-bus busy fraction of the channel's makespan.
    pub fn utilization(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        (self.busy_ns / self.makespan_ns).min(1.0)
    }

    /// Fraction of column accesses that hit the open row.
    pub fn row_hit_rate(&self) -> f64 {
        let accesses = self.activates + self.row_hits;
        if accesses == 0 {
            return 0.0;
        }
        self.row_hits as f64 / accesses as f64
    }
}

/// A cycle-approximate LPDDR3 memory controller.
///
/// Requests are served in a FR-FCFS-lite order: among eligible
/// requests the controller prefers row-buffer hits within a small
/// reorder window, otherwise oldest-first. Block requests are split
/// into bursts; banks pipeline while the shared data bus serializes —
/// so bulk sequential traffic approaches peak bandwidth while random
/// traffic pays activate/precharge latency, the two behaviours the
/// COMPASS weight-replacement schedule is sensitive to.
///
/// # Example
///
/// ```
/// use pim_dram::{DramConfig, DramSimulator, Request, RequestKind};
///
/// let mut sim = DramSimulator::new(DramConfig::lpddr3_1600());
/// // Stream 64 KiB of weights.
/// sim.enqueue(Request::new(0, 0, RequestKind::Read, 64 * 1024));
/// let done = sim.run_to_completion();
/// let seconds = done[0].finish_ns * 1e-9;
/// let gbps = 64.0 * 1024.0 / done[0].finish_ns; // bytes per ns
/// assert!(gbps > 4.0, "sequential stream should be near peak, got {gbps}");
/// ```
#[derive(Debug, Clone)]
pub struct DramSimulator {
    cfg: DramConfig,
    banks: Vec<Bank>,
    queue: VecDeque<(RequestId, Request)>,
    next_id: u64,
    bus_free_ns: f64,
    next_refresh_ns: f64,
    refreshes: u64,
    activates: u64,
    row_hits: u64,
    served: u64,
    data_busy_ns: f64,
    read_bits: u64,
    write_bits: u64,
    makespan_ns: f64,
    reorder_window: usize,
}

impl DramSimulator {
    /// Creates an idle simulator.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = vec![Bank::new(); cfg.banks];
        let next_refresh_ns = cfg.t_refi as f64 * cfg.cycle_ns();
        Self {
            cfg,
            banks,
            queue: VecDeque::new(),
            next_id: 0,
            bus_free_ns: 0.0,
            next_refresh_ns,
            refreshes: 0,
            activates: 0,
            row_hits: 0,
            served: 0,
            data_busy_ns: 0.0,
            read_bits: 0,
            write_bits: 0,
            makespan_ns: 0.0,
            reorder_window: 8,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Adds a request to the queue, returning its id.
    pub fn enqueue(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.queue.push_back((id, request));
        id
    }

    /// Serves every queued request, returning completions in service
    /// order.
    ///
    /// Time advances through a `pim-engine` event queue: each request
    /// is an arrival event at its issue time, and the controller
    /// drains everything that has arrived whenever an arrival fires —
    /// so requests become visible to the FR-FCFS pick in issue-time
    /// order, exactly as they would streaming out of the chip
    /// simulator.
    pub fn run_to_completion(&mut self) -> Vec<CompletedRequest> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        let mut engine: Engine<ControllerEvent> = Engine::new(0);
        let pending: Vec<(RequestId, Request)> = self.queue.drain(..).collect();
        let placeholder = DramSimulator::new(self.cfg.clone());
        let controller = ControllerComponent {
            sim: std::mem::replace(self, placeholder),
            done: Vec::with_capacity(pending.len()),
            latch: DrainLatch::default(),
        };
        let id = engine.add_component(controller);
        for (request_id, request) in pending {
            engine.schedule(
                SimTime::from_ns(request.issue_ns.max(0.0)),
                id,
                ControllerEvent::Arrive(request_id, request),
            );
        }
        engine.run_until_idle();
        let controller: ControllerComponent =
            engine.extract(id).expect("controller survives the run");
        *self = controller.sim;
        controller.done
    }

    /// Serves one request immediately, bypassing the queue and the
    /// FR-FCFS reorder window. The closed-loop front end uses this:
    /// requests arrive one engine event at a time (cores block on
    /// completion), so arrival order *is* service order and the
    /// completion's `finish_ns` feeds straight back into the chip's
    /// critical path.
    pub fn service_one(&mut self, request: Request) -> CompletedRequest {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.serve(id, request)
    }

    /// Serves everything currently queued, FR-FCFS order, returning
    /// the completions. Used by event-driven front ends that feed
    /// requests in as simulation time advances.
    pub fn service_pending(&mut self) -> Vec<CompletedRequest> {
        let mut done = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            let idx = self.pick_next();
            let (id, req) = self.queue.remove(idx).expect("index in range");
            done.push(self.serve(id, req));
        }
        done
    }

    /// FR-FCFS-lite: among the oldest `reorder_window` requests whose
    /// issue time has been reached, prefer a row-buffer hit; fall back
    /// to the globally oldest request.
    fn pick_next(&self) -> usize {
        let horizon = self
            .queue
            .iter()
            .take(self.reorder_window)
            .map(|(_, r)| r.issue_ns)
            .fold(f64::INFINITY, f64::min)
            .max(self.makespan_ns);
        let window = self.queue.len().min(self.reorder_window);
        for (i, (_, req)) in self.queue.iter().take(window).enumerate() {
            if req.issue_ns <= horizon {
                let (bank, row) = self.cfg.map_address(req.addr);
                if self.banks[bank].classify(row) == AccessClass::RowHit {
                    return i;
                }
            }
        }
        // Oldest eligible request (queue is FIFO by construction).
        0
    }

    fn serve(&mut self, id: RequestId, req: Request) -> CompletedRequest {
        let cyc = self.cfg.cycle_ns();
        let burst_time = self.cfg.t_ccd as f64 * cyc;
        let is_write = req.kind == RequestKind::Write;
        let mut t = req.issue_ns.max(0.0);
        let mut start_ns = f64::INFINITY;
        let mut finish_ns = t;
        let bursts = req.bytes.div_ceil(self.cfg.burst_bytes).max(1);
        if bursts > 64 {
            return self.serve_bulk(id, req, bursts);
        }
        for b in 0..bursts {
            let addr = req.addr + (b * self.cfg.burst_bytes) as u64;
            self.apply_refresh(t);
            let (bank_idx, row) = self.cfg.map_address(addr);
            let service_start = t.max(self.banks[bank_idx].ready_ns());
            start_ns = start_ns.min(service_start);
            let (data_ready, class) = self.banks[bank_idx].access(&self.cfg, t, row, is_write);
            if class != AccessClass::RowHit {
                self.activates += 1;
            } else {
                self.row_hits += 1;
            }
            // Shared data bus: one burst at a time.
            let bus_done = data_ready.max(self.bus_free_ns + burst_time);
            self.bus_free_ns = bus_done;
            finish_ns = bus_done;
            // Next burst of this request can issue immediately after
            // this one's column command; approximate by advancing to
            // the bus handoff minus the CAS latency floor.
            t = self.banks[bank_idx].ready_ns();
        }
        let bits = (req.bytes * 8) as u64;
        if is_write {
            self.write_bits += bits;
        } else {
            self.read_bits += bits;
        }
        self.served += 1;
        self.data_busy_ns += bursts as f64 * burst_time;
        self.makespan_ns = self.makespan_ns.max(finish_ns);
        CompletedRequest {
            id,
            issue_ns: req.issue_ns,
            start_ns: if start_ns.is_finite() { start_ns } else { req.issue_ns },
            finish_ns,
            kind: req.kind,
            bytes: req.bytes,
        }
    }

    /// Closed-form fast path for large sequential transfers (weight
    /// streams): per-burst simulation would dominate runtime, and for
    /// a sequential stream the shared data bus is the binding
    /// constraint once the first access has opened its row. Activate
    /// counts and refresh stalls are applied analytically, so energy
    /// and bandwidth match the per-burst path closely.
    fn serve_bulk(&mut self, id: RequestId, req: Request, bursts: usize) -> CompletedRequest {
        let cyc = self.cfg.cycle_ns();
        let burst_time = self.cfg.t_ccd as f64 * cyc;
        let is_write = req.kind == RequestKind::Write;
        let t = req.issue_ns.max(0.0);
        self.apply_refresh(t);
        // First access pays the usual bank latency.
        let (bank_idx, row) = self.cfg.map_address(req.addr);
        let service_start = t.max(self.banks[bank_idx].ready_ns());
        let (first_ready, class) = self.banks[bank_idx].access(&self.cfg, t, row, is_write);
        let first_activate = (class != crate::bank::AccessClass::RowHit) as u64;
        self.activates += first_activate;
        // Remaining rows each cost one activate (banks rotate, so the
        // activations hide behind the streaming data bus); every other
        // burst of the stream hits its open row.
        let rows_touched = (req.addr + req.bytes as u64 - 1) / self.cfg.row_bytes as u64
            - req.addr / self.cfg.row_bytes as u64;
        self.activates += rows_touched;
        self.row_hits += (bursts as u64).saturating_sub(first_activate + rows_touched);
        // Refresh stalls crossed during the stream.
        let stream_time = bursts as f64 * burst_time;
        let start_bus = first_ready.max(self.bus_free_ns + burst_time) - burst_time;
        let mut finish = start_bus + stream_time;
        let rfc_ns = self.cfg.t_rfc as f64 * cyc;
        while finish >= self.next_refresh_ns {
            let end = self.next_refresh_ns + rfc_ns;
            for bank in &mut self.banks {
                bank.refresh_until(end);
            }
            self.refreshes += 1;
            self.next_refresh_ns += self.cfg.t_refi as f64 * cyc;
            finish += rfc_ns;
        }
        self.bus_free_ns = finish;
        for bank in &mut self.banks {
            bank.refresh_until(finish); // stream occupied all banks; rows closed
        }
        let bits = (req.bytes * 8) as u64;
        if is_write {
            self.write_bits += bits;
        } else {
            self.read_bits += bits;
        }
        self.served += 1;
        self.data_busy_ns += stream_time;
        self.makespan_ns = self.makespan_ns.max(finish);
        CompletedRequest {
            id,
            issue_ns: req.issue_ns,
            start_ns: service_start,
            finish_ns: finish,
            kind: req.kind,
            bytes: req.bytes,
        }
    }

    /// All-bank refresh every tREFI: banks stall for tRFC and rows
    /// close.
    fn apply_refresh(&mut self, now_ns: f64) {
        let cyc = self.cfg.cycle_ns();
        while now_ns >= self.next_refresh_ns {
            let end = self.next_refresh_ns + self.cfg.t_rfc as f64 * cyc;
            for bank in &mut self.banks {
                bank.refresh_until(end);
            }
            self.refreshes += 1;
            self.next_refresh_ns += self.cfg.t_refi as f64 * cyc;
        }
    }

    /// Total simulated time (completion of the last burst so far).
    pub fn makespan_ns(&self) -> f64 {
        self.makespan_ns
    }

    /// Energy consumed so far (including background power over the
    /// makespan).
    pub fn energy(&self) -> DramEnergy {
        DramEnergy::from_counts(
            &self.cfg,
            self.activates,
            self.refreshes,
            self.read_bits,
            self.write_bits,
            self.makespan_ns,
        )
    }

    /// Row-buffer activate count (misses + conflicts).
    pub fn activates(&self) -> u64 {
        self.activates
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Aggregate counters for this controller.
    pub fn stats(&self) -> ChannelStats {
        ChannelStats {
            requests: self.served,
            read_bytes: self.read_bits / 8,
            write_bytes: self.write_bits / 8,
            activates: self.activates,
            row_hits: self.row_hits,
            busy_ns: self.data_busy_ns,
            makespan_ns: self.makespan_ns,
        }
    }
}

/// Coalesces same-instant arrivals into a single drain event, so
/// every request that lands at one timestamp is visible to the
/// FR-FCFS pick before any of them is served. Shared by the
/// controller's own event loop and the chip simulator's in-line DRAM
/// component — the batching granularity is defined here, once.
#[derive(Debug, Clone, Default)]
pub struct DrainLatch(bool);

impl DrainLatch {
    /// Marks an arrival; returns `true` when the caller must schedule
    /// a drain at the current instant (the first arrival of a batch).
    pub fn arm(&mut self) -> bool {
        !std::mem::replace(&mut self.0, true)
    }

    /// Clears the latch when the drain fires.
    pub fn release(&mut self) {
        self.0 = false;
    }
}

/// Events driving a [`DramSimulator`] on a `pim-engine` queue.
#[derive(Debug, Clone)]
enum ControllerEvent {
    /// A request becomes eligible at its issue time.
    Arrive(RequestId, Request),
    /// Serve everything that has arrived (scheduled once per arrival
    /// timestamp so same-time requests batch before the FR-FCFS pick).
    Drain,
}

struct ControllerComponent {
    sim: DramSimulator,
    done: Vec<CompletedRequest>,
    latch: DrainLatch,
}

impl Component<ControllerEvent> for ControllerComponent {
    fn on_event(
        &mut self,
        event: Event<ControllerEvent>,
        ctx: &mut EngineCtx<'_, ControllerEvent>,
    ) {
        match event.payload {
            ControllerEvent::Arrive(id, request) => {
                self.sim.queue.push_back((id, request));
                if self.latch.arm() {
                    ctx.schedule(ctx.now(), event.target, ControllerEvent::Drain);
                }
            }
            ControllerEvent::Drain => {
                self.latch.release();
                self.done.extend(self.sim.service_pending());
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> DramSimulator {
        DramSimulator::new(DramConfig::lpddr3_1600())
    }

    #[test]
    fn single_read_latency_is_reasonable() {
        let mut s = sim();
        s.enqueue(Request::new(0, 0, RequestKind::Read, 32));
        let done = s.run_to_completion();
        let lat = done[0].latency_ns();
        // tRCD + tCL + burst = (15 + 12 + 4) * 1.25 = 38.75 ns.
        assert!((lat - 38.75).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn sequential_stream_beats_random() {
        let mut seq = sim();
        for i in 0..256u64 {
            seq.enqueue(Request::new(0, i * 32, RequestKind::Read, 32));
        }
        let seq_end = seq.run_to_completion().last().unwrap().finish_ns;

        let mut rng_state = 12345u64;
        let mut random = sim();
        for _ in 0..256 {
            // xorshift addresses scattered over 64 MiB.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let addr = (rng_state % (64 * 1024 * 1024)) & !31;
            random.enqueue(Request::new(0, addr, RequestKind::Read, 32));
        }
        let rnd_end = random.run_to_completion().last().unwrap().finish_ns;
        assert!(
            rnd_end > 1.5 * seq_end,
            "random ({rnd_end}) should be much slower than sequential ({seq_end})"
        );
    }

    #[test]
    fn bulk_read_approaches_peak_bandwidth() {
        let mut s = sim();
        let bytes = 1 << 20; // 1 MiB
        s.enqueue(Request::new(0, 0, RequestKind::Read, bytes));
        let done = s.run_to_completion();
        let gbps = bytes as f64 / done[0].finish_ns;
        let peak = s.config().peak_bandwidth_gbps();
        assert!(gbps > 0.8 * peak, "bulk stream {gbps} GB/s vs peak {peak}");
    }

    #[test]
    fn refresh_fires_on_long_runs() {
        let mut s = sim();
        // Spread requests over > tREFI.
        let refi_ns = s.config().t_refi as f64 * s.config().cycle_ns();
        for i in 0..10u64 {
            s.enqueue(Request::at_ns(i as f64 * refi_ns, i * 32, RequestKind::Read, 32));
        }
        s.run_to_completion();
        assert!(s.refreshes >= 9, "refreshes {}", s.refreshes);
    }

    #[test]
    fn writes_are_tracked_separately() {
        let mut s = sim();
        s.enqueue(Request::new(0, 0, RequestKind::Write, 64));
        s.enqueue(Request::new(0, 4096, RequestKind::Read, 64));
        s.run_to_completion();
        assert_eq!(s.write_bits, 64 * 8);
        assert_eq!(s.read_bits, 64 * 8);
    }

    #[test]
    fn energy_grows_with_traffic() {
        let mut small = sim();
        small.enqueue(Request::new(0, 0, RequestKind::Read, 1024));
        small.run_to_completion();
        let mut big = sim();
        big.enqueue(Request::new(0, 0, RequestKind::Read, 1024 * 1024));
        big.run_to_completion();
        assert!(big.energy().total_nj() > 10.0 * small.energy().total_nj());
    }

    #[test]
    fn completions_cover_all_requests() {
        let mut s = sim();
        let ids: Vec<_> =
            (0..50u64).map(|i| s.enqueue(Request::new(i, i * 64, RequestKind::Read, 64))).collect();
        let done = s.run_to_completion();
        assert_eq!(done.len(), 50);
        let mut seen: Vec<_> = done.iter().map(|c| c.id).collect();
        seen.sort();
        assert_eq!(seen, ids);
        for c in &done {
            assert!(c.finish_ns >= c.start_ns);
            assert!(c.start_ns >= c.issue_ns);
        }
    }
}
