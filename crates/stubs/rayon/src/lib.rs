//! Offline polyfill of the `rayon` subset this workspace uses:
//! `into_par_iter().map(..).collect::<Vec<_>>()` over owned
//! collections, `par_iter().map(..).collect::<Vec<_>>()` over slices
//! (borrowed items, no per-item clone before fan-out), and
//! [`scope`]-based task spawning for fire-and-forget work that
//! overlaps with the caller.
//!
//! Scoped `std::thread` workers (bounded by [`current_num_threads`])
//! pull work in *guided chunks* from a shared queue: each grab takes
//! `remaining / (workers * 4)` items (clamped to `1..=64`), so large
//! inputs amortize the queue lock while the tail degrades to
//! one-at-a-time pulls and an expensive item never strands a pre-cut
//! chunk behind it. Each result is tagged with its input index and
//! the collection is sorted back to input order, so output ordering
//! matches sequential execution regardless of which worker ran what.
//!
//! The worker count follows `std::thread::available_parallelism()`
//! and can be overridden with the `PIM_THREADS` environment variable
//! (useful for oversubscribing narrow CI hosts or pinning benchmarks);
//! out-of-range values are clamped with a printed note.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound accepted from `PIM_THREADS`; beyond this the override
/// is clamped (std threads are not free, and no fan-out here wins
/// past a few hundred workers).
const MAX_THREADS: usize = 256;

/// Guided-chunk ceiling: one grab never takes more than this many
/// items, whatever the queue length.
const MAX_CHUNK: usize = 64;

/// The worker-pool width every fan-out in this crate uses:
/// `std::thread::available_parallelism()`, overridable via the
/// `PIM_THREADS` environment variable. Resolved once per process; a
/// clamped or unparsable override prints a one-time note.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let (threads, note) =
            resolve_threads(std::env::var("PIM_THREADS").ok().as_deref(), available);
        if let Some(note) = note {
            eprintln!("{note}");
        }
        threads
    })
}

/// Pure resolution of the `PIM_THREADS` override against the host's
/// available parallelism. Returns the worker count plus the note to
/// print when the override was clamped or ignored.
fn resolve_threads(raw: Option<&str>, available: usize) -> (usize, Option<String>) {
    let available = available.max(1);
    match raw.map(str::trim) {
        None | Some("") => (available, None),
        Some(text) => match text.parse::<usize>() {
            Ok(0) => (1, Some("note: PIM_THREADS=0 clamped to 1 worker thread".to_string())),
            Ok(n) if n > MAX_THREADS => (
                MAX_THREADS,
                Some(format!("note: PIM_THREADS={n} clamped to the {MAX_THREADS}-thread cap")),
            ),
            Ok(n) => (n, None),
            Err(_) => (
                available,
                Some(format!(
                    "note: PIM_THREADS={text:?} is not a thread count; \
                     using the host's {available}"
                )),
            ),
        },
    }
}

/// Converts a collection into a "parallel" iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The iterator type.
    type Iter;

    /// Consumes the collection.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` on a worker thread.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`], awaiting collection.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map across threads and gathers results in input order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        let threads = current_num_threads();
        let n = self.items.len();
        if threads <= 1 || n <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }
        // Dynamic load balancing with guided chunking: workers grab a
        // shrinking chunk of the remaining queue instead of owning a
        // pre-cut contiguous block, so uneven per-item costs spread
        // across threads while big inputs pay one lock per chunk, not
        // per item. The guard is dropped before `f` runs — items
        // execute concurrently, only the hand-off is serialized.
        let f = &self.f;
        let queue = Mutex::new(self.items.into_iter().enumerate());
        let workers = threads.min(n);
        let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        let mut chunk: Vec<(usize, U)> = Vec::new();
                        let mut grabbed: Vec<(usize, T)> = Vec::new();
                        loop {
                            {
                                let mut guard = queue.lock().expect("task queue poisoned");
                                let remaining = guard.len();
                                if remaining == 0 {
                                    break;
                                }
                                let take = (remaining / (workers * 4)).clamp(1, MAX_CHUNK);
                                grabbed.extend(guard.by_ref().take(take));
                            }
                            chunk.extend(grabbed.drain(..).map(|(i, item)| (i, f(item))));
                            done.append(&mut chunk);
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                tagged.extend(handle.join().expect("worker thread panicked"));
            }
        });
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, result)| result).collect()
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`], mirroring
/// rayon's `IntoParallelRefIterator`: `par_iter()` on a slice (or
/// anything that derefs to one, e.g. `Vec`) yields `&T` items, so
/// callers fan work out without cloning every element first.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Iterates the collection by reference.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

type ScopeTask<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

struct ScopeState<'env> {
    queue: VecDeque<ScopeTask<'env>>,
    /// Tasks currently executing on a worker (they may still spawn).
    running: usize,
    /// Set once the scope closure has returned: no further external
    /// spawns, workers drain and exit.
    closed: bool,
}

/// A task pool whose spawned work may borrow from the enclosing
/// stack frame, mirroring `rayon::Scope`. Tasks start running as soon
/// as a worker is free — concurrently with the code still executing
/// inside the [`scope`] closure — and may themselves spawn more
/// tasks.
pub struct Scope<'env> {
    state: Mutex<ScopeState<'env>>,
    signal: Condvar,
}

impl<'env> Scope<'env> {
    /// Queues `body` for execution on a scope worker. The closure
    /// receives the scope again so it can spawn follow-up work.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        let mut state = self.state.lock().expect("scope state poisoned");
        state.queue.push_back(Box::new(body));
        drop(state);
        self.signal.notify_one();
    }

    /// Worker loop: pull tasks until the scope is closed and fully
    /// drained (a running task may still enqueue more, so "drained"
    /// requires the queue empty *and* nothing running).
    fn work(&self) {
        loop {
            let task = {
                let mut state = self.state.lock().expect("scope state poisoned");
                loop {
                    if let Some(task) = state.queue.pop_front() {
                        state.running += 1;
                        break Some(task);
                    }
                    if state.closed && state.running == 0 {
                        break None;
                    }
                    state = self.signal.wait(state).expect("scope state poisoned");
                }
            };
            let Some(task) = task else {
                // Make termination observable to every sleeping peer.
                self.signal.notify_all();
                return;
            };
            task(self);
            let mut state = self.state.lock().expect("scope state poisoned");
            state.running -= 1;
            let drained = state.closed && state.running == 0 && state.queue.is_empty();
            drop(state);
            if drained {
                self.signal.notify_all();
            }
        }
    }
}

/// Runs `f` with a [`Scope`] whose spawned tasks execute on
/// [`current_num_threads`] worker threads *while `f` is still
/// running*, and returns `f`'s result once every task (including
/// transitively spawned ones) has finished. Mirrors `rayon::scope`.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let pool = Scope {
        state: Mutex::new(ScopeState { queue: VecDeque::new(), running: 0, closed: false }),
        signal: Condvar::new(),
    };
    std::thread::scope(|threads| {
        let workers: Vec<_> = (0..current_num_threads())
            .map(|_| {
                let pool = &pool;
                threads.spawn(move || pool.work())
            })
            .collect();
        let result = f(&pool);
        pool.state.lock().expect("scope state poisoned").closed = true;
        pool.signal.notify_all();
        for worker in workers {
            worker.join().expect("scope worker panicked");
        }
        result
    })
}

/// Glob import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{resolve_threads, MAX_THREADS};

    #[test]
    fn preserves_order() {
        let out: Vec<usize> =
            (0..1000).collect::<Vec<_>>().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows_and_preserves_order() {
        let items: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = items.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
        // Slices work too.
        let out: Vec<usize> = items[10..20].par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn handles_small_inputs() {
        let out: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn each_item_runs_exactly_once_despite_uneven_costs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        // Front-load the expensive items: under static contiguous
        // chunking they would pile onto the first worker; guided
        // pulling spreads them. Either way, every item must be mapped
        // exactly once and land at its input position.
        let out: Vec<usize> = (0..2057usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| {
                calls.fetch_add(1, Ordering::Relaxed);
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x * x
            })
            .collect();
        assert_eq!(calls.load(Ordering::Relaxed), 2057);
        assert_eq!(out, (0..2057usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn scope_runs_every_task() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        super::scope(|s| {
            for i in 0..100 {
                let seen = &seen;
                s.spawn(move |_| seen.lock().unwrap().push(i));
            }
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scope_tasks_may_spawn_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..10 {
                let count = &count;
                s.spawn(move |inner| {
                    count.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..3 {
                        inner.spawn(move |_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 10 + 10 * 3);
    }

    #[test]
    fn scope_tasks_overlap_with_the_closure_body() {
        // A spawned task must be able to complete while the scope
        // closure is still executing — that is the whole point of
        // speculative pipelining. The channel round-trip would
        // deadlock if tasks only started after the closure returned.
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let answered = super::scope(|s| {
            s.spawn(move |_| {
                tx.send(42usize).expect("receiver alive");
            });
            rx.recv_timeout(std::time::Duration::from_secs(10)).expect("task ran during closure")
        });
        assert_eq!(answered, 42);
    }

    #[test]
    fn scope_returns_the_closure_result() {
        let out = super::scope(|_| "done".to_string());
        assert_eq!(out, "done");
    }

    #[test]
    fn thread_override_resolution() {
        // No override (or blank): the host's parallelism wins.
        assert_eq!(resolve_threads(None, 8), (8, None));
        assert_eq!(resolve_threads(Some(""), 8), (8, None));
        assert_eq!(resolve_threads(Some("  "), 4), (4, None));
        // In-range override, including oversubscription, no note.
        assert_eq!(resolve_threads(Some("16"), 1), (16, None));
        assert_eq!(resolve_threads(Some(" 2 "), 8), (2, None));
        // Clamps print a note.
        let (n, note) = resolve_threads(Some("0"), 8);
        assert_eq!(n, 1);
        assert!(note.unwrap().contains("clamped"));
        let (n, note) = resolve_threads(Some("100000"), 8);
        assert_eq!(n, MAX_THREADS);
        assert!(note.unwrap().contains("clamped"));
        // Garbage falls back to the host with a note.
        let (n, note) = resolve_threads(Some("lots"), 6);
        assert_eq!(n, 6);
        assert!(note.unwrap().contains("not a thread count"));
    }
}
