//! Offline polyfill of the `rayon` subset this workspace uses:
//! `into_par_iter().map(..).collect::<Vec<_>>()` over owned
//! collections and `par_iter().map(..).collect::<Vec<_>>()` over
//! slices (borrowed items, no per-item clone before fan-out).
//!
//! Work is split into contiguous chunks across `std::thread::scope`
//! threads (one per available core), and results are concatenated in
//! input order, so output ordering matches sequential execution.

/// Converts a collection into a "parallel" iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The iterator type.
    type Iter;

    /// Consumes the collection.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` on a worker thread.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`], awaiting collection.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map across threads and gathers results in input order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let n = self.items.len();
        if threads <= 1 || n <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = self.items;
        while !items.is_empty() {
            let rest = items.split_off(chunk.min(items.len()));
            chunks.push(items);
            items = rest;
        }
        let mut results: Vec<Vec<U>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`], mirroring
/// rayon's `IntoParallelRefIterator`: `par_iter()` on a slice (or
/// anything that derefs to one, e.g. `Vec`) yields `&T` items, so
/// callers fan work out without cloning every element first.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Iterates the collection by reference.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Glob import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let out: Vec<usize> =
            (0..1000).collect::<Vec<_>>().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows_and_preserves_order() {
        let items: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = items.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
        // Slices work too.
        let out: Vec<usize> = items[10..20].par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn handles_small_inputs() {
        let out: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }
}
