//! Offline polyfill of the `rayon` subset this workspace uses:
//! `into_par_iter().map(..).collect::<Vec<_>>()` over owned
//! collections and `par_iter().map(..).collect::<Vec<_>>()` over
//! slices (borrowed items, no per-item clone before fan-out).
//!
//! Scoped `std::thread` workers (bounded by the available
//! parallelism) pull items one at a time from a shared queue, so an
//! expensive item never strands the rest of a pre-cut chunk behind
//! it. Each result is tagged with its input index and the collection
//! is sorted back to input order, so output ordering matches
//! sequential execution regardless of which worker ran what.

/// Converts a collection into a "parallel" iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The iterator type.
    type Iter;

    /// Consumes the collection.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` on a worker thread.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`], awaiting collection.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map across threads and gathers results in input order.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let n = self.items.len();
        if threads <= 1 || n <= 1 {
            let f = self.f;
            return self.items.into_iter().map(f).collect();
        }
        // Dynamic load balancing: workers pull the next item from a
        // shared queue instead of owning a pre-cut contiguous chunk,
        // so uneven per-item costs spread across threads. The guard
        // is dropped before `f` runs — items execute concurrently,
        // only the hand-off is serialized.
        let f = &self.f;
        let queue = std::sync::Mutex::new(self.items.into_iter().enumerate());
        let workers = threads.min(n);
        let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let Some((i, item)) = queue.lock().expect("task queue poisoned").next()
                            else {
                                break;
                            };
                            done.push((i, f(item)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                tagged.extend(handle.join().expect("worker thread panicked"));
            }
        });
        tagged.sort_by_key(|&(i, _)| i);
        tagged.into_iter().map(|(_, result)| result).collect()
    }
}

/// Borrowing counterpart of [`IntoParallelIterator`], mirroring
/// rayon's `IntoParallelRefIterator`: `par_iter()` on a slice (or
/// anything that derefs to one, e.g. `Vec`) yields `&T` items, so
/// callers fan work out without cloning every element first.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;

    /// Iterates the collection by reference.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

/// Glob import target mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let out: Vec<usize> =
            (0..1000).collect::<Vec<_>>().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows_and_preserves_order() {
        let items: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = items.par_iter().map(|s| s.len()).collect();
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
        // Slices work too.
        let out: Vec<usize> = items[10..20].par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn handles_small_inputs() {
        let out: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn each_item_runs_exactly_once_despite_uneven_costs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        // Front-load the expensive items: under static contiguous
        // chunking they would pile onto the first worker; dynamic
        // pulling spreads them. Either way, every item must be mapped
        // exactly once and land at its input position.
        let out: Vec<usize> = (0..257usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| {
                calls.fetch_add(1, Ordering::Relaxed);
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x * x
            })
            .collect();
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257usize).map(|x| x * x).collect::<Vec<_>>());
    }
}
