//! Offline polyfill of the `fxhash` crate subset this workspace uses:
//! [`FxHasher`], [`FxBuildHasher`], and the [`FxHashMap`] /
//! [`FxHashSet`] aliases.
//!
//! Implements the rustc "Fx" algorithm (rotate, xor, multiply by a
//! golden-ratio-derived constant, one word at a time). Unlike the
//! standard library's SipHash it is **not** DoS-resistant — which is
//! exactly right for the GA's memo tables: keys are short integer
//! vectors produced by the program itself, lookups sit on the fitness
//! hot path, and hashes must be cheap and deterministic across runs.
//! In an online environment, swap the real crate back in via
//! `Cargo.toml` only (see `crates/stubs/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio (same constant rustc uses for
/// 64-bit Fx hashing).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx streaming hasher: one rotate-xor-multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u32::from_le_bytes(word.try_into().expect("4-byte chunk")) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s (stateless, so every build is identical and
/// hashes are stable across processes and runs).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        let cuts: Vec<usize> = vec![3, 17, 42, 99];
        assert_eq!(hash_of(&cuts), hash_of(&cuts.clone()));
        assert_ne!(hash_of(&cuts), hash_of(&vec![3usize, 17, 42, 100]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<(usize, usize), &str> = FxHashMap::default();
        map.insert((0, 5), "segment");
        assert_eq!(map.get(&(0, 5)), Some(&"segment"));
        let mut set: FxHashSet<Vec<usize>> = FxHashSet::default();
        assert!(set.insert(vec![1, 2]));
        assert!(!set.insert(vec![1, 2]));
    }

    #[test]
    fn streams_and_one_shot_agree_on_word_boundaries() {
        // write() in 8-byte chunks must equal write_u64 per word.
        let mut a = FxHasher::default();
        a.write(&[1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]);
        let mut b = FxHasher::default();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
    }
}
