//! Offline polyfill of the `rand` APIs this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` / `gen_bool`, and
//! `SliceRandom::choose`.
//!
//! The generator is xoshiro256** seeded through splitmix64 — fast,
//! high quality, and fully deterministic for a given seed (which is
//! all the compiler's GA requires; there is no cryptographic use).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32);

/// Convenience sampling methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 high bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro
            // authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5..=5usize);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
