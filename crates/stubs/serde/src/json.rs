//! A small JSON value model and recursive-descent parser backing the
//! polyfilled `Serialize`/`Deserialize` traits.

use std::error::Error;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text so integers beyond f64 range
    /// survive round trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    detail: String,
}

impl JsonError {
    /// Creates an error with a free-form message.
    pub fn new(detail: impl Into<String>) -> Self {
        Self { detail: detail.into() }
    }

    /// Creates a type-mismatch error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.detail)
    }
}

impl Error for JsonError {}

/// Looks up a field of a JSON object.
pub fn field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, JsonError> {
    match value {
        Value::Obj(entries) => entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::new(format!("missing field {name:?}"))),
        other => Err(JsonError::expected("object", other)),
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError::new("unexpected end of input"));
    };
    match b {
        b'n' => expect_lit(bytes, pos, "null", Value::Null),
        b't' => expect_lit(bytes, pos, "true", Value::Bool(true)),
        b'f' => expect_lit(bytes, pos, "false", Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(JsonError::new(format!("bad array at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(JsonError::new(format!("bad object at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&bytes[start..*pos])
                .map_err(|_| JsonError::new("non-utf8 number"))?;
            Ok(Value::Num(raw.to_string()))
        }
        other => Err(JsonError::new(format!("unexpected byte {other:#x} at {pos}"))),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("expected {lit} at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|_| JsonError::new("non-utf8 string"))?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|_| JsonError::new("non-utf8 string"))?,
                );
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError::new("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("bad \\u escape"))?;
                        *pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                        );
                    }
                    other => return Err(JsonError::new(format!("bad escape {:?}", other as char))),
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err(JsonError::new("unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,null],"b":{"c":"x\ny"},"d":true}"#).unwrap();
        assert_eq!(field(&v, "d"), Ok(&Value::Bool(true)));
        let a = field(&v, "a").unwrap();
        assert_eq!(
            a,
            &Value::Arr(vec![Value::Num("1".into()), Value::Num("2.5".into()), Value::Null,])
        );
        let b = field(&v, "b").unwrap();
        assert_eq!(field(b, "c"), Ok(&Value::Str("x\ny".into())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"abc").is_err());
    }
}
