//! Offline polyfill of the `serde` facade.
//!
//! The build environment has no crates.io access, so this workspace
//! carries a minimal, API-compatible subset of serde: `Serialize` /
//! `Deserialize` traits (JSON-backed rather than format-generic),
//! derive macros, and the container/primitive impls the workspace
//! actually uses. `serde_json` in `crates/stubs/serde_json` provides
//! the familiar `to_string` / `from_str` entry points.
//!
//! The serialized form is ordinary JSON: structs become objects with
//! fields in declaration order (so output is byte-deterministic),
//! newtype structs are transparent, enums use external tagging —
//! matching real serde's defaults closely enough that swapping the
//! real crates back in is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{JsonError, Value};

/// A type that can render itself as JSON text.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// A type that can reconstruct itself from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Builds `Self` from `value`.
    fn deserialize_json(value: &Value) -> Result<Self, JsonError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
                match value {
                    Value::Num(raw) => raw
                        .parse::<$t>()
                        .map_err(|_| JsonError::new(format!(
                            "number {raw:?} out of range for {}", stringify!($t)
                        ))),
                    other => Err(JsonError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                // `{:?}` is the shortest representation that parses
                // back to the identical bit pattern.
                out.push_str(&format!("{:?}", self));
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
                match value {
                    Value::Num(raw) => raw
                        .parse::<$t>()
                        .map_err(|_| JsonError::new(format!("bad float {raw:?}"))),
                    other => Err(JsonError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(JsonError::expected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Arr(items) => items.iter().map(T::deserialize_json).collect(),
            other => Err(JsonError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        let items = Vec::<T>::deserialize_json(value)?;
        let len = items.len();
        items.try_into().map_err(|_| JsonError::new(format!("expected array of {N}, found {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::deserialize_json(&items[0])?, B::deserialize_json(&items[1])?))
            }
            other => Err(JsonError::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::deserialize_json(&items[0])?,
                B::deserialize_json(&items[1])?,
                C::deserialize_json(&items[2])?,
            )),
            other => Err(JsonError::expected("3-element array", other)),
        }
    }
}

/// Ranges serialize as `{"start":..,"end":..}`, like real serde.
impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"start\":");
        self.start.serialize_json(out);
        out.push_str(",\"end\":");
        self.end.serialize_json(out);
        out.push('}');
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        Ok(T::deserialize_json(json::field(value, "start")?)?
            ..T::deserialize_json(json::field(value, "end")?)?)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        T::deserialize_json(value).map(Box::new)
    }
}

/// Maps serialize as JSON objects; keys render through their own
/// `Serialize` impl and are stringified (so integer newtype keys work,
/// matching serde_json's behaviour for integer-keyed maps).
impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: Serialize,
    V: Serialize,
{
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut key = String::new();
            k.serialize_json(&mut key);
            if key.starts_with('"') {
                out.push_str(&key);
            } else {
                json::write_escaped(&key, out);
            }
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn deserialize_json(value: &Value) -> Result<Self, JsonError> {
        match value {
            Value::Obj(entries) => {
                let mut map = std::collections::BTreeMap::new();
                for (raw_key, v) in entries {
                    // Keys were stringified on the way out; re-parse
                    // the key text as a JSON scalar first, falling
                    // back to treating it as a plain string.
                    let key_value =
                        json::parse(raw_key).unwrap_or_else(|_| Value::Str(raw_key.clone()));
                    let key = K::deserialize_json(&key_value)
                        .or_else(|_| K::deserialize_json(&Value::Str(raw_key.clone())))?;
                    map.insert(key, V::deserialize_json(v)?);
                }
                Ok(map)
            }
            other => Err(JsonError::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut s = String::new();
        v.serialize_json(&mut s);
        let parsed = json::parse(&s).expect("parses");
        let back = T::deserialize_json(&parsed).expect("deserializes");
        assert_eq!(v, back, "round trip through {s}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(42usize);
        round_trip(-7i64);
        round_trip(u64::MAX);
        round_trip(2.5f64);
        round_trip(0.1f64);
        round_trip(1e300f64);
        round_trip(true);
        round_trip(String::from("hi \"there\"\n"));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(Some(5u8));
        round_trip(Option::<u8>::None);
        round_trip([1.5f64, 2.5]);
        round_trip((1usize, String::from("x")));
        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, vec![1.0f32, 2.0]);
        round_trip(m);
    }
}
