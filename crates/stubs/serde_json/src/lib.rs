//! Offline polyfill of the `serde_json` entry points used by this
//! workspace: [`to_string`] and [`from_str`], backed by the JSON
//! machinery in the polyfilled `serde` crate.

pub use serde::json::{JsonError as Error, Value};

/// Serializes `value` to a JSON string.
///
/// # Errors
///
/// Infallible for the types in this workspace; the `Result` mirrors
/// the real serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = serde::json::parse(text)?;
    T::deserialize_json(&value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn string_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
