//! Offline polyfill of `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Implements just enough of a derive to cover this workspace: plain
//! (non-generic) structs and enums with no `#[serde(...)]` attributes.
//! The item is parsed directly from the `proc_macro::TokenStream`
//! (neither `syn` nor `quote` is available offline) and the generated
//! impl is rendered as source text.
//!
//! Encoding rules (matching real serde's defaults):
//! * named-field struct -> object with fields in declaration order
//! * newtype struct -> transparent (the inner value)
//! * tuple struct -> array
//! * unit enum variant -> `"Name"`
//! * newtype enum variant -> `{"Name": value}`
//! * tuple enum variant -> `{"Name": [..]}`
//! * struct enum variant -> `{"Name": {..}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    render_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

enum Fields {
    Unit,
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (arity only).
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("derive polyfill does not support generic type {name}");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("cannot derive for {other} {name}"),
    }
}

/// Extracts field names from the token stream of a `{ .. }` struct
/// body. A field is an identifier followed by `:` at angle-bracket
/// depth zero; everything else (attributes, visibility, the type) is
/// skipped.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else { break };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {id}, found {other:?}"),
        }
        fields.push(id.to_string());
        // Skip the type up to the next comma at angle depth 0.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant body `( .. )`.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments desugar to attributes).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.next() else { break };
        let name = id.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                tokens.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(tuple_arity(g.stream()));
                tokens.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an explicit discriminant and the trailing comma.
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

/// Emits `out.push_str(..)` / field-serialize statements for an object
/// body `{"f1":..,"f2":..}` reading fields through `access` (e.g.
/// `&self.` or a pattern binding prefix).
fn object_body(fields: &[String], access: &dyn Fn(&str) -> String) -> String {
    let mut code = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            code.push_str("out.push(',');\n");
        }
        code.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::serialize_json({}, out);\n",
            access(f)
        ));
    }
    code.push_str("out.push('}');\n");
    code
}

fn render_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "out.push_str(\"null\");".to_string(),
                Fields::Named(fields) => object_body(fields, &|f| format!("&self.{f}")),
                Fields::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
                Fields::Tuple(n) => {
                    let mut code = String::from("out.push('[');\n");
                    for i in 0..*n {
                        if i > 0 {
                            code.push_str("out.push(',');\n");
                        }
                        code.push_str(&format!(
                            "::serde::Serialize::serialize_json(&self.{i}, out);\n"
                        ));
                    }
                    code.push_str("out.push(']');\n");
                    code
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\n{body}\n}}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "Self::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let bindings = fields.join(", ");
                        let body = object_body(fields, &|f| f.to_string());
                        arms.push_str(&format!(
                            "Self::{vname} {{ {bindings} }} => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":\");\n{body}\
                             out.push('}}');\n}}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let bindings: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut body = String::new();
                        if *n == 1 {
                            body.push_str("::serde::Serialize::serialize_json(f0, out);\n");
                        } else {
                            body.push_str("out.push('[');\n");
                            for (i, b) in bindings.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            body.push_str("out.push(']');\n");
                        }
                        arms.push_str(&format!(
                            "Self::{vname}({}) => {{\n\
                             out.push_str(\"{{\\\"{vname}\\\":\");\n{body}\
                             out.push('}}');\n}}\n",
                            bindings.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_json(&self, out: &mut String) {{\nmatch self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

/// Emits the `Ok(..)` constructor expression for a set of named fields
/// read from the object `src`.
fn named_constructor(path: &str, fields: &[String], src: &str) -> String {
    let mut code = format!("Ok({path} {{\n");
    for f in fields {
        code.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize_json(\
             ::serde::json::field({src}, \"{f}\")?)?,\n"
        ));
    }
    code.push_str("})");
    code
}

fn tuple_constructor(path: &str, arity: usize, src: &str) -> String {
    let mut code = format!(
        "match {src} {{\n::serde::json::Value::Arr(items) if items.len() == {arity} => \
         Ok({path}(\n"
    );
    for i in 0..arity {
        code.push_str(&format!("::serde::Deserialize::deserialize_json(&items[{i}])?,\n"));
    }
    code.push_str(&format!(
        ")),\nother => Err(::serde::json::JsonError::expected(\
         \"{arity}-element array\", other)),\n}}"
    ));
    code
}

fn render_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("let _ = value; Ok({name})"),
            Fields::Named(fields) => named_constructor(name, fields, "value"),
            Fields::Tuple(1) => {
                format!("Ok({name}(::serde::Deserialize::deserialize_json(value)?))")
            }
            Fields::Tuple(n) => tuple_constructor(name, *n, "value"),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Named(fields) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {},\n",
                            named_constructor(&format!("{name}::{vname}"), fields, "payload")
                        ));
                    }
                    Fields::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize_json(payload)?)),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {},\n",
                            tuple_constructor(&format!("{name}::{vname}"), *n, "payload")
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::json::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::json::JsonError::new(\
                 format!(\"unknown variant {{other:?}} of {name}\"))),\n}},\n\
                 ::serde::json::Value::Obj(entries) if entries.len() == 1 => {{\n\
                 let (variant, payload) = &entries[0];\n\
                 match variant.as_str() {{\n{payload_arms}\
                 other => Err(::serde::json::JsonError::new(\
                 format!(\"unknown variant {{other:?}} of {name}\"))),\n}}\n}},\n\
                 other => Err(::serde::json::JsonError::expected(\"{name} variant\", other)),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(value: &::serde::json::Value) \
         -> Result<Self, ::serde::json::JsonError> {{\n{body}\n}}\n}}"
    )
}
