//! Offline polyfill of the `criterion` benchmarking surface this
//! workspace uses: `criterion_group!`/`criterion_main!`, benchmark
//! groups, `bench_function`, `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`.
//!
//! Timing is a simple calibrated loop (warm-up, then enough
//! iterations to fill ~200 ms) reporting mean wall time per
//! iteration. It is not statistically rigorous like real criterion,
//! but gives stable comparative numbers and exercises the same code
//! paths.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Formats a per-iteration duration in adaptive units.
fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`: a short warm-up sizes the batch, then the batch
    /// runs long enough for a stable mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: find the per-iteration cost scale.
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters = 0u64;
        let warmup_start = Instant::now();
        while Instant::now() < warmup_deadline {
            std_black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target = 0.2f64; // seconds of measurement
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        let elapsed = start.elapsed().as_secs_f64();
        self.mean_ns = elapsed * 1e9 / iters as f64;
        self.iters = iters;
    }
}

/// Benchmark identifier, e.g. `from_parameter(64)`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }

    /// An id with a function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes the CLI benchname filter (plus harness flags)
        // straight to the bench binary.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Self { filters }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if !self.enabled(name) {
            return;
        }
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b);
        println!("{name:<50} {:>12} /iter  ({} iters)", fmt_time(b.mean_ns), b.iters);
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
