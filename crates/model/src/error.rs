//! Error types for network construction and validation.

use crate::graph::NodeId;
use crate::shape::TensorShape;
use std::error::Error;
use std::fmt;

/// Error produced while building or validating a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetworkError {
    /// A node references an input id that does not exist.
    UnknownInput {
        /// The node whose input list is invalid.
        node: NodeId,
        /// The dangling input id.
        input: NodeId,
    },
    /// A node has the wrong number of inputs for its layer kind.
    WrongArity {
        /// The offending node.
        node: NodeId,
        /// What the layer kind requires (minimum).
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// Input shapes are inconsistent with the layer semantics (e.g.
    /// mismatched `Add` operands or conv channel mismatch).
    ShapeMismatch {
        /// The offending node.
        node: NodeId,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A pooling or convolution window does not fit its input.
    WindowTooLarge {
        /// The offending node.
        node: NodeId,
        /// The input shape the window was applied to.
        input_shape: TensorShape,
    },
    /// The graph contains no nodes.
    Empty,
    /// The graph contains a cycle (inputs must precede consumers).
    Cyclic,
}

impl fmt::Display for BuildNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetworkError::UnknownInput { node, input } => {
                write!(f, "node {node} references unknown input {input}")
            }
            BuildNetworkError::WrongArity { node, expected, actual } => {
                write!(f, "node {node} requires at least {expected} input(s), got {actual}")
            }
            BuildNetworkError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at node {node}: {detail}")
            }
            BuildNetworkError::WindowTooLarge { node, input_shape } => {
                write!(f, "window at node {node} exceeds input shape {input_shape}")
            }
            BuildNetworkError::Empty => write!(f, "network has no nodes"),
            BuildNetworkError::Cyclic => write!(f, "network graph contains a cycle"),
        }
    }
}

impl Error for BuildNetworkError {}
