//! Functional (reference) execution of network graphs.
//!
//! COMPASS never needs weight *values* — it optimizes latency and
//! energy — but a compiler repository needs executable semantics for
//! its IR: to validate shape inference against real data flow, to
//! study the paper's 4-bit quantization operating point (see
//! [`crate::quant`]), and to let downstream users check that a
//! partitioned execution computes the same function as the original
//! graph.
//!
//! The engine is a straightforward f32 interpreter: channel-major
//! dense tensors, im2col-free direct convolution. It is meant for
//! correctness, not speed.

use crate::graph::{Network, NodeId};
use crate::layer::{LayerKind, PoolKind};
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A dense channel-major activation tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: TensorShape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::DataSize`] if `data.len()` does not match
    /// the shape's element count.
    pub fn new(shape: TensorShape, data: Vec<f32>) -> Result<Self, ExecError> {
        if data.len() != shape.elements() {
            return Err(ExecError::DataSize { expected: shape.elements(), actual: data.len() });
        }
        Ok(Self { shape, data })
    }

    /// An all-zero tensor.
    pub fn zeros(shape: TensorShape) -> Self {
        Self { shape, data: vec![0.0; shape.elements()] }
    }

    /// A tensor filled by `f(c, h, w)`.
    pub fn from_fn(shape: TensorShape, mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(shape.elements());
        for c in 0..shape.channels {
            for h in 0..shape.height {
                for w in 0..shape.width {
                    data.push(f(c, h, w));
                }
            }
        }
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> TensorShape {
        self.shape
    }

    /// The raw data, channel-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Element accessor (`c`, `h`, `w`).
    pub fn at(&self, c: usize, h: usize, w: usize) -> f32 {
        self.data[(c * self.shape.height + h) * self.shape.width + w]
    }

    fn at_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f32 {
        &mut self.data[(c * self.shape.height + h) * self.shape.width + w]
    }

    /// Zero-padded accessor: out-of-range coordinates read 0.
    fn at_padded(&self, c: usize, h: isize, w: isize) -> f32 {
        if h < 0 || w < 0 || h as usize >= self.shape.height || w as usize >= self.shape.width {
            0.0
        } else {
            self.at(c, h as usize, w as usize)
        }
    }
}

/// Weight values for the weighted layers of a network.
///
/// Conv weights are indexed `[out_ch][in_ch][kh][kw]` flattened;
/// linear weights `[out][in]` flattened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Weights {
    tensors: BTreeMap<NodeId, Vec<f32>>,
}

impl Weights {
    /// Creates an empty weight store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deterministically pseudo-random weights for every weighted
    /// layer (useful for tests; values in roughly ±0.5, scaled by
    /// fan-in like standard initializers).
    pub fn synthetic(network: &Network, seed: u64) -> Self {
        let mut tensors = BTreeMap::new();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        for node in network.weighted_nodes() {
            let count = node.kind.weight_params();
            let (rows, _) = node.kind.matrix_dims().expect("weighted");
            let scale = 1.0 / (rows as f32).sqrt();
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                // xorshift64*
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let r = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1u64 << 24) as f32;
                values.push((r - 0.5) * 2.0 * scale);
            }
            tensors.insert(node.id, values);
        }
        Self { tensors }
    }

    /// Sets a layer's weights.
    ///
    /// # Errors
    ///
    /// [`ExecError::WeightSize`] if the count does not match the
    /// layer's parameter count, [`ExecError::NotWeighted`] for
    /// weight-free layers.
    pub fn set(
        &mut self,
        network: &Network,
        node: NodeId,
        values: Vec<f32>,
    ) -> Result<(), ExecError> {
        let kind = &network.node(node).kind;
        if !kind.is_weighted() {
            return Err(ExecError::NotWeighted(node));
        }
        let expected = kind.weight_params();
        if values.len() != expected {
            return Err(ExecError::WeightSize { node, expected, actual: values.len() });
        }
        self.tensors.insert(node, values);
        Ok(())
    }

    /// A layer's weights, if set.
    pub fn get(&self, node: NodeId) -> Option<&[f32]> {
        self.tensors.get(&node).map(Vec::as_slice)
    }

    /// Mutable access for in-place transforms (quantization).
    pub fn get_mut(&mut self, node: NodeId) -> Option<&mut Vec<f32>> {
        self.tensors.get_mut(&node)
    }

    /// Iterates `(node, weights)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[f32])> {
        self.tensors.iter().map(|(&n, v)| (n, v.as_slice()))
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Tensor data length does not match its shape.
    DataSize {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// Weight vector length mismatch.
    WeightSize {
        /// The layer.
        node: NodeId,
        /// Expected parameter count.
        expected: usize,
        /// Provided count.
        actual: usize,
    },
    /// Weights missing for a weighted layer.
    MissingWeights(NodeId),
    /// Tried to set weights on a weight-free layer.
    NotWeighted(NodeId),
    /// Input tensor shape does not match the network's input node.
    InputShape {
        /// Shape the network expects.
        expected: TensorShape,
        /// Shape provided.
        actual: TensorShape,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DataSize { expected, actual } => {
                write!(f, "tensor data has {actual} elements, shape needs {expected}")
            }
            ExecError::WeightSize { node, expected, actual } => {
                write!(f, "weights for {node}: got {actual}, need {expected}")
            }
            ExecError::MissingWeights(node) => write!(f, "no weights set for {node}"),
            ExecError::NotWeighted(node) => write!(f, "{node} has no weights"),
            ExecError::InputShape { expected, actual } => {
                write!(f, "input shape {actual} does not match network input {expected}")
            }
        }
    }
}

impl Error for ExecError {}

/// Executes `network` on one input sample, returning every node's
/// output (index = node id).
///
/// # Errors
///
/// Fails if weights are missing for some layer or the input shape is
/// wrong.
pub fn execute(
    network: &Network,
    weights: &Weights,
    input: &Tensor,
) -> Result<Vec<Tensor>, ExecError> {
    let mut outputs: Vec<Tensor> = Vec::with_capacity(network.len());
    for node in network.nodes() {
        let value = match &node.kind {
            LayerKind::Input { shape } => {
                if input.shape() != *shape {
                    return Err(ExecError::InputShape { expected: *shape, actual: input.shape() });
                }
                input.clone()
            }
            LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding } => {
                let x = &outputs[node.inputs[0].index()];
                let w = weights.get(node.id).ok_or(ExecError::MissingWeights(node.id))?;
                conv2d(
                    x,
                    w,
                    *in_channels,
                    *out_channels,
                    *kernel,
                    *stride,
                    *padding,
                    node.output_shape,
                )
            }
            LayerKind::Linear { in_features, out_features } => {
                let x = &outputs[node.inputs[0].index()];
                let w = weights.get(node.id).ok_or(ExecError::MissingWeights(node.id))?;
                linear(x, w, *in_features, *out_features)
            }
            LayerKind::Pool2d { kind, kernel, stride, padding } => pool2d(
                &outputs[node.inputs[0].index()],
                *kind,
                *kernel,
                *stride,
                *padding,
                node.output_shape,
            ),
            LayerKind::GlobalAvgPool => {
                let x = &outputs[node.inputs[0].index()];
                let spatial = x.shape().spatial() as f32;
                Tensor::from_fn(node.output_shape, |c, _, _| {
                    let mut sum = 0.0;
                    for h in 0..x.shape().height {
                        for w in 0..x.shape().width {
                            sum += x.at(c, h, w);
                        }
                    }
                    sum / spatial
                })
            }
            LayerKind::ReLU => {
                let x = &outputs[node.inputs[0].index()];
                Tensor::from_fn(node.output_shape, |c, h, w| x.at(c, h, w).max(0.0))
            }
            LayerKind::BatchNorm2d { .. } => {
                // Inference-time BN folds into scale/shift; identity
                // here (folded parameters live with the conv).
                outputs[node.inputs[0].index()].clone()
            }
            LayerKind::Add => {
                let a = &outputs[node.inputs[0].index()];
                let b = &outputs[node.inputs[1].index()];
                Tensor::from_fn(node.output_shape, |c, h, w| a.at(c, h, w) + b.at(c, h, w))
            }
            LayerKind::Concat => {
                let mut out = Tensor::zeros(node.output_shape);
                let mut c_off = 0;
                for &input_id in &node.inputs {
                    let x = &outputs[input_id.index()];
                    for c in 0..x.shape().channels {
                        for h in 0..x.shape().height {
                            for w in 0..x.shape().width {
                                *out.at_mut(c_off + c, h, w) = x.at(c, h, w);
                            }
                        }
                    }
                    c_off += x.shape().channels;
                }
                out
            }
            LayerKind::Flatten => {
                let x = &outputs[node.inputs[0].index()];
                Tensor { shape: node.output_shape, data: x.data.clone() }
            }
            LayerKind::Softmax => {
                let x = &outputs[node.inputs[0].index()];
                let max = x.data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = x.data.iter().map(|v| (v - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                Tensor { shape: node.output_shape, data: exps.iter().map(|e| e / sum).collect() }
            }
        };
        debug_assert_eq!(value.shape(), node.output_shape, "{}", node.name);
        outputs.push(value);
    }
    Ok(outputs)
}

#[allow(clippy::too_many_arguments)]
fn conv2d(
    x: &Tensor,
    w: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    out_shape: TensorShape,
) -> Tensor {
    let mut out = Tensor::zeros(out_shape);
    for oc in 0..out_channels {
        for oh in 0..out_shape.height {
            for ow in 0..out_shape.width {
                let mut acc = 0.0;
                for ic in 0..in_channels {
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            let ih = (oh * stride + kh) as isize - padding as isize;
                            let iw = (ow * stride + kw) as isize - padding as isize;
                            let weight = w[((oc * in_channels + ic) * kernel + kh) * kernel + kw];
                            acc += weight * x.at_padded(ic, ih, iw);
                        }
                    }
                }
                *out.at_mut(oc, oh, ow) = acc;
            }
        }
    }
    out
}

fn linear(x: &Tensor, w: &[f32], in_features: usize, out_features: usize) -> Tensor {
    let mut data = vec![0.0f32; out_features];
    for (o, out) in data.iter_mut().enumerate() {
        let row = &w[o * in_features..(o + 1) * in_features];
        *out = row.iter().zip(&x.data).map(|(a, b)| a * b).sum();
    }
    Tensor { shape: TensorShape::features(out_features), data }
}

fn pool2d(
    x: &Tensor,
    kind: PoolKind,
    kernel: usize,
    stride: usize,
    padding: usize,
    out_shape: TensorShape,
) -> Tensor {
    Tensor::from_fn(out_shape, |c, oh, ow| {
        let mut best = f32::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for kh in 0..kernel {
            for kw in 0..kernel {
                let ih = (oh * stride + kh) as isize - padding as isize;
                let iw = (ow * stride + kw) as isize - padding as isize;
                let v = x.at_padded(c, ih, iw);
                best = best.max(v);
                sum += v;
                count += 1;
            }
        }
        match kind {
            PoolKind::Max => best,
            PoolKind::Avg => sum / count as f32,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::zoo;

    #[test]
    fn identity_conv_preserves_input() {
        // 1x1 conv with identity weights.
        let mut b = NetworkBuilder::new("id");
        let input = b.input(TensorShape::new(2, 3, 3));
        let conv = b.conv2d("c", input, 2, 1, 1, 0);
        let net = b.build().unwrap();
        let mut weights = Weights::new();
        // Identity 2x2 channel mixing.
        weights.set(&net, conv, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let x = Tensor::from_fn(TensorShape::new(2, 3, 3), |c, h, w| (c * 9 + h * 3 + w) as f32);
        let outs = execute(&net, &weights, &x).unwrap();
        assert_eq!(outs[conv.index()], x);
    }

    #[test]
    fn conv_matches_hand_computation() {
        // Single channel 3x3 input, 2x2 kernel of ones, stride 1, no pad:
        // each output = sum of a 2x2 window.
        let mut b = NetworkBuilder::new("sum");
        let input = b.input(TensorShape::new(1, 3, 3));
        let conv = b.conv2d("c", input, 1, 2, 1, 0);
        let net = b.build().unwrap();
        let mut weights = Weights::new();
        weights.set(&net, conv, vec![1.0; 4]).unwrap();
        let x = Tensor::new(
            TensorShape::new(1, 3, 3),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let outs = execute(&net, &weights, &x).unwrap();
        assert_eq!(outs[conv.index()].data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn relu_pool_linear_softmax_chain() {
        let mut b = NetworkBuilder::new("chain");
        let input = b.input(TensorShape::new(1, 4, 4));
        let r = b.relu("r", input);
        let p = b.max_pool2d("p", r, 2, 2);
        let f = b.flatten("f", p);
        let l = b.linear("l", f, 2);
        let s = b.softmax("s", l);
        let net = b.build().unwrap();
        let mut weights = Weights::new();
        // linear: out0 = sum(x), out1 = -sum(x)
        weights.set(&net, l, vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0]).unwrap();
        let x = Tensor::from_fn(TensorShape::new(1, 4, 4), |_, h, w| (h * 4 + w) as f32 - 8.0);
        let outs = execute(&net, &weights, &x).unwrap();
        let prob = &outs[s.index()];
        assert!((prob.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // max-pool of the positive-heavy map makes out0 > out1.
        assert!(prob.data()[0] > prob.data()[1]);
    }

    #[test]
    fn residual_add_and_concat() {
        let net = zoo::tiny_resnet();
        let weights = Weights::synthetic(&net, 1);
        let x =
            Tensor::from_fn(TensorShape::new(3, 32, 32), |c, h, w| ((c + h + w) % 7) as f32 / 7.0);
        let outs = execute(&net, &weights, &x).unwrap();
        let last = outs.last().unwrap();
        assert_eq!(last.shape(), TensorShape::features(10));
        assert!((last.data().iter().sum::<f32>() - 1.0).abs() < 1e-5, "softmax sums to 1");
    }

    #[test]
    fn squeezenet_executes_end_to_end() {
        // Full concat-heavy network on a reduced input through the
        // same code paths (use the real 224 input: ~1 s in debug is
        // too slow, so test fire modules through tiny shapes instead).
        let mut b = NetworkBuilder::new("mini_fire");
        let input = b.input(TensorShape::new(4, 8, 8));
        let s = b.conv2d("squeeze", input, 2, 1, 1, 0);
        let sr = b.relu("squeeze_relu", s);
        let e1 = b.conv2d("e1", sr, 3, 1, 1, 0);
        let e3 = b.conv2d("e3", sr, 3, 3, 1, 1);
        let cat = b.concat("cat", vec![e1, e3]);
        let gap = b.global_avg_pool("gap", cat);
        let net = b.build().unwrap();
        let weights = Weights::synthetic(&net, 2);
        let x = Tensor::from_fn(TensorShape::new(4, 8, 8), |c, h, w| {
            (c as f32) - (h as f32) * 0.1 + (w as f32) * 0.01
        });
        let outs = execute(&net, &weights, &x).unwrap();
        assert_eq!(outs[gap.index()].shape(), TensorShape::features(6));
    }

    #[test]
    fn missing_weights_error() {
        let net = zoo::tiny_cnn();
        let weights = Weights::new();
        let x = Tensor::zeros(TensorShape::new(3, 32, 32));
        assert!(matches!(execute(&net, &weights, &x), Err(ExecError::MissingWeights(_))));
    }

    #[test]
    fn wrong_input_shape_error() {
        let net = zoo::tiny_cnn();
        let weights = Weights::synthetic(&net, 3);
        let x = Tensor::zeros(TensorShape::new(3, 16, 16));
        assert!(matches!(execute(&net, &weights, &x), Err(ExecError::InputShape { .. })));
    }

    #[test]
    fn weight_setters_validate() {
        let net = zoo::tiny_cnn();
        let mut weights = Weights::new();
        let conv0 = net.weighted_nodes().next().unwrap().id;
        assert!(matches!(
            weights.set(&net, conv0, vec![0.0; 3]),
            Err(ExecError::WeightSize { .. })
        ));
        let relu = net.nodes().iter().find(|n| n.kind == LayerKind::ReLU).unwrap().id;
        assert!(matches!(weights.set(&net, relu, vec![]), Err(ExecError::NotWeighted(_))));
    }

    #[test]
    fn tensor_constructors_validate() {
        assert!(Tensor::new(TensorShape::new(1, 2, 2), vec![0.0; 3]).is_err());
        let t = Tensor::from_fn(TensorShape::new(1, 2, 2), |_, h, w| (h + w) as f32);
        assert_eq!(t.at(0, 1, 1), 2.0);
    }
}
