//! Graphviz export for network graphs.

use crate::graph::Network;

/// Renders `network` in Graphviz dot syntax: weighted (crossbar-
/// mapped) layers are drawn as boxes, everything else as ellipses.
///
/// # Example
///
/// ```
/// use pim_model::{dot::to_dot, zoo};
///
/// let dot = to_dot(&zoo::tiny_resnet());
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("b0_add"));
/// ```
pub fn to_dot(network: &Network) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", network.name()));
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n");
    for node in network.nodes() {
        let shape = if node.kind.is_weighted() { "box" } else { "ellipse" };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{}\\n{}\" shape={}];\n",
            node.id.index(),
            node.name,
            node.kind,
            node.output_shape,
            shape,
        ));
    }
    for node in network.nodes() {
        for input in &node.inputs {
            out.push_str(&format!("  n{} -> n{};\n", input.index(), node.id.index()));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn dot_lists_every_node_and_edge() {
        let net = zoo::tiny_cnn();
        let dot = to_dot(&net);
        for node in net.nodes() {
            assert!(dot.contains(&format!("n{} [", node.id.index())));
        }
        let edges: usize = net.nodes().iter().map(|n| n.inputs.len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
    }

    #[test]
    fn weighted_nodes_are_boxes() {
        let dot = to_dot(&zoo::tiny_cnn());
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }

    #[test]
    fn output_is_balanced_braces() {
        let dot = to_dot(&zoo::squeezenet());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
