//! Weight quantization to the paper's 4-bit operating point.
//!
//! The paper assumes 4-bit weights and activations "to faithfully
//! model power consumption based on a recent CIM array which
//! incorporates 4b quantization" (§IV-A2, citing Jia et al.). This
//! module provides symmetric per-layer uniform quantization so the
//! functional engine ([`crate::exec`]) can run the *quantized* network
//! and quantify the numerical effect of the operating point.

use crate::exec::Weights;
use crate::graph::{Network, NodeId};
use crate::stats::Precision;
use serde::{Deserialize, Serialize};

/// Per-layer quantization parameters (symmetric uniform).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerQuant {
    /// The layer.
    pub node: NodeId,
    /// Scale: real value = scale × integer code.
    pub scale: f32,
    /// Integer code range: codes lie in `[-q_max, q_max]`.
    pub q_max: i32,
}

/// Result of quantizing a weight store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantReport {
    /// Per-layer parameters.
    pub layers: Vec<LayerQuant>,
    /// Root-mean-square quantization error across all weights.
    pub rms_error: f64,
    /// Largest absolute per-weight error.
    pub max_error: f64,
}

/// Symmetric per-layer quantization levels for `precision`:
/// `2^(bits-1) - 1` positive codes (e.g. 7 for int4).
pub fn q_max(precision: Precision) -> i32 {
    (1 << (precision.bits() - 1)) - 1
}

/// Quantizes `weights` in place to `precision` (values snap to the
/// uniform grid `scale × k`), returning per-layer parameters and
/// aggregate error statistics.
pub fn quantize_weights(
    network: &Network,
    weights: &mut Weights,
    precision: Precision,
) -> QuantReport {
    let q = q_max(precision);
    let mut layers = Vec::new();
    let mut sq_err = 0.0f64;
    let mut max_err = 0.0f64;
    let mut count = 0usize;
    for node in network.weighted_nodes() {
        let Some(values) = weights.get_mut(node.id) else { continue };
        let absmax = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if absmax == 0.0 { 1.0 } else { absmax / q as f32 };
        for v in values.iter_mut() {
            let code = (*v / scale).round().clamp(-(q as f32), q as f32);
            let dequant = code * scale;
            let err = (*v - dequant) as f64;
            sq_err += err * err;
            max_err = max_err.max(err.abs());
            count += 1;
            *v = dequant;
        }
        layers.push(LayerQuant { node: node.id, scale, q_max: q });
    }
    QuantReport {
        layers,
        rms_error: if count == 0 { 0.0 } else { (sq_err / count as f64).sqrt() },
        max_error: max_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, Tensor, Weights};
    use crate::shape::TensorShape;
    use crate::zoo;

    #[test]
    fn q_max_per_precision() {
        assert_eq!(q_max(Precision::Int1), 0); // degenerate: sign only
        assert_eq!(q_max(Precision::Int2), 1);
        assert_eq!(q_max(Precision::Int4), 7);
        assert_eq!(q_max(Precision::Int8), 127);
    }

    #[test]
    fn quantized_weights_lie_on_grid() {
        let net = zoo::tiny_cnn();
        let mut weights = Weights::synthetic(&net, 5);
        let report = quantize_weights(&net, &mut weights, Precision::Int4);
        for lq in &report.layers {
            let values = weights.get(lq.node).unwrap();
            for &v in values {
                let code = v / lq.scale;
                assert!(
                    (code - code.round()).abs() < 1e-4,
                    "value {v} not on grid (scale {})",
                    lq.scale
                );
                assert!(code.round().abs() <= lq.q_max as f32);
            }
        }
        assert!(report.rms_error > 0.0, "int4 must introduce some error");
    }

    #[test]
    fn int8_error_below_int4_error() {
        let net = zoo::tiny_cnn();
        let mut w4 = Weights::synthetic(&net, 6);
        let mut w8 = w4.clone();
        let r4 = quantize_weights(&net, &mut w4, Precision::Int4);
        let r8 = quantize_weights(&net, &mut w8, Precision::Int8);
        assert!(
            r8.rms_error < r4.rms_error / 4.0,
            "int8 RMS {} should be well below int4 RMS {}",
            r8.rms_error,
            r4.rms_error
        );
    }

    #[test]
    fn quantized_network_stays_close_functionally() {
        let net = zoo::tiny_cnn();
        let weights = Weights::synthetic(&net, 7);
        let mut quantized = weights.clone();
        quantize_weights(&net, &mut quantized, Precision::Int4);
        let x = Tensor::from_fn(TensorShape::new(3, 32, 32), |c, h, w| {
            ((c * 31 + h * 7 + w) % 13) as f32 / 13.0 - 0.5
        });
        let full = execute(&net, &weights, &x).unwrap();
        let quant = execute(&net, &quantized, &x).unwrap();
        // Compare pre-softmax logits (softmax can saturate). Per-layer
        // 4-bit error compounds through three conv stages, so judge
        // against the logit *range* and by direction (cosine
        // similarity), not element-wise relative error.
        let logits_full = &full[full.len() - 2];
        let logits_quant = &quant[quant.len() - 2];
        let range = logits_full.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
        let max_abs = logits_full
            .data()
            .iter()
            .zip(logits_quant.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_abs / range < 0.75,
            "4-bit logits should stay in the same regime (max err {max_abs} vs range {range})"
        );
        let dot: f32 = logits_full.data().iter().zip(logits_quant.data()).map(|(a, b)| a * b).sum();
        let na: f32 = logits_full.data().iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = logits_quant.data().iter().map(|b| b * b).sum::<f32>().sqrt();
        let cosine = dot / (na * nb).max(1e-9);
        assert!(cosine > 0.8, "quantized logits should point the same way (cos {cosine})");
    }

    #[test]
    fn idempotent_on_second_pass() {
        let net = zoo::tiny_cnn();
        let mut weights = Weights::synthetic(&net, 8);
        quantize_weights(&net, &mut weights, Precision::Int4);
        let snapshot = weights.clone();
        let second = quantize_weights(&net, &mut weights, Precision::Int4);
        assert_eq!(weights, snapshot, "re-quantizing a quantized store is identity");
        assert!(second.rms_error < 1e-7);
    }
}
