//! # pim-model — DNN graph IR and model zoo for crossbar PIM compilation
//!
//! This crate provides the network representation consumed by the
//! [COMPASS](https://arxiv.org/abs/2501.06780) compiler reproduction:
//!
//! * [`TensorShape`] — channel-major activation shapes,
//! * [`LayerKind`] / [`Node`] — typed layer attributes,
//! * [`Network`] — a validated directed acyclic graph of layers with
//!   shape inference and topological iteration,
//! * [`NetworkBuilder`] — ergonomic graph construction,
//! * [`zoo`] — exact-shape builders for the paper's three benchmark
//!   networks (VGG16, ResNet18, SqueezeNet v1.1) plus small synthetic
//!   networks used by tests,
//! * [`stats`] — parameter/weight/MAC accounting at a configurable
//!   weight precision (the paper uses 4-bit weights).
//!
//! Weight *values* are irrelevant to COMPASS (it optimizes latency and
//! energy, not accuracy), so the IR stores shapes only.
//!
//! # Example
//!
//! ```
//! use pim_model::{zoo, Precision, stats::NetworkStats};
//!
//! let net = zoo::resnet18();
//! let stats = NetworkStats::of(&net, Precision::Int4);
//! // Table II of the paper: ResNet18 total 5.569 MiB at 4-bit.
//! assert!((stats.total_weight_mib() - 5.569).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dot;
pub mod exec;
pub mod graph;
pub mod layer;
pub mod quant;
pub mod shape;
pub mod stats;
pub mod zoo;

mod error;

pub use builder::NetworkBuilder;
pub use error::BuildNetworkError;
pub use exec::{execute, ExecError, Tensor, Weights};
pub use graph::{Network, Node, NodeId};
pub use layer::{LayerKind, PoolKind};
pub use shape::TensorShape;
pub use stats::Precision;
