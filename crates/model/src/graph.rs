//! The network DAG: nodes, shape inference, validation, traversal.

use crate::error::BuildNetworkError;
use crate::layer::LayerKind;
use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node within a [`Network`].
///
/// Node ids are dense indices assigned in construction order, which is
/// also a valid topological order (a node may only consume
/// already-created nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One layer instance inside a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id (equals its index in [`Network::nodes`]).
    pub id: NodeId,
    /// Human-readable name, e.g. `"conv3_2"`.
    pub name: String,
    /// The layer kind and attributes.
    pub kind: LayerKind,
    /// Producer nodes feeding this layer.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape of one sample.
    pub output_shape: TensorShape,
}

/// A validated DNN expressed as a directed acyclic graph of layers.
///
/// Construct via [`crate::NetworkBuilder`] or one of the [`crate::zoo`]
/// functions. Invariants guaranteed after construction:
///
/// * every node's inputs reference earlier nodes (ids form a
///   topological order),
/// * arities and shapes are consistent (`Add` operands match, conv
///   channels line up, windows fit),
/// * there is at least one node and at least one [`LayerKind::Input`].
///
/// # Example
///
/// ```
/// use pim_model::zoo;
///
/// let net = zoo::squeezenet();
/// assert!(net.weighted_nodes().count() > 20); // conv1 + 8 fires*3 + conv10
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    /// consumers[i] lists the nodes that consume node i's output.
    consumers: Vec<Vec<NodeId>>,
}

impl Network {
    /// Validates `nodes` and assembles a network.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildNetworkError`] if the graph is empty, ill-typed,
    /// has dangling or forward references, or shape inference fails.
    /// Shape inference is re-run during validation, so `output_shape`
    /// fields supplied by the caller are checked, not trusted.
    pub fn from_nodes(
        name: impl Into<String>,
        mut nodes: Vec<Node>,
    ) -> Result<Self, BuildNetworkError> {
        if nodes.is_empty() {
            return Err(BuildNetworkError::Empty);
        }
        for (idx, node) in nodes.iter().enumerate() {
            if node.id.index() != idx {
                // Ids must be dense and in order; treat as a cycle-class
                // structural error.
                return Err(BuildNetworkError::Cyclic);
            }
            for &input in &node.inputs {
                if input.index() >= nodes.len() {
                    return Err(BuildNetworkError::UnknownInput { node: node.id, input });
                }
                if input.index() >= idx {
                    return Err(BuildNetworkError::Cyclic);
                }
            }
        }
        // Re-infer shapes front to back.
        let mut shapes: Vec<TensorShape> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let input_shapes: Vec<TensorShape> =
                node.inputs.iter().map(|i| shapes[i.index()]).collect();
            let out = infer_shape(node.id, &node.kind, &input_shapes)?;
            shapes.push(out);
        }
        for (node, shape) in nodes.iter_mut().zip(&shapes) {
            node.output_shape = *shape;
        }
        let mut consumers = vec![Vec::new(); nodes.len()];
        for node in &nodes {
            for &input in &node.inputs {
                consumers[input.index()].push(node.id);
            }
        }
        Ok(Self { name: name.into(), nodes, consumers })
    }

    /// Network name (e.g. `"resnet18"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes in topological (construction) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no nodes (never true for a validated
    /// network; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.index()]
    }

    /// Iterates over the weighted (crossbar-mapped) nodes — Conv2d and
    /// Linear — in topological order.
    pub fn weighted_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind.is_weighted())
    }

    /// Iterates over input nodes.
    pub fn input_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| matches!(n.kind, LayerKind::Input { .. }))
    }

    /// Nodes with no consumers (network outputs).
    pub fn output_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| self.consumers(n.id).is_empty())
    }

    /// For a weighted node, walks *forward* through weight-free
    /// consumers, returning every weight-free node that is reachable
    /// from `id` without crossing another weighted node. This is the
    /// "trailing non-crossbar layers" set that COMPASS places in the
    /// same partition as their producer (paper §III-B2).
    ///
    /// Multi-input nodes (Add/Concat) are included; their *other*
    /// operands are not traversed backwards here (dependence across
    /// partitions is handled by the compiler's entry/exit marking).
    pub fn trailing_nonweighted(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.consumers(id).to_vec();
        let mut seen = vec![false; self.nodes.len()];
        while let Some(next) = stack.pop() {
            if seen[next.index()] {
                continue;
            }
            seen[next.index()] = true;
            let node = self.node(next);
            if node.kind.is_weighted() {
                continue;
            }
            out.push(next);
            stack.extend_from_slice(self.consumers(next));
        }
        out.sort_unstable();
        out
    }

    /// The nearest weighted *ancestors* of `id`: walks backwards
    /// through weight-free producers until weighted (or input) nodes
    /// are reached. Used for inter-partition dependence checks.
    pub fn weighted_ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.node(id).inputs.clone();
        let mut seen = vec![false; self.nodes.len()];
        while let Some(prev) = stack.pop() {
            if seen[prev.index()] {
                continue;
            }
            seen[prev.index()] = true;
            let node = self.node(prev);
            if node.kind.is_weighted() || matches!(node.kind, LayerKind::Input { .. }) {
                out.push(prev);
            } else {
                stack.extend_from_slice(&node.inputs);
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network {} ({} nodes)", self.name, self.nodes.len())?;
        for node in &self.nodes {
            write!(f, "  {}: {} [{}] <-", node.id, node.name, node.kind)?;
            for input in &node.inputs {
                write!(f, " {input}")?;
            }
            writeln!(f, " => {}", node.output_shape)?;
        }
        Ok(())
    }
}

/// Infers the output shape of `kind` from its input shapes.
pub(crate) fn infer_shape(
    id: NodeId,
    kind: &LayerKind,
    inputs: &[TensorShape],
) -> Result<TensorShape, BuildNetworkError> {
    let arity_err = |expected: usize| BuildNetworkError::WrongArity {
        node: id,
        expected,
        actual: inputs.len(),
    };
    match kind {
        LayerKind::Input { shape } => {
            if !inputs.is_empty() {
                return Err(BuildNetworkError::WrongArity {
                    node: id,
                    expected: 0,
                    actual: inputs.len(),
                });
            }
            Ok(*shape)
        }
        LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding } => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            if input.channels != *in_channels {
                return Err(BuildNetworkError::ShapeMismatch {
                    node: id,
                    detail: format!(
                        "conv expects {in_channels} input channels, got {}",
                        input.channels
                    ),
                });
            }
            let h = checked_window(id, input, input.height, *kernel, *stride, *padding)?;
            let w = checked_window(id, input, input.width, *kernel, *stride, *padding)?;
            Ok(TensorShape::new(*out_channels, h, w))
        }
        LayerKind::Linear { in_features, out_features } => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            if input.elements() != *in_features {
                return Err(BuildNetworkError::ShapeMismatch {
                    node: id,
                    detail: format!(
                        "linear expects {in_features} input features, got {} ({input})",
                        input.elements()
                    ),
                });
            }
            Ok(TensorShape::features(*out_features))
        }
        LayerKind::Pool2d { kernel, stride, padding, .. } => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            let h = checked_window(id, input, input.height, *kernel, *stride, *padding)?;
            let w = checked_window(id, input, input.width, *kernel, *stride, *padding)?;
            Ok(TensorShape::new(input.channels, h, w))
        }
        LayerKind::GlobalAvgPool => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            Ok(TensorShape::features(input.channels))
        }
        LayerKind::ReLU | LayerKind::Softmax => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            Ok(input)
        }
        LayerKind::BatchNorm2d { channels } => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            if input.channels != *channels {
                return Err(BuildNetworkError::ShapeMismatch {
                    node: id,
                    detail: format!("batchnorm over {channels} channels applied to {input}"),
                });
            }
            Ok(input)
        }
        LayerKind::Add => {
            if inputs.len() != 2 {
                return Err(arity_err(2));
            }
            if inputs[0] != inputs[1] {
                return Err(BuildNetworkError::ShapeMismatch {
                    node: id,
                    detail: format!("add operands differ: {} vs {}", inputs[0], inputs[1]),
                });
            }
            Ok(inputs[0])
        }
        LayerKind::Concat => {
            if inputs.len() < 2 {
                return Err(arity_err(2));
            }
            let (h, w) = (inputs[0].height, inputs[0].width);
            let mut channels = 0;
            for s in inputs {
                if s.height != h || s.width != w {
                    return Err(BuildNetworkError::ShapeMismatch {
                        node: id,
                        detail: format!("concat spatial dims differ: {} vs {}x{}", s, h, w),
                    });
                }
                channels += s.channels;
            }
            Ok(TensorShape::new(channels, h, w))
        }
        LayerKind::Flatten => {
            let [input] = single(inputs).ok_or_else(|| arity_err(1))?;
            Ok(TensorShape::features(input.elements()))
        }
    }
}

fn single(inputs: &[TensorShape]) -> Option<[TensorShape; 1]> {
    match inputs {
        [only] => Some([*only]),
        _ => None,
    }
}

fn checked_window(
    id: NodeId,
    input: TensorShape,
    dim: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize, BuildNetworkError> {
    if kernel == 0 || stride == 0 || dim + 2 * padding < kernel {
        return Err(BuildNetworkError::WindowTooLarge { node: id, input_shape: input });
    }
    Ok(TensorShape::conv_out(dim, kernel, stride, padding))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new("tiny");
        let input = b.input(TensorShape::new(3, 8, 8));
        let c1 = b.conv2d("c1", input, 16, 3, 1, 1);
        let r1 = b.relu("r1", c1);
        let c2 = b.conv2d("c2", r1, 16, 3, 1, 1);
        let add = b.add("add", c2, r1);
        let _out = b.global_avg_pool("gap", add);
        b.build().expect("tiny net builds")
    }

    #[test]
    fn topological_ids_and_shapes() {
        let net = tiny();
        assert_eq!(net.len(), 6);
        assert_eq!(net.node(NodeId(1)).output_shape, TensorShape::new(16, 8, 8));
        assert_eq!(net.node(NodeId(5)).output_shape, TensorShape::features(16));
    }

    #[test]
    fn consumers_tracked() {
        let net = tiny();
        // r1 (id 2) feeds c2 and add.
        assert_eq!(net.consumers(NodeId(2)), &[NodeId(3), NodeId(4)]);
        // gap is an output node.
        let outs: Vec<_> = net.output_nodes().map(|n| n.id).collect();
        assert_eq!(outs, vec![NodeId(5)]);
    }

    #[test]
    fn trailing_nonweighted_stops_at_weighted() {
        let net = tiny();
        // From c1: relu, then add (weight-free), then gap. c2 is weighted -> excluded.
        let trailing = net.trailing_nonweighted(NodeId(1));
        assert_eq!(trailing, vec![NodeId(2), NodeId(4), NodeId(5)]);
        // From c2: add, gap.
        assert_eq!(net.trailing_nonweighted(NodeId(3)), vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn weighted_ancestors_skip_elementwise() {
        let net = tiny();
        // add's weighted ancestors: c2 directly, and c1 via relu.
        assert_eq!(net.weighted_ancestors(NodeId(4)), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn rejects_mismatched_add() {
        let mut b = NetworkBuilder::new("bad");
        let input = b.input(TensorShape::new(3, 8, 8));
        let c1 = b.conv2d("c1", input, 16, 3, 1, 1);
        let c2 = b.conv2d("c2", input, 8, 3, 1, 1);
        let _ = b.add("add", c1, c2);
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildNetworkError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_bad_conv_channels() {
        let mut b = NetworkBuilder::new("bad");
        let input = b.input(TensorShape::new(3, 8, 8));
        let c1 = b.conv2d("c1", input, 16, 3, 1, 1);
        // c2 claims 32 in-channels but receives 16.
        let _ = b.add_node(
            "c2",
            LayerKind::Conv2d {
                in_channels: 32,
                out_channels: 8,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            vec![c1],
        );
        assert!(matches!(b.build().unwrap_err(), BuildNetworkError::ShapeMismatch { .. }));
    }

    #[test]
    fn rejects_oversized_window() {
        let mut b = NetworkBuilder::new("bad");
        let input = b.input(TensorShape::new(3, 4, 4));
        let _ = b.conv2d("c1", input, 16, 7, 1, 0); // 7x7 kernel on 4x4, no padding
        assert!(matches!(b.build().unwrap_err(), BuildNetworkError::WindowTooLarge { .. }));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Network::from_nodes("empty", Vec::new()).unwrap_err(), BuildNetworkError::Empty);
    }

    #[test]
    fn rejects_forward_reference() {
        let nodes = vec![Node {
            id: NodeId(0),
            name: "x".into(),
            kind: LayerKind::ReLU,
            inputs: vec![NodeId(0)], // self reference
            output_shape: TensorShape::features(1),
        }];
        assert_eq!(Network::from_nodes("bad", nodes).unwrap_err(), BuildNetworkError::Cyclic);
    }

    #[test]
    fn display_lists_every_node() {
        let net = tiny();
        let text = net.to_string();
        for node in net.nodes() {
            assert!(text.contains(&node.name));
        }
    }
}
