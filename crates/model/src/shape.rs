//! Activation tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of an activation tensor in channel-major (`C × H × W`) layout.
///
/// Fully-connected activations are represented as `C × 1 × 1`.
///
/// # Example
///
/// ```
/// use pim_model::TensorShape;
///
/// let s = TensorShape::new(3, 224, 224);
/// assert_eq!(s.elements(), 3 * 224 * 224);
/// assert_eq!(TensorShape::features(4096), TensorShape::new(4096, 1, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorShape {
    /// Number of channels (or features for 1-D activations).
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl TensorShape {
    /// Creates a `C × H × W` shape.
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Self { channels, height, width }
    }

    /// Creates a 1-D feature shape `C × 1 × 1` (post-flatten activations).
    pub const fn features(channels: usize) -> Self {
        Self::new(channels, 1, 1)
    }

    /// Total number of scalar elements.
    pub const fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of spatial positions (`H × W`).
    pub const fn spatial(&self) -> usize {
        self.height * self.width
    }

    /// Returns `true` for 1-D feature shapes (`H == W == 1`).
    pub const fn is_flat(&self) -> bool {
        self.height == 1 && self.width == 1
    }

    /// Size of the activation tensor in bytes at the given activation
    /// bit precision, rounded up to whole bytes.
    pub const fn bytes(&self, activation_bits: usize) -> usize {
        (self.elements() * activation_bits).div_ceil(8)
    }

    /// Output spatial extent of a square convolution/pool window applied
    /// along one dimension.
    pub(crate) const fn conv_out(
        dim: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> usize {
        (dim + 2 * padding - kernel) / stride + 1
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_spatial() {
        let s = TensorShape::new(64, 56, 56);
        assert_eq!(s.elements(), 64 * 56 * 56);
        assert_eq!(s.spatial(), 56 * 56);
        assert!(!s.is_flat());
        assert!(TensorShape::features(1000).is_flat());
    }

    #[test]
    fn bytes_rounds_up() {
        // 3 elements at 4 bits = 12 bits = 2 bytes.
        assert_eq!(TensorShape::new(3, 1, 1).bytes(4), 2);
        assert_eq!(TensorShape::new(2, 1, 1).bytes(4), 1);
        assert_eq!(TensorShape::new(1, 1, 1).bytes(8), 1);
    }

    #[test]
    fn conv_out_matches_torch_formula() {
        // 224x224, k=3, s=1, p=1 -> 224
        assert_eq!(TensorShape::conv_out(224, 3, 1, 1), 224);
        // 224x224, k=7, s=2, p=3 -> 112
        assert_eq!(TensorShape::conv_out(224, 7, 2, 3), 112);
        // 112, k=3, s=2, p=1 -> 56
        assert_eq!(TensorShape::conv_out(112, 3, 2, 1), 56);
        // maxpool 2/2 p0: 224 -> 112
        assert_eq!(TensorShape::conv_out(224, 2, 2, 0), 112);
        // squeezenet ceil-mode style pool is modeled with floor; 13, k=3, s=2 -> 6
        assert_eq!(TensorShape::conv_out(13, 3, 2, 0), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(TensorShape::new(3, 224, 224).to_string(), "3x224x224");
    }
}
