//! Reference networks with exact parameter shapes.
//!
//! The three benchmark CNNs of the COMPASS paper (Table II) plus small
//! synthetic networks used in tests and examples. All builders produce
//! validated graphs, so they panic only on internal programming errors
//! (enforced by unit tests).

use crate::builder::NetworkBuilder;
use crate::graph::{Network, NodeId};
use crate::shape::TensorShape;

/// VGG16 (torchvision layout): 13 convolutions in five pooled stages
/// followed by three fully-connected layers.
///
/// 4-bit footprint (paper Table II): Linear 58.95 MiB + Conv 7.02 MiB =
/// 65.97 MiB — far beyond every chip configuration, so it *requires*
/// COMPASS-style weight replacement.
pub fn vgg16() -> Network {
    vgg("vgg16", &[&[64, 64], &[128, 128], &[256, 256, 256], &[512, 512, 512], &[512, 512, 512]])
}

/// VGG11 ("configuration A"): 8 convolutions + the standard VGG
/// classifier.
pub fn vgg11() -> Network {
    vgg("vgg11", &[&[64], &[128], &[256, 256], &[512, 512], &[512, 512]])
}

/// VGG13 ("configuration B"): 10 convolutions + classifier.
pub fn vgg13() -> Network {
    vgg("vgg13", &[&[64, 64], &[128, 128], &[256, 256], &[512, 512], &[512, 512]])
}

/// VGG19 ("configuration E"): 16 convolutions + classifier — the
/// largest zoo model (~76 MiB at 4-bit).
pub fn vgg19() -> Network {
    vgg(
        "vgg19",
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256, 256],
            &[512, 512, 512, 512],
            &[512, 512, 512, 512],
        ],
    )
}

fn vgg(name: &str, stages: &[&[usize]]) -> Network {
    let mut b = NetworkBuilder::new(name);
    let input = b.input(TensorShape::new(3, 224, 224));
    let mut x = input;
    for (si, stage) in stages.iter().enumerate() {
        for (ci, &ch) in stage.iter().enumerate() {
            let conv = b.conv2d(format!("conv{}_{}", si + 1, ci + 1), x, ch, 3, 1, 1);
            x = b.relu(format!("relu{}_{}", si + 1, ci + 1), conv);
        }
        x = b.max_pool2d(format!("pool{}", si + 1), x, 2, 2);
    }
    x = b.flatten("flatten", x);
    let fc6 = b.linear("fc6", x, 4096);
    x = b.relu("relu6", fc6);
    let fc7 = b.linear("fc7", x, 4096);
    x = b.relu("relu7", fc7);
    let fc8 = b.linear("fc8", x, 1000);
    let _ = b.softmax("prob", fc8);
    b.build().unwrap_or_else(|e| panic!("{name} definition is valid: {e}"))
}

/// AlexNet (torchvision layout): 5 convolutions with large early
/// kernels and three fully-connected layers (~27 MiB at 4-bit, FC
/// dominated like VGG).
pub fn alexnet() -> Network {
    let mut b = NetworkBuilder::new("alexnet");
    let input = b.input(TensorShape::new(3, 224, 224));
    let c1 = b.conv2d("conv1", input, 64, 11, 4, 2);
    let r1 = b.relu("relu1", c1);
    let p1 = b.max_pool2d("pool1", r1, 3, 2);
    let c2 = b.conv2d("conv2", p1, 192, 5, 1, 2);
    let r2 = b.relu("relu2", c2);
    let p2 = b.max_pool2d("pool2", r2, 3, 2);
    let c3 = b.conv2d("conv3", p2, 384, 3, 1, 1);
    let r3 = b.relu("relu3", c3);
    let c4 = b.conv2d("conv4", r3, 256, 3, 1, 1);
    let r4 = b.relu("relu4", c4);
    let c5 = b.conv2d("conv5", r4, 256, 3, 1, 1);
    let r5 = b.relu("relu5", c5);
    let p5 = b.max_pool2d("pool5", r5, 3, 2);
    let flat = b.flatten("flatten", p5);
    let fc6 = b.linear("fc6", flat, 4096);
    let r6 = b.relu("relu6", fc6);
    let fc7 = b.linear("fc7", r6, 4096);
    let r7 = b.relu("relu7", fc7);
    let fc8 = b.linear("fc8", r7, 1000);
    let _ = b.softmax("prob", fc8);
    b.build().expect("alexnet definition is valid")
}

/// ResNet34: the deeper basic-block ResNet (3/4/6/3 blocks,
/// ~21.3 M parameters, ~10.2 MiB at 4-bit).
pub fn resnet34() -> Network {
    resnet_basic("resnet34", [3, 4, 6, 3])
}

/// ResNet18: 7×7 stem, four stages of two basic blocks each with
/// identity/downsample residual connections, global average pooling,
/// and a 1000-way classifier.
///
/// 4-bit footprint (paper Table II): 5.569 MiB total.
pub fn resnet18() -> Network {
    resnet_basic("resnet18", [2, 2, 2, 2])
}

fn resnet_basic(name: &str, blocks_per_stage: [usize; 4]) -> Network {
    let mut b = NetworkBuilder::new(name);
    let input = b.input(TensorShape::new(3, 224, 224));
    let conv1 = b.conv2d("conv1", input, 64, 7, 2, 3);
    let bn1 = b.batch_norm("bn1", conv1);
    let relu1 = b.relu("relu1", bn1);
    let mut x = b.add_node(
        "maxpool",
        crate::LayerKind::Pool2d { kind: crate::PoolKind::Max, kernel: 3, stride: 2, padding: 1 },
        vec![relu1],
    );
    let stage_channels = [64usize, 128, 256, 512];
    for (si, &ch) in stage_channels.iter().enumerate() {
        for block in 0..blocks_per_stage[si] {
            let downsample = si > 0 && block == 0;
            let stride = if downsample { 2 } else { 1 };
            let tag = format!("l{}b{}", si + 1, block + 1);
            let c1 = b.conv2d(format!("{tag}_conv1"), x, ch, 3, stride, 1);
            let n1 = b.batch_norm(format!("{tag}_bn1"), c1);
            let r1 = b.relu(format!("{tag}_relu1"), n1);
            let c2 = b.conv2d(format!("{tag}_conv2"), r1, ch, 3, 1, 1);
            let n2 = b.batch_norm(format!("{tag}_bn2"), c2);
            let shortcut = if downsample {
                let ds = b.conv2d(format!("{tag}_down"), x, ch, 1, 2, 0);
                b.batch_norm(format!("{tag}_down_bn"), ds)
            } else {
                x
            };
            let add = b.add(format!("{tag}_add"), n2, shortcut);
            x = b.relu(format!("{tag}_relu2"), add);
        }
    }
    let gap = b.global_avg_pool("gap", x);
    let fc = b.linear("fc", gap, 1000);
    let _ = b.softmax("prob", fc);
    b.build().unwrap_or_else(|e| panic!("{name} definition is valid: {e}"))
}

/// SqueezeNet v1.1: a 3×3 stem followed by eight *fire modules*
/// (1×1 squeeze, parallel 1×1/3×3 expand, channel concat) and a 1×1
/// classifier convolution.
///
/// 4-bit footprint: 0.58725 MiB — this is the only benchmark that fits
/// on-chip without partitioning, matching the paper's observation that
/// prior compilers support SqueezeNet but not the other two.
pub fn squeezenet() -> Network {
    let mut b = NetworkBuilder::new("squeezenet");
    let input = b.input(TensorShape::new(3, 224, 224));
    let conv1 = b.conv2d("conv1", input, 64, 3, 2, 0);
    let relu1 = b.relu("relu1", conv1);
    let mut x = b.max_pool2d("pool1", relu1, 3, 2);
    // (squeeze, expand) channel pairs for fire2..fire9 (v1.1).
    let fires: &[(usize, usize)] =
        &[(16, 64), (16, 64), (32, 128), (32, 128), (48, 192), (48, 192), (64, 256), (64, 256)];
    for (i, &(squeeze, expand)) in fires.iter().enumerate() {
        let fire_no = i + 2;
        x = fire_module(&mut b, &format!("fire{fire_no}"), x, squeeze, expand);
        if fire_no == 3 {
            x = b.max_pool2d("pool3", x, 3, 2);
        } else if fire_no == 5 {
            x = b.max_pool2d("pool5", x, 3, 2);
        }
    }
    let conv10 = b.conv2d("conv10", x, 1000, 1, 1, 0);
    let relu10 = b.relu("relu10", conv10);
    let gap = b.global_avg_pool("gap", relu10);
    let _ = b.softmax("prob", gap);
    b.build().expect("squeezenet definition is valid")
}

fn fire_module(
    b: &mut NetworkBuilder,
    name: &str,
    input: NodeId,
    squeeze: usize,
    expand: usize,
) -> NodeId {
    let s = b.conv2d(format!("{name}_squeeze"), input, squeeze, 1, 1, 0);
    let sr = b.relu(format!("{name}_squeeze_relu"), s);
    let e1 = b.conv2d(format!("{name}_expand1x1"), sr, expand, 1, 1, 0);
    let e1r = b.relu(format!("{name}_expand1x1_relu"), e1);
    let e3 = b.conv2d(format!("{name}_expand3x3"), sr, expand, 3, 1, 1);
    let e3r = b.relu(format!("{name}_expand3x3_relu"), e3);
    b.concat(format!("{name}_concat"), vec![e1r, e3r])
}

/// A small multi-layer perceptron, handy for unit tests and examples.
pub fn mlp(input_features: usize, hidden: &[usize], classes: usize) -> Network {
    let mut b = NetworkBuilder::new("mlp");
    let input = b.input(TensorShape::features(input_features));
    let mut x = input;
    for (i, &h) in hidden.iter().enumerate() {
        let fc = b.linear(format!("fc{i}"), x, h);
        x = b.relu(format!("relu{i}"), fc);
    }
    let out = b.linear("fc_out", x, classes);
    let _ = b.softmax("prob", out);
    b.build().expect("mlp definition is valid")
}

/// A small CIFAR-scale CNN (3 conv stages + classifier) used by tests
/// and the quickstart example; fits comfortably on Chip-S.
pub fn tiny_cnn() -> Network {
    let mut b = NetworkBuilder::new("tiny_cnn");
    let input = b.input(TensorShape::new(3, 32, 32));
    let mut x = input;
    for (i, ch) in [32usize, 64, 128].into_iter().enumerate() {
        let conv = b.conv2d(format!("conv{i}"), x, ch, 3, 1, 1);
        let relu = b.relu(format!("relu{i}"), conv);
        x = b.max_pool2d(format!("pool{i}"), relu, 2, 2);
    }
    let f = b.flatten("flatten", x);
    let fc = b.linear("fc", f, 10);
    let _ = b.softmax("prob", fc);
    b.build().expect("tiny_cnn definition is valid")
}

/// A residual toy network exercising multi-entry/exit partitions
/// (a residual connection spanning several layers), used in tests.
pub fn tiny_resnet() -> Network {
    let mut b = NetworkBuilder::new("tiny_resnet");
    let input = b.input(TensorShape::new(3, 32, 32));
    let stem = b.conv2d("stem", input, 16, 3, 1, 1);
    let stem_relu = b.relu("stem_relu", stem);
    let mut x = stem_relu;
    for i in 0..3 {
        let c1 = b.conv2d(format!("b{i}_conv1"), x, 16, 3, 1, 1);
        let r1 = b.relu(format!("b{i}_relu1"), c1);
        let c2 = b.conv2d(format!("b{i}_conv2"), r1, 16, 3, 1, 1);
        let add = b.add(format!("b{i}_add"), c2, x);
        x = b.relu(format!("b{i}_relu2"), add);
    }
    let gap = b.global_avg_pool("gap", x);
    let fc = b.linear("fc", gap, 10);
    let _ = b.softmax("prob", fc);
    b.build().expect("tiny_resnet definition is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn vgg16_structure() {
        let net = vgg16();
        let convs =
            net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Conv2d { .. })).count();
        let linears =
            net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Linear { .. })).count();
        assert_eq!(convs, 13);
        assert_eq!(linears, 3);
        // Feature map entering the classifier is 512x7x7.
        let flat = net.nodes().iter().find(|n| n.name == "flatten").unwrap();
        assert_eq!(flat.output_shape, TensorShape::features(25088));
    }

    #[test]
    fn resnet18_structure() {
        let net = resnet18();
        let convs =
            net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Conv2d { .. })).count();
        // 1 stem + 16 block convs + 3 downsample convs = 20.
        assert_eq!(convs, 20);
        let adds = net.nodes().iter().filter(|n| n.kind == LayerKind::Add).count();
        assert_eq!(adds, 8);
        // Final feature map before GAP is 512x7x7.
        let last_relu = net.nodes().iter().find(|n| n.name == "l4b2_relu2").unwrap();
        assert_eq!(last_relu.output_shape, TensorShape::new(512, 7, 7));
    }

    #[test]
    fn squeezenet_structure() {
        let net = squeezenet();
        let convs =
            net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Conv2d { .. })).count();
        // conv1 + 8 fires x 3 convs + conv10 = 26.
        assert_eq!(convs, 26);
        // No linear layers (paper Table II: Linear 0.0 MB).
        assert_eq!(
            net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Linear { .. })).count(),
            0
        );
        // fire9 concat output is 512x13x13.
        let f9 = net.nodes().iter().find(|n| n.name == "fire9_concat").unwrap();
        assert_eq!(f9.output_shape, TensorShape::new(512, 13, 13));
    }

    #[test]
    fn squeezenet_spatial_progression() {
        let net = squeezenet();
        let pool1 = net.nodes().iter().find(|n| n.name == "pool1").unwrap();
        assert_eq!(pool1.output_shape, TensorShape::new(64, 55, 55));
        let pool3 = net.nodes().iter().find(|n| n.name == "pool3").unwrap();
        assert_eq!(pool3.output_shape, TensorShape::new(128, 27, 27));
        let pool5 = net.nodes().iter().find(|n| n.name == "pool5").unwrap();
        assert_eq!(pool5.output_shape, TensorShape::new(256, 13, 13));
    }

    #[test]
    fn small_networks_build() {
        assert!(mlp(784, &[256, 128], 10).len() > 5);
        assert!(tiny_cnn().len() > 10);
        let tr = tiny_resnet();
        assert_eq!(tr.nodes().iter().filter(|n| n.kind == LayerKind::Add).count(), 3);
    }

    #[test]
    fn vgg_variants_order_by_size() {
        use crate::stats::NetworkStats;
        use crate::Precision;
        let sizes: Vec<f64> = [vgg11(), vgg13(), vgg16(), vgg19()]
            .iter()
            .map(|n| NetworkStats::of(n, Precision::Int4).total_weight_mib())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
        // VGG11/13/16/19 conv layer counts: 8, 10, 13, 16.
        for (net, convs) in [(vgg11(), 8), (vgg13(), 10), (vgg16(), 13), (vgg19(), 16)] {
            let count =
                net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Conv2d { .. })).count();
            assert_eq!(count, convs, "{}", net.name());
        }
    }

    #[test]
    fn alexnet_structure() {
        let net = alexnet();
        // Conv1 11x11 stride 4 on 224 -> 55.
        let c1 = net.nodes().iter().find(|n| n.name == "conv1").unwrap();
        assert_eq!(c1.output_shape, TensorShape::new(64, 55, 55));
        // Flatten feeds 256*6*6 = 9216 features into fc6.
        let flat = net.nodes().iter().find(|n| n.name == "flatten").unwrap();
        assert_eq!(flat.output_shape, TensorShape::features(9216));
        // Torchvision AlexNet: 61,100,840 params including 10,344
        // biases; weights only = 61,090,496.
        let params: usize = net.weighted_nodes().map(|n| n.kind.weight_params()).sum();
        assert_eq!(params, 61_090_496);
    }

    #[test]
    fn resnet34_structure() {
        let net = resnet34();
        let convs =
            net.weighted_nodes().filter(|n| matches!(n.kind, LayerKind::Conv2d { .. })).count();
        // 1 stem + 2*(3+4+6+3) block convs + 3 downsamples = 36.
        assert_eq!(convs, 36);
        let adds = net.nodes().iter().filter(|n| n.kind == LayerKind::Add).count();
        assert_eq!(adds, 16);
        // Weight-only params: 21,779,648 (torchvision's 21.80 M total
        // minus BN affine params and biases, which live in VFU
        // registers, not crossbars).
        let params: usize = net.weighted_nodes().map(|n| n.kind.weight_params()).sum();
        assert_eq!(params, 21_779_648);
    }

    #[test]
    fn resnet18_residuals_have_two_weighted_ancestors() {
        let net = resnet18();
        let add = net.nodes().iter().find(|n| n.name == "l1b1_add").unwrap();
        let ancestors = net.weighted_ancestors(add.id);
        assert_eq!(ancestors.len(), 2, "identity residual joins two paths: {ancestors:?}");
    }
}
