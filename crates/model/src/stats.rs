//! Parameter, weight-size, and compute accounting.

use crate::graph::{Network, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per MiB, the unit the paper's Table II uses (labelled "MB").
pub const MIB: f64 = 1024.0 * 1024.0;

/// Weight/activation bit precision.
///
/// The paper assumes 4-bit weights and activations, matching the
/// 16 nm SRAM-CIM prototype of Jia et al. (ISSCC'21) its power model is
/// derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// 1-bit (binary) weights.
    Int1,
    /// 2-bit weights.
    Int2,
    /// 4-bit weights — the paper's operating point.
    #[default]
    Int4,
    /// 8-bit weights.
    Int8,
}

impl Precision {
    /// Number of bits per weight or activation.
    pub const fn bits(self) -> usize {
        match self {
            Precision::Int1 => 1,
            Precision::Int2 => 2,
            Precision::Int4 => 4,
            Precision::Int8 => 8,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "int{}", self.bits())
    }
}

/// Per-layer weight statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerStats {
    /// Node the statistics describe.
    pub node: NodeId,
    /// Weight parameter count (biases excluded).
    pub params: usize,
    /// Weight storage in bits at the chosen precision.
    pub weight_bits: usize,
    /// Multiply-accumulate operations per input sample.
    pub macs_per_sample: usize,
    /// Matrix-vector multiplications per input sample.
    pub mvms_per_sample: usize,
}

/// Aggregate network statistics at a fixed weight precision.
///
/// # Example
///
/// ```
/// use pim_model::{zoo, Precision, stats::NetworkStats};
///
/// let stats = NetworkStats::of(&zoo::vgg16(), Precision::Int4);
/// // Paper Table II: VGG16 Linear 58.95 MiB, Conv 7.02 MiB.
/// assert!((stats.linear_weight_mib() - 58.95).abs() < 0.01);
/// assert!((stats.conv_weight_mib() - 7.02).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Precision used for the byte figures.
    pub precision: Precision,
    /// Per weighted-layer statistics in topological order.
    pub layers: Vec<LayerStats>,
    /// Total conv weight bits.
    pub conv_weight_bits: usize,
    /// Total linear weight bits.
    pub linear_weight_bits: usize,
    /// Total parameter count (weights only).
    pub total_params: usize,
    /// Total MACs per sample.
    pub total_macs: usize,
}

impl NetworkStats {
    /// Computes statistics for `network` at `precision`.
    pub fn of(network: &Network, precision: Precision) -> Self {
        let bits = precision.bits();
        let mut layers = Vec::new();
        let (mut conv_bits, mut linear_bits, mut params, mut macs) = (0, 0, 0usize, 0usize);
        for node in network.weighted_nodes() {
            let p = node.kind.weight_params();
            let wb = p * bits;
            let m = node.kind.macs_per_sample(node.output_shape);
            layers.push(LayerStats {
                node: node.id,
                params: p,
                weight_bits: wb,
                macs_per_sample: m,
                mvms_per_sample: node.kind.mvms_per_sample(node.output_shape),
            });
            if matches!(node.kind, crate::LayerKind::Conv2d { .. }) {
                conv_bits += wb;
            } else {
                linear_bits += wb;
            }
            params += p;
            macs += m;
        }
        Self {
            precision,
            layers,
            conv_weight_bits: conv_bits,
            linear_weight_bits: linear_bits,
            total_params: params,
            total_macs: macs,
        }
    }

    /// Conv weight footprint in MiB.
    pub fn conv_weight_mib(&self) -> f64 {
        self.conv_weight_bits as f64 / 8.0 / MIB
    }

    /// Linear weight footprint in MiB.
    pub fn linear_weight_mib(&self) -> f64 {
        self.linear_weight_bits as f64 / 8.0 / MIB
    }

    /// Total weight footprint in MiB (the paper's Table II "Total").
    pub fn total_weight_mib(&self) -> f64 {
        self.conv_weight_mib() + self.linear_weight_mib()
    }

    /// Total weight footprint in bytes (rounded up).
    pub fn total_weight_bytes(&self) -> usize {
        (self.conv_weight_bits + self.linear_weight_bits).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn table2_vgg16() {
        let s = NetworkStats::of(&zoo::vgg16(), Precision::Int4);
        assert!((s.linear_weight_mib() - 58.95).abs() < 0.005, "{}", s.linear_weight_mib());
        assert!((s.conv_weight_mib() - 7.0158).abs() < 0.005, "{}", s.conv_weight_mib());
        assert!((s.total_weight_mib() - 65.97).abs() < 0.01);
    }

    #[test]
    fn table2_resnet18() {
        let s = NetworkStats::of(&zoo::resnet18(), Precision::Int4);
        assert!((s.linear_weight_mib() - 0.244).abs() < 0.001, "{}", s.linear_weight_mib());
        assert!((s.conv_weight_mib() - 5.3247).abs() < 0.001, "{}", s.conv_weight_mib());
        assert!((s.total_weight_mib() - 5.569).abs() < 0.002);
    }

    #[test]
    fn table2_squeezenet() {
        let s = NetworkStats::of(&zoo::squeezenet(), Precision::Int4);
        // Paper: 0.58725 MiB conv-only, 0 linear.
        assert_eq!(s.linear_weight_bits, 0);
        assert!((s.conv_weight_mib() - 0.58725).abs() < 0.0001, "{}", s.conv_weight_mib());
    }

    #[test]
    fn precision_scales_linearly() {
        let net = zoo::squeezenet();
        let s4 = NetworkStats::of(&net, Precision::Int4);
        let s8 = NetworkStats::of(&net, Precision::Int8);
        assert_eq!(s8.conv_weight_bits, 2 * s4.conv_weight_bits);
        assert_eq!(s8.total_params, s4.total_params);
    }

    #[test]
    fn vgg16_param_count_matches_reference() {
        let s = NetworkStats::of(&zoo::vgg16(), Precision::Int4);
        // Torchvision VGG16 without biases: 14,710,464 conv weights
        // (14,714,688 including the 4,224 biases) + 123,633,664 fc weights.
        assert_eq!(s.total_params, 14_710_464 + 123_633_664);
    }

    #[test]
    fn mac_totals_are_positive_and_ordered() {
        let v = NetworkStats::of(&zoo::vgg16(), Precision::Int4).total_macs;
        let r = NetworkStats::of(&zoo::resnet18(), Precision::Int4).total_macs;
        let s = NetworkStats::of(&zoo::squeezenet(), Precision::Int4).total_macs;
        // VGG16 ~15.5 GMACs > ResNet18 ~1.8 GMACs > SqueezeNet ~0.35 GMACs
        assert!(v > r && r > s && s > 0);
        assert!(v > 15_000_000_000 && v < 16_000_000_000, "{v}");
    }
}
