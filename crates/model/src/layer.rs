//! Layer kinds and their attributes.

use crate::shape::TensorShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Pooling flavor for [`LayerKind::Pool2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolKind::Max => write!(f, "max"),
            PoolKind::Avg => write!(f, "avg"),
        }
    }
}

/// A typed DNN layer.
///
/// Only [`LayerKind::Conv2d`] and [`LayerKind::Linear`] carry weights and
/// are mapped onto crossbar arrays; every other kind executes on the PIM
/// core's vector functional units (VFUs) and is attached to its producer
/// Conv/Linear partition by the COMPASS compiler (paper §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Network input with a fixed activation shape.
    Input {
        /// Shape of one input sample.
        shape: TensorShape,
    },
    /// 2-D convolution with square kernels.
    Conv2d {
        /// Input channel count.
        in_channels: usize,
        /// Output channel count.
        out_channels: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride along both spatial dims.
        stride: usize,
        /// Zero padding along both spatial dims.
        padding: usize,
    },
    /// Fully-connected layer.
    Linear {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
    },
    /// 2-D pooling (max or average) with a square window.
    Pool2d {
        /// Max or average pooling.
        kind: PoolKind,
        /// Square window extent.
        kernel: usize,
        /// Stride along both spatial dims.
        stride: usize,
        /// Zero padding along both spatial dims.
        padding: usize,
    },
    /// Global average pooling collapsing `C × H × W` to `C × 1 × 1`.
    GlobalAvgPool,
    /// Rectified linear activation (shape preserving).
    ReLU,
    /// Batch normalization (shape preserving; folded into VFU ops).
    BatchNorm2d {
        /// Channel count the normalization applies over.
        channels: usize,
    },
    /// Element-wise addition of exactly two equal-shape inputs
    /// (residual connections).
    Add,
    /// Channel-wise concatenation of two or more inputs sharing spatial
    /// dims (SqueezeNet fire modules).
    Concat,
    /// Flattens `C × H × W` into `C·H·W × 1 × 1`.
    Flatten,
    /// Softmax over features (shape preserving).
    Softmax,
}

impl LayerKind {
    /// Returns `true` for layers that carry a weight matrix mapped onto
    /// crossbar arrays (Conv2d and Linear).
    pub const fn is_weighted(&self) -> bool {
        matches!(self, LayerKind::Conv2d { .. } | LayerKind::Linear { .. })
    }

    /// Number of weight parameters (biases excluded — the paper's
    /// Table II sizes correspond to bias-free weight counts; biases live
    /// in VFU registers, not crossbar cells).
    pub fn weight_params(&self) -> usize {
        match self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                in_channels * out_channels * kernel * kernel
            }
            LayerKind::Linear { in_features, out_features } => in_features * out_features,
            _ => 0,
        }
    }

    /// Dimensions of the weight matrix as mapped onto crossbars:
    /// `(rows, cols)` where rows is the flattened input patch size and
    /// cols is the output dimension. Returns `None` for weight-free
    /// layers.
    ///
    /// A Conv2d with kernel `k` maps to a `(k·k·C_in) × C_out` matrix
    /// (im2col formulation), a Linear to `in × out`.
    pub fn matrix_dims(&self) -> Option<(usize, usize)> {
        match self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                Some((in_channels * kernel * kernel, *out_channels))
            }
            LayerKind::Linear { in_features, out_features } => Some((*in_features, *out_features)),
            _ => None,
        }
    }

    /// Number of matrix-vector multiplications a weighted layer performs
    /// per input sample: one per output spatial position for
    /// convolutions, one for fully-connected layers. Returns 0 for
    /// weight-free layers.
    pub fn mvms_per_sample(&self, output_shape: TensorShape) -> usize {
        if self.is_weighted() {
            output_shape.spatial()
        } else {
            0
        }
    }

    /// Multiply-accumulate operations per sample given the layer's
    /// output shape.
    pub fn macs_per_sample(&self, output_shape: TensorShape) -> usize {
        match self.matrix_dims() {
            Some((rows, _cols)) => rows * output_shape.channels * output_shape.spatial(),
            None => 0,
        }
    }

    /// Short mnemonic used in display output and reports.
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::Linear { .. } => "linear",
            LayerKind::Pool2d { kind: PoolKind::Max, .. } => "maxpool",
            LayerKind::Pool2d { kind: PoolKind::Avg, .. } => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::ReLU => "relu",
            LayerKind::BatchNorm2d { .. } => "bn",
            LayerKind::Add => "add",
            LayerKind::Concat => "concat",
            LayerKind::Flatten => "flatten",
            LayerKind::Softmax => "softmax",
        }
    }

    /// Number of inputs this layer requires: `0` for [`LayerKind::Input`],
    /// `2` for [`LayerKind::Add`], "2 or more" for [`LayerKind::Concat`]
    /// (reported as 2 here, validated separately), otherwise `1`.
    pub const fn min_arity(&self) -> usize {
        match self {
            LayerKind::Input { .. } => 0,
            LayerKind::Add | LayerKind::Concat => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding } => {
                write!(f, "conv {in_channels}->{out_channels} k{kernel} s{stride} p{padding}")
            }
            LayerKind::Linear { in_features, out_features } => {
                write!(f, "linear {in_features}->{out_features}")
            }
            LayerKind::Pool2d { kind, kernel, stride, .. } => {
                write!(f, "{kind}pool k{kernel} s{stride}")
            }
            other => write!(f, "{}", other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONV: LayerKind =
        LayerKind::Conv2d { in_channels: 64, out_channels: 128, kernel: 3, stride: 1, padding: 1 };

    #[test]
    fn weighted_classification() {
        assert!(CONV.is_weighted());
        assert!(LayerKind::Linear { in_features: 8, out_features: 4 }.is_weighted());
        assert!(!LayerKind::ReLU.is_weighted());
        assert!(!LayerKind::Add.is_weighted());
    }

    #[test]
    fn conv_weight_params_and_matrix() {
        assert_eq!(CONV.weight_params(), 64 * 128 * 9);
        assert_eq!(CONV.matrix_dims(), Some((64 * 9, 128)));
    }

    #[test]
    fn linear_matrix() {
        let l = LayerKind::Linear { in_features: 25088, out_features: 4096 };
        assert_eq!(l.matrix_dims(), Some((25088, 4096)));
        assert_eq!(l.weight_params(), 25088 * 4096);
    }

    #[test]
    fn mvm_counts() {
        let out = TensorShape::new(128, 56, 56);
        assert_eq!(CONV.mvms_per_sample(out), 56 * 56);
        let l = LayerKind::Linear { in_features: 512, out_features: 1000 };
        assert_eq!(l.mvms_per_sample(TensorShape::features(1000)), 1);
        assert_eq!(LayerKind::ReLU.mvms_per_sample(out), 0);
    }

    #[test]
    fn mac_counts() {
        let out = TensorShape::new(128, 56, 56);
        assert_eq!(CONV.macs_per_sample(out), 64 * 9 * 128 * 56 * 56);
    }

    #[test]
    fn arity() {
        assert_eq!(LayerKind::Add.min_arity(), 2);
        assert_eq!(LayerKind::Concat.min_arity(), 2);
        assert_eq!(LayerKind::ReLU.min_arity(), 1);
        assert_eq!(LayerKind::Input { shape: TensorShape::features(1) }.min_arity(), 0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(CONV.to_string(), "conv 64->128 k3 s1 p1");
        assert_eq!(
            LayerKind::Pool2d { kind: PoolKind::Max, kernel: 2, stride: 2, padding: 0 }.to_string(),
            "maxpool k2 s2"
        );
    }
}
