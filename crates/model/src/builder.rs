//! Ergonomic construction of [`Network`] graphs.

use crate::error::BuildNetworkError;
use crate::graph::{infer_shape, Network, Node, NodeId};
use crate::layer::{LayerKind, PoolKind};
use crate::shape::TensorShape;

/// Incremental builder for [`Network`] graphs.
///
/// Each `add_*` method appends a node and returns its [`NodeId`] for use
/// as a later input, so graphs are expressed in natural dataflow order.
/// Shape inference runs eagerly; errors are deferred to [`build`] so the
/// fluent style stays ergonomic (the first error wins).
///
/// [`build`]: NetworkBuilder::build
///
/// # Example
///
/// ```
/// use pim_model::{NetworkBuilder, TensorShape};
///
/// # fn main() -> Result<(), pim_model::BuildNetworkError> {
/// let mut b = NetworkBuilder::new("lenet-ish");
/// let input = b.input(TensorShape::new(1, 28, 28));
/// let c1 = b.conv2d("c1", input, 6, 5, 1, 2);
/// let r1 = b.relu("r1", c1);
/// let p1 = b.max_pool2d("p1", r1, 2, 2);
/// let f = b.flatten("flat", p1);
/// let fc = b.linear("fc", f, 10);
/// let _ = b.softmax("prob", fc);
/// let net = b.build()?;
/// assert_eq!(net.len(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    nodes: Vec<Node>,
    shapes: Vec<TensorShape>,
    error: Option<BuildNetworkError>,
}

impl NetworkBuilder {
    /// Starts a new builder for a network called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), nodes: Vec::new(), shapes: Vec::new(), error: None }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Output shape of an already-added node.
    pub fn shape(&self, id: NodeId) -> TensorShape {
        self.shapes[id.index()]
    }

    /// Appends an arbitrary node. Prefer the typed helpers below.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: Vec<NodeId>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        let input_shapes: Vec<TensorShape> = inputs
            .iter()
            .map(|i| self.shapes.get(i.index()).copied().unwrap_or(TensorShape::features(0)))
            .collect();
        let shape = match infer_shape(id, &kind, &input_shapes) {
            Ok(shape) => shape,
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                TensorShape::features(0)
            }
        };
        self.nodes.push(Node { id, name: name.into(), kind, inputs, output_shape: shape });
        self.shapes.push(shape);
        id
    }

    /// Adds the network input.
    pub fn input(&mut self, shape: TensorShape) -> NodeId {
        self.add_node("input", LayerKind::Input { shape }, vec![])
    }

    /// Adds a square 2-D convolution.
    pub fn conv2d(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> NodeId {
        let in_channels = self.shape(input).channels;
        self.add_node(
            name,
            LayerKind::Conv2d { in_channels, out_channels, kernel, stride, padding },
            vec![input],
        )
    }

    /// Adds a fully-connected layer.
    pub fn linear(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        out_features: usize,
    ) -> NodeId {
        let in_features = self.shape(input).elements();
        self.add_node(name, LayerKind::Linear { in_features, out_features }, vec![input])
    }

    /// Adds max pooling with zero padding.
    pub fn max_pool2d(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        self.add_node(
            name,
            LayerKind::Pool2d { kind: PoolKind::Max, kernel, stride, padding: 0 },
            vec![input],
        )
    }

    /// Adds average pooling with zero padding.
    pub fn avg_pool2d(
        &mut self,
        name: impl Into<String>,
        input: NodeId,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        self.add_node(
            name,
            LayerKind::Pool2d { kind: PoolKind::Avg, kernel, stride, padding: 0 },
            vec![input],
        )
    }

    /// Adds global average pooling.
    pub fn global_avg_pool(&mut self, name: impl Into<String>, input: NodeId) -> NodeId {
        self.add_node(name, LayerKind::GlobalAvgPool, vec![input])
    }

    /// Adds a ReLU activation.
    pub fn relu(&mut self, name: impl Into<String>, input: NodeId) -> NodeId {
        self.add_node(name, LayerKind::ReLU, vec![input])
    }

    /// Adds batch normalization over the input's channels.
    pub fn batch_norm(&mut self, name: impl Into<String>, input: NodeId) -> NodeId {
        let channels = self.shape(input).channels;
        self.add_node(name, LayerKind::BatchNorm2d { channels }, vec![input])
    }

    /// Adds an element-wise residual addition.
    pub fn add(&mut self, name: impl Into<String>, a: NodeId, b: NodeId) -> NodeId {
        self.add_node(name, LayerKind::Add, vec![a, b])
    }

    /// Adds a channel-wise concatenation.
    pub fn concat(&mut self, name: impl Into<String>, inputs: Vec<NodeId>) -> NodeId {
        self.add_node(name, LayerKind::Concat, inputs)
    }

    /// Adds a flatten.
    pub fn flatten(&mut self, name: impl Into<String>, input: NodeId) -> NodeId {
        self.add_node(name, LayerKind::Flatten, vec![input])
    }

    /// Adds a softmax.
    pub fn softmax(&mut self, name: impl Into<String>, input: NodeId) -> NodeId {
        self.add_node(name, LayerKind::Softmax, vec![input])
    }

    /// Finalizes and validates the network.
    ///
    /// # Errors
    ///
    /// Returns the first construction error encountered (dangling
    /// inputs, arity or shape mismatches, oversized windows, empty
    /// graph).
    pub fn build(self) -> Result<Network, BuildNetworkError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Network::from_nodes(self.name, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_infers_conv_channels() {
        let mut b = NetworkBuilder::new("t");
        let i = b.input(TensorShape::new(3, 32, 32));
        let c = b.conv2d("c", i, 8, 3, 1, 1);
        assert_eq!(b.shape(c), TensorShape::new(8, 32, 32));
        let net = b.build().unwrap();
        assert_eq!(net.name(), "t");
    }

    #[test]
    fn builder_defers_errors_to_build() {
        let mut b = NetworkBuilder::new("t");
        let i = b.input(TensorShape::new(3, 2, 2));
        // kernel larger than padded input -> WindowTooLarge at build()
        let c = b.conv2d("c", i, 8, 5, 1, 0);
        // subsequent calls still work (shape degraded to 0-features)
        let _r = b.relu("r", c);
        assert!(b.build().is_err());
    }

    #[test]
    fn linear_consumes_flattened_features() {
        let mut b = NetworkBuilder::new("t");
        let i = b.input(TensorShape::new(4, 3, 3));
        let f = b.flatten("f", i);
        let l = b.linear("l", f, 10);
        assert_eq!(b.shape(l), TensorShape::features(10));
        b.build().unwrap();
    }

    #[test]
    fn concat_accumulates_channels() {
        let mut b = NetworkBuilder::new("t");
        let i = b.input(TensorShape::new(3, 8, 8));
        let a = b.conv2d("a", i, 4, 1, 1, 0);
        let c = b.conv2d("c", i, 6, 1, 1, 0);
        let cat = b.concat("cat", vec![a, c]);
        assert_eq!(b.shape(cat), TensorShape::new(10, 8, 8));
        b.build().unwrap();
    }
}
