//! The per-chip stage dependency graph.
//!
//! A chip's workload is a grid of `(batch, partition)` **stages**: each
//! of the chip's partition programs executes once per pipeline batch
//! (round). [`StageGraph`] lowers that grid onto the engine's generic
//! [`TaskGraph`] according to the selected [`ScheduleMode`]:
//!
//! * **Barrier** — every stage depends on the previous one in
//!   round-major order: the full-chip barrier of the paper, and the
//!   exact execution the golden fixtures pin.
//! * **Interleaved** — a stage depends only on its intra-batch
//!   predecessor (`(b, p-1)` produced its input activations) and on the
//!   same partition in the previous batch (`(b-1, p)` still owns the
//!   partition's crossbars: cross-batch resource reuse). On top of the
//!   edges, each stage claims its crossbar groups (the cores its
//!   program actually uses) exclusively and the global-memory channel
//!   shared, so two stages overlap exactly when they touch disjoint
//!   cores — batch `b+1`'s partition 0 starts while batch `b`'s tail
//!   drains.
//!
//! Inter-chip hand-offs enter as *external* dependencies on each
//! batch's first stage: one per upstream producer per batch, satisfied
//! when the matching hand-off lands.

use pim_arch::ScheduleMode;
use pim_engine::{ClaimKind, TaskGraph};
use pim_isa::{ChipProgram, CoreId};

/// Resource id of the shared global-memory channel in a chip's claim
/// space (core ids occupy the low range).
const CHANNEL_RESOURCE: u64 = u64::MAX;

/// The `(batch, partition)` stage grid of one chip, lowered onto a
/// deterministic ready-set graph.
pub(crate) struct StageGraph {
    graph: TaskGraph,
    partitions: usize,
}

impl StageGraph {
    /// Builds the stage grid for `programs` over `rounds` batches with
    /// `upstream` inter-chip producers feeding each batch.
    pub(crate) fn build(
        programs: &[ChipProgram],
        rounds: usize,
        mode: ScheduleMode,
        upstream: usize,
    ) -> Self {
        let partitions = programs.len();
        let nodes = rounds * partitions;
        let mut graph = TaskGraph::new(nodes);
        for b in 0..rounds {
            for (p, program) in programs.iter().enumerate() {
                let node = b * partitions + p;
                match mode {
                    ScheduleMode::Barrier => {
                        // Full-chip barrier: a single round-major chain.
                        if node > 0 {
                            graph.add_dep(node - 1, node);
                        }
                    }
                    ScheduleMode::Interleaved => {
                        // Intra-batch order: (b, p-1) feeds (b, p).
                        if p > 0 {
                            graph.add_dep(node - 1, node);
                        }
                        // Cross-batch resource reuse: batch b-1's run
                        // of this partition must drain first.
                        if b > 0 {
                            graph.add_dep(node - partitions, node);
                        }
                        for claim in stage_claims(program) {
                            graph.claim(node, claim.0, claim.1);
                        }
                    }
                }
                if p == 0 {
                    graph.add_external(node, upstream);
                }
            }
        }
        Self { graph, partitions }
    }

    /// Appends one more batch worth of stages to a graph that may
    /// already be executing — the open-loop serving path, where the
    /// round count is decided by the request buffer at run time rather
    /// than fixed up front. The new stages get the same edges, claims
    /// and external gate [`StageGraph::build`] would have given them;
    /// edges from already-completed predecessors are dropped as
    /// trivially satisfied.
    pub(crate) fn append_round(
        &mut self,
        programs: &[ChipProgram],
        mode: ScheduleMode,
        upstream: usize,
    ) {
        debug_assert_eq!(programs.len(), self.partitions);
        if self.partitions == 0 {
            return;
        }
        // One reservation for the whole round keeps the node table from
        // reallocating inside the per-partition push loop — the serving
        // hot path appends thousands of rounds one at a time.
        self.graph.reserve_nodes(self.partitions);
        let b = self.graph.len() / self.partitions;
        for (p, program) in programs.iter().enumerate() {
            let node = self.graph.push_node();
            debug_assert_eq!(node, b * self.partitions + p);
            match mode {
                ScheduleMode::Barrier => {
                    if node > 0 {
                        self.graph.add_dep_late(node - 1, node);
                    }
                }
                ScheduleMode::Interleaved => {
                    if p > 0 {
                        self.graph.add_dep_late(node - 1, node);
                    }
                    if b > 0 {
                        self.graph.add_dep_late(node - self.partitions, node);
                    }
                    for claim in stage_claims(program) {
                        self.graph.claim(node, claim.0, claim.1);
                    }
                }
            }
            if p == 0 {
                self.graph.add_external(node, upstream);
            }
        }
    }

    /// The node id of stage `(batch, partition)`.
    pub(crate) fn node(&self, batch: usize, partition: usize) -> usize {
        batch * self.partitions + partition
    }

    /// The `(batch, partition)` coordinates of `node`.
    pub(crate) fn coords(&self, node: usize) -> (usize, usize) {
        (node / self.partitions, node % self.partitions)
    }

    /// Number of partitions per batch.
    pub(crate) fn partitions(&self) -> usize {
        self.partitions
    }

    /// See [`TaskGraph::take_ready`].
    pub(crate) fn take_ready(&mut self) -> Vec<usize> {
        self.graph.take_ready()
    }

    /// See [`TaskGraph::complete`].
    pub(crate) fn complete(&mut self, node: usize) {
        self.graph.complete(node);
    }

    /// See [`TaskGraph::satisfy_external`].
    pub(crate) fn satisfy_external(&mut self, node: usize) {
        self.graph.satisfy_external(node);
    }

    /// See [`TaskGraph::blocked_on_external`].
    pub(crate) fn blocked_on_external(&self, node: usize) -> bool {
        self.graph.blocked_on_external(node)
    }

    /// `true` once every stage has completed (trivially true for an
    /// idle chip).
    pub(crate) fn all_complete(&self) -> bool {
        self.graph.all_complete()
    }
}

/// The resource claims of one stage: its crossbar groups (every core
/// with instructions) exclusively, plus the global-memory channel
/// shared. The shared channel claim never blocks another shared
/// holder — actual channel queueing is modelled by the `MemChannel`
/// component — but it registers the stage as a channel user, so any
/// future exclusive channel owner (a bulk DMA stage, a claim-conflict
/// test) serializes against every in-flight stage.
fn stage_claims(program: &ChipProgram) -> Vec<(u64, ClaimKind)> {
    let mut claims: Vec<(u64, ClaimKind)> = (0..program.cores())
        .filter(|&core| !program.core(CoreId(core)).instructions().is_empty())
        .map(|core| (core as u64, ClaimKind::Exclusive))
        .collect();
    if !claims.is_empty() {
        claims.push((CHANNEL_RESOURCE, ClaimKind::Shared));
    }
    claims
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_isa::Instruction;

    fn program_on_cores(cores: std::ops::Range<usize>, total: usize) -> ChipProgram {
        let mut program = ChipProgram::new(total);
        for c in cores {
            program.core_mut(CoreId(c)).push(Instruction::Mvmul {
                waves: 1,
                activations: 1,
                node: 0,
            });
        }
        program
    }

    #[test]
    fn barrier_mode_is_a_single_chain() {
        let programs = [program_on_cores(0..2, 4), program_on_cores(2..4, 4)];
        let mut g = StageGraph::build(&programs, 2, ScheduleMode::Barrier, 0);
        for expect in 0..4 {
            assert_eq!(g.take_ready(), vec![expect], "strict round-major order");
            g.complete(expect);
        }
        assert!(g.all_complete());
    }

    #[test]
    fn interleaving_overlaps_disjoint_core_stages() {
        // Partition 0 on cores 0-1, partition 1 on cores 2-3: batch 1's
        // partition 0 may start while batch 0's partition 1 runs.
        let programs = [program_on_cores(0..2, 4), program_on_cores(2..4, 4)];
        let mut g = StageGraph::build(&programs, 2, ScheduleMode::Interleaved, 0);
        assert_eq!(g.take_ready(), vec![g.node(0, 0)]);
        g.complete(g.node(0, 0));
        let overlapped = g.take_ready();
        assert_eq!(overlapped, vec![g.node(0, 1), g.node(1, 0)], "fill hidden behind the drain");
    }

    #[test]
    fn shared_cores_serialize_under_interleaving() {
        // Both partitions use core 0: the exclusive crossbar-group
        // claim forces barrier-like order.
        let programs = [program_on_cores(0..2, 4), program_on_cores(0..4, 4)];
        let mut g = StageGraph::build(&programs, 2, ScheduleMode::Interleaved, 0);
        for expect in 0..4 {
            assert_eq!(g.take_ready(), vec![expect], "claim conflict serializes");
            g.complete(expect);
        }
    }

    #[test]
    fn externals_gate_each_batch_head() {
        let programs = [program_on_cores(0..2, 4)];
        let mut g = StageGraph::build(&programs, 2, ScheduleMode::Barrier, 1);
        assert!(g.take_ready().is_empty());
        assert!(g.blocked_on_external(g.node(0, 0)));
        g.satisfy_external(g.node(0, 0));
        assert_eq!(g.take_ready(), vec![g.node(0, 0)]);
        g.complete(g.node(0, 0));
        assert!(g.take_ready().is_empty(), "batch 1 waits for its own hand-off");
        g.satisfy_external(g.node(1, 0));
        assert_eq!(g.take_ready(), vec![g.node(1, 0)]);
    }

    #[test]
    fn appended_rounds_chain_behind_running_work() {
        let programs = [program_on_cores(0..2, 4), program_on_cores(2..4, 4)];
        // Start with a single round and begin executing it.
        let mut g = StageGraph::build(&programs, 1, ScheduleMode::Barrier, 0);
        assert_eq!(g.take_ready(), vec![0]);
        g.complete(0);
        assert_eq!(g.take_ready(), vec![1]);
        // Round 1 arrives while (0, 1) is still in flight: its head must
        // wait for the running stage, not start alongside it.
        g.append_round(&programs, ScheduleMode::Barrier, 0);
        assert!(g.take_ready().is_empty(), "chained behind the live stage");
        g.complete(1);
        assert_eq!(g.take_ready(), vec![g.node(1, 0)]);
        g.complete(g.node(1, 0));
        assert_eq!(g.take_ready(), vec![g.node(1, 1)]);
        g.complete(g.node(1, 1));
        assert!(g.all_complete());
    }

    #[test]
    fn appended_rounds_keep_interleaved_claims_and_externals() {
        let programs = [program_on_cores(0..2, 4), program_on_cores(2..4, 4)];
        let mut g = StageGraph::build(&programs, 1, ScheduleMode::Interleaved, 1);
        g.satisfy_external(g.node(0, 0));
        assert_eq!(g.take_ready(), vec![g.node(0, 0)]);
        g.complete(g.node(0, 0));
        assert_eq!(g.take_ready(), vec![g.node(0, 1)]);
        g.append_round(&programs, ScheduleMode::Interleaved, 1);
        // The new head is gated on its hand-off even though its cores
        // are free; once satisfied it overlaps the draining tail.
        assert!(g.blocked_on_external(g.node(1, 0)));
        assert!(g.take_ready().is_empty());
        g.satisfy_external(g.node(1, 0));
        assert_eq!(g.take_ready(), vec![g.node(1, 0)], "fill overlaps the drain");
        g.complete(g.node(0, 1));
        g.complete(g.node(1, 0));
        assert_eq!(g.take_ready(), vec![g.node(1, 1)]);
    }

    #[test]
    fn coords_round_trip() {
        let programs = [program_on_cores(0..1, 2), program_on_cores(1..2, 2)];
        let g = StageGraph::build(&programs, 3, ScheduleMode::Interleaved, 0);
        assert_eq!(g.partitions(), 2);
        for b in 0..3 {
            for p in 0..2 {
                assert_eq!(g.coords(g.node(b, p)), (b, p));
            }
        }
    }
}
