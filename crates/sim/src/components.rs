//! The chip simulator's engine components and event protocol.
//!
//! Every piece of shared hardware is a [`pim_engine::Component`]:
//! per-core sequencers, the global-memory channel, the arbitrated
//! core-to-core bus, the SEND/RECV rendezvous, and (optionally) the
//! in-line LPDDR3 controller. They interact only by scheduling
//! [`ChipEvent`]s, so simulated time advances exclusively through the
//! engine's `(time, sequence)`-ordered queue.

use crate::report::CoreActivity;
use pim_arch::{ChipSpec, InterconnectSpec, TimingMode};
use pim_dram::{
    DrainLatch, DramConfig, DramSimulator, MultiChannelDram, Request, RequestKind, TraceStats,
};
use pim_engine::{Component, ComponentId, EngineCtx, Event, SimTime};
use pim_isa::{Instruction, Tag};
use std::any::Any;
use std::collections::HashMap;

/// The event protocol between chip components.
#[derive(Debug, Clone)]
pub(crate) enum ChipEvent {
    /// A core executes its next instruction; the event time is the
    /// core's clock.
    Step,
    /// Starts a chip sequencer's first round (scheduled once per chip
    /// at simulation start).
    Kick,
    /// A core's stream is exhausted; the event time is the core's
    /// final clock. Carries the core's accounting so the sequencer
    /// never has to reach into a live component.
    CoreDone {
        /// The `(batch, partition)` stage node the core belongs to
        /// (several stages may be in flight under interleaving).
        stage: usize,
        /// Index of the core within its partition program.
        core_index: usize,
        /// The core's final activity breakdown.
        activity: CoreActivity,
        /// Absolute completion time of the core's weight-replace
        /// phase, ns.
        replace_done_ns: f64,
    },
    /// An inter-chip transfer progresses one hop along its route
    /// (`hop` is the next route index to traverse; past the last hop
    /// the payload is delivered to the destination sequencer).
    Ship {
        /// Source chip.
        src: usize,
        /// Destination chip.
        dst: usize,
        /// Payload size.
        bytes: usize,
        /// Next hop index on the precomputed route.
        hop: usize,
    },
    /// A pipeline hand-off landed on this sequencer's chip.
    HandoffIn {
        /// The producing chip (round gating is per producer).
        src: usize,
    },
    /// A core asks the global-memory channel for a transfer.
    MemRequest {
        /// Requesting core (reply address).
        core: ComponentId,
        /// Transfer size.
        bytes: usize,
        /// Read (loads) or write (stores).
        kind: RequestKind,
        /// Weight stream (bulk-sequential) vs activation traffic.
        weight: bool,
    },
    /// Channel grant: the transfer finished at the event time.
    MemDone {
        /// Stall before the channel was free, ns.
        wait_ns: f64,
        /// Transfer occupancy (latency + data), ns.
        busy_ns: f64,
    },
    /// A core asks the bus to carry a SEND.
    BusRequest {
        /// Sending core (reply address).
        core: ComponentId,
        /// Payload size.
        bytes: usize,
        /// Rendezvous tag.
        tag: Tag,
    },
    /// Bus grant: the sender may proceed at the event time (buffered
    /// send — only arbitration is on the critical path).
    BusDone {
        /// Queueing + arbitration time charged to the sender, ns.
        occupancy_ns: f64,
    },
    /// The bus announces a tag's delivery time to the rendezvous.
    Deliver {
        /// Rendezvous tag.
        tag: Tag,
        /// When the transfer's data lands, ns.
        at_ns: f64,
    },
    /// A core blocks on a RECV until its tag is delivered.
    AwaitTag {
        /// Receiving core (reply address).
        core: ComponentId,
        /// Rendezvous tag.
        tag: Tag,
        /// The receiver's clock when it blocked, ns.
        since_ns: f64,
    },
    /// Rendezvous completion: the receiver resumes at the event time.
    RecvDone {
        /// Stall spent waiting for the matching send, ns.
        wait_ns: f64,
    },
    /// Partition barrier: shared resources reset their availability
    /// to the barrier time (matching the full-chip drain between
    /// partitions).
    Barrier,
    /// An interleaved stage drained: the rendezvous drops the stage's
    /// tag bucket (its receivers have all completed), keeping the
    /// delivered map bounded by the stages in flight instead of
    /// growing for the whole run.
    RetireStage {
        /// The stage's tag-space bucket (its graph node id).
        stage: u64,
    },
    /// A chunk of DRAM traffic reaches the in-line controller.
    DramRequest {
        /// Byte address (from the channel's bump allocators).
        addr: u64,
        /// Read or write.
        kind: RequestKind,
        /// Chunk size.
        bytes: usize,
    },
    /// The in-line controller services everything that has arrived.
    DramDrain,
    /// Closed-loop timing: one blocking block access reaches the
    /// multi-channel controllers. The requesting core's `MemDone` is
    /// scheduled at the access's completion time, so the DRAM model
    /// owns the critical path.
    DramAccess {
        /// Requesting core (reply address).
        core: ComponentId,
        /// Starting byte address (from the channel's bump allocators).
        addr: u64,
        /// Read or write.
        kind: RequestKind,
        /// Block size.
        bytes: usize,
        /// Row-friendly chunk granularity the stream is split at (the
        /// same chunking the analytic-mode energy refinement uses).
        chunk: usize,
    },
    /// The request source's self-tick: one open-loop request arrives
    /// at the event time (the source forwards it to the buffer and
    /// schedules its next arrival).
    Arrival,
    /// One inference request lands in the request buffer; the event
    /// time is its arrival instant.
    NewRequest,
    /// The request source has emitted its last arrival: the buffer may
    /// flush partial batches once capacity allows.
    SourceDrained,
    /// A batch-formation deadline fired. Stale timers (the batch was
    /// already cut) carry an old `generation` and are ignored.
    FlushDeadline {
        /// The buffer's batch generation the timer was armed for.
        generation: u64,
    },
    /// The dispatcher admitted one more batch: every active sequencer
    /// appends one round to its live stage graph.
    AppendRound,
    /// A sequencer finished the last partition of a round — service
    /// feedback for the buffer's admission control.
    RoundDone {
        /// The reporting chip.
        chip: usize,
    },
}

/// Per-core timing parameters copied out of the [`ChipSpec`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct CoreTiming {
    mvm_latency_ns: f64,
    vfu_rate: f64,
    full_write_latency_ns: f64,
}

impl CoreTiming {
    pub(crate) fn of(chip: &ChipSpec) -> Self {
        Self {
            mvm_latency_ns: chip.crossbar.mvm_latency_ns,
            vfu_rate: chip.core.vfu_throughput_per_ns(),
            full_write_latency_ns: chip.crossbar.full_write_latency_ns(),
        }
    }
}

/// One core stepping through its instruction stream.
pub(crate) struct CoreComponent {
    program: Vec<Instruction>,
    pc: usize,
    /// The core's clock, ns (updated from event times only).
    pub(crate) clock_ns: f64,
    pub(crate) activity: CoreActivity,
    pub(crate) replace_done_ns: f64,
    /// The tag this core is blocked on (deadlock diagnostics).
    pub(crate) blocked: Option<Tag>,
    pub(crate) finished: bool,
    timing: CoreTiming,
    channel: ComponentId,
    bus: ComponentId,
    rendezvous: ComponentId,
    /// The chip sequencer notified (with the final accounting) when
    /// the stream is exhausted.
    monitor: ComponentId,
    core_index: usize,
    /// The `(batch, partition)` stage node this core executes.
    stage: usize,
    /// Added to every SEND/RECV tag on the wire, isolating the
    /// rendezvous tag space of stages that overlap under interleaving
    /// (zero in barrier mode, where the per-stage barrier clears the
    /// rendezvous anyway).
    tag_offset: u64,
}

impl CoreComponent {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        program: Vec<Instruction>,
        start: SimTime,
        timing: CoreTiming,
        channel: ComponentId,
        bus: ComponentId,
        rendezvous: ComponentId,
        monitor: ComponentId,
        core_index: usize,
        stage: usize,
        tag_offset: u64,
    ) -> Self {
        Self {
            program,
            pc: 0,
            clock_ns: start.as_ns(),
            activity: CoreActivity::default(),
            replace_done_ns: start.as_ns(),
            blocked: None,
            finished: false,
            timing,
            channel,
            bus,
            rendezvous,
            monitor,
            core_index,
            stage,
            tag_offset,
        }
    }

    /// The on-the-wire tag: the program's tag shifted into this
    /// stage's private tag space. A hard assert, not a debug one —
    /// silent tag aliasing between overlapping stages would corrupt
    /// rendezvous matching in release builds too.
    fn wire_tag(&self, tag: Tag) -> Tag {
        assert!(tag.0 < 1 << 48, "program tag {tag} collides with the stage-offset bits");
        Tag(tag.0 + self.tag_offset)
    }

    /// Issues the instruction at `pc`: local ops schedule the next
    /// `Step` on this core; shared-resource ops send a request and
    /// park until the reply event.
    fn issue(&mut self, me: ComponentId, ctx: &mut EngineCtx<'_, ChipEvent>) {
        let Some(&instr) = self.program.get(self.pc) else {
            self.finished = true;
            return;
        };
        let now = ctx.now();
        match instr {
            Instruction::LoadWeight { bytes } => {
                ctx.schedule(
                    now,
                    self.channel,
                    ChipEvent::MemRequest {
                        core: me,
                        bytes,
                        kind: RequestKind::Read,
                        weight: true,
                    },
                );
            }
            Instruction::LoadData { bytes } => {
                ctx.schedule(
                    now,
                    self.channel,
                    ChipEvent::MemRequest {
                        core: me,
                        bytes,
                        kind: RequestKind::Read,
                        weight: false,
                    },
                );
            }
            Instruction::StoreData { bytes } => {
                ctx.schedule(
                    now,
                    self.channel,
                    ChipEvent::MemRequest {
                        core: me,
                        bytes,
                        kind: RequestKind::Write,
                        weight: false,
                    },
                );
            }
            Instruction::WriteWeight { crossbars, .. } => {
                // Crossbars within a core write sequentially.
                let dur = crossbars as f64 * self.timing.full_write_latency_ns;
                self.activity.write_ns += dur;
                self.replace_done_ns = self.replace_done_ns.max(self.clock_ns + dur);
                self.pc += 1;
                ctx.schedule(now.advance(dur), me, ChipEvent::Step);
            }
            Instruction::Mvmul { waves, .. } => {
                let dur = waves as f64 * self.timing.mvm_latency_ns;
                self.activity.mvm_ns += dur;
                self.pc += 1;
                ctx.schedule(now.advance(dur), me, ChipEvent::Step);
            }
            Instruction::VectorOp { elements, .. } => {
                let dur = elements as f64 / self.timing.vfu_rate;
                self.activity.vfu_ns += dur;
                self.pc += 1;
                ctx.schedule(now.advance(dur), me, ChipEvent::Step);
            }
            Instruction::Send { bytes, tag, .. } => {
                let tag = self.wire_tag(tag);
                ctx.schedule(now, self.bus, ChipEvent::BusRequest { core: me, bytes, tag });
            }
            Instruction::Recv { tag, .. } => {
                // Diagnostics keep the program's tag; the wire carries
                // the stage-offset one.
                self.blocked = Some(tag);
                let tag = self.wire_tag(tag);
                ctx.schedule(
                    now,
                    self.rendezvous,
                    ChipEvent::AwaitTag { core: me, tag, since_ns: self.clock_ns },
                );
            }
        }
    }
}

impl Component<ChipEvent> for CoreComponent {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        self.clock_ns = event.time.as_ns();
        match event.payload {
            ChipEvent::Step => {}
            ChipEvent::MemDone { wait_ns, busy_ns } => {
                self.activity.dram_wait_ns += wait_ns;
                self.activity.dram_ns += busy_ns;
                self.pc += 1;
            }
            ChipEvent::BusDone { occupancy_ns } => {
                self.activity.send_ns += occupancy_ns;
                self.pc += 1;
            }
            ChipEvent::RecvDone { wait_ns } => {
                self.activity.recv_wait_ns += wait_ns;
                self.blocked = None;
                self.pc += 1;
            }
            other => unreachable!("core received {other:?}"),
        }
        self.issue(event.target, ctx);
        if self.finished {
            // The clock equals the event time here: local ops only
            // advance it through future Step events.
            ctx.schedule(
                event.time,
                self.monitor,
                ChipEvent::CoreDone {
                    stage: self.stage,
                    core_index: self.core_index,
                    activity: self.activity,
                    replace_done_ns: self.replace_done_ns,
                },
            );
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Chunk sizes for the in-line DRAM traffic, reproducing the
/// row-buffer locality of bulk weight streams vs scattered
/// activations.
const WEIGHT_CHUNK: usize = 1 << 20;
const ACTIVATION_CHUNK: usize = 64 << 10;

/// The single global-memory channel port. In `Analytic` timing mode it
/// serializes block transfers itself (bandwidth + first-access latency)
/// and forwards the request stream to the in-line DRAM model for energy
/// refinement; in `ClosedLoop` mode it only assigns addresses and hands
/// each blocking access to the multi-channel controllers, which own the
/// completion time.
pub(crate) struct MemChannel {
    mode: TimingMode,
    free_ns: f64,
    bandwidth_gbps: f64,
    access_latency_ns: f64,
    /// Bump allocators giving weights and activations disjoint
    /// sequential regions.
    weight_addr: u64,
    activation_addr: u64,
    pub(crate) stats: TraceStats,
    dram: Option<ComponentId>,
}

impl MemChannel {
    pub(crate) fn new(chip: &ChipSpec, dram: Option<ComponentId>, mode: TimingMode) -> Self {
        Self {
            mode,
            free_ns: 0.0,
            bandwidth_gbps: chip.memory.bandwidth_gbps,
            access_latency_ns: chip.memory.access_latency_ns,
            weight_addr: 0,
            activation_addr: 1 << 32,
            stats: TraceStats::default(),
            dram,
        }
    }
}

impl Component<ChipEvent> for MemChannel {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Barrier => {
                self.free_ns = event.time.as_ns();
            }
            ChipEvent::MemRequest { core, bytes, kind, weight } => {
                let now = event.time.as_ns();
                let (addr, chunk) = if weight {
                    (&mut self.weight_addr, WEIGHT_CHUNK)
                } else {
                    (&mut self.activation_addr, ACTIVATION_CHUNK)
                };
                let base = *addr;
                *addr += bytes as u64;
                // The chunk count is mode-independent, so both timing
                // modes report the same request stream.
                self.stats.requests += bytes.div_ceil(chunk);
                match kind {
                    RequestKind::Read => self.stats.read_bytes += bytes,
                    RequestKind::Write => self.stats.write_bytes += bytes,
                }

                if self.mode == TimingMode::ClosedLoop {
                    // Closed loop: the controllers decide when this
                    // access completes; the core's MemDone comes from
                    // them, not from the analytic channel equation.
                    let dram = self.dram.expect("closed-loop mode wires a DRAM component");
                    ctx.schedule(
                        event.time,
                        dram,
                        ChipEvent::DramAccess { core, addr: base, kind, bytes, chunk },
                    );
                    return;
                }

                let start = now.max(self.free_ns);
                let stream_ns = bytes as f64 / self.bandwidth_gbps;
                let dur = self.access_latency_ns + stream_ns;
                self.free_ns = start + stream_ns;

                // Forward the transfer to the in-line DRAM model in
                // row-friendly chunks, all issued at the grant time —
                // the same request stream the trace replay used to
                // rebuild after the fact.
                if let Some(dram) = self.dram {
                    let mut offset = 0usize;
                    while offset < bytes {
                        let take = chunk.min(bytes - offset);
                        ctx.schedule(
                            SimTime::from_ns(start),
                            dram,
                            ChipEvent::DramRequest {
                                addr: base + offset as u64,
                                kind,
                                bytes: take,
                            },
                        );
                        offset += take;
                    }
                }

                ctx.schedule(
                    SimTime::from_ns(start + dur),
                    core,
                    ChipEvent::MemDone { wait_ns: start - now, busy_ns: dur },
                );
            }
            other => unreachable!("memory channel received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The shared arbitrated core-to-core bus.
pub(crate) struct BusComponent {
    free_ns: f64,
    spec: InterconnectSpec,
    rendezvous: ComponentId,
}

impl BusComponent {
    pub(crate) fn new(chip: &ChipSpec, rendezvous: ComponentId) -> Self {
        Self { free_ns: 0.0, spec: chip.interconnect, rendezvous }
    }
}

impl Component<ChipEvent> for BusComponent {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Barrier => {
                self.free_ns = event.time.as_ns();
            }
            ChipEvent::BusRequest { core, bytes, tag } => {
                let now = event.time.as_ns();
                let start = now.max(self.free_ns);
                let granted = start + self.spec.arbitration_ns;
                let done = granted + self.spec.transfer_ns(bytes);
                self.free_ns = done;
                // Delivery is announced immediately; the data lands at
                // `done`.
                ctx.schedule(event.time, self.rendezvous, ChipEvent::Deliver { tag, at_ns: done });
                // Buffered send: the sender only pays arbitration.
                ctx.schedule(
                    SimTime::from_ns(granted),
                    core,
                    ChipEvent::BusDone { occupancy_ns: granted - now },
                );
            }
            other => unreachable!("bus received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// SEND/RECV tag matching. A tag may have several blocked receivers
/// (e.g. a broadcast-style schedule); all of them wake on delivery, in
/// the order they blocked. Deliveries are bucketed by the tag's
/// stage-offset bits so an interleaved stage's whole tag space can be
/// retired in O(1) when the stage drains (barrier mode clears
/// everything at each stage boundary instead).
#[derive(Default)]
pub(crate) struct Rendezvous {
    /// `delivered[stage bucket][tag]` — delivery instant, ns.
    pub(crate) delivered: HashMap<u64, HashMap<Tag, f64>>,
    waiting: HashMap<Tag, Vec<(ComponentId, f64)>>,
}

/// The stage bucket a wire tag belongs to (the high offset bits the
/// cores stamp in interleaved mode; bucket 0 in barrier mode).
fn tag_bucket(tag: Tag) -> u64 {
    tag.0 >> 48
}

impl Rendezvous {
    fn complete(
        &mut self,
        core: ComponentId,
        since_ns: f64,
        at_ns: f64,
        ctx: &mut EngineCtx<'_, ChipEvent>,
    ) {
        let resume = since_ns.max(at_ns);
        let wait_ns = (at_ns - since_ns).max(0.0);
        ctx.schedule(SimTime::from_ns(resume), core, ChipEvent::RecvDone { wait_ns });
    }
}

impl Component<ChipEvent> for Rendezvous {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::Barrier => {
                self.delivered.clear();
                debug_assert!(self.waiting.is_empty(), "barrier with blocked receivers");
            }
            ChipEvent::RetireStage { stage } => {
                self.delivered.remove(&stage);
            }
            ChipEvent::Deliver { tag, at_ns } => {
                self.delivered.entry(tag_bucket(tag)).or_default().insert(tag, at_ns);
                if let Some(waiters) = self.waiting.remove(&tag) {
                    for (core, since_ns) in waiters {
                        self.complete(core, since_ns, at_ns, ctx);
                    }
                }
            }
            ChipEvent::AwaitTag { core, tag, since_ns } => {
                if let Some(&at_ns) = self.delivered.get(&tag_bucket(tag)).and_then(|b| b.get(&tag))
                {
                    self.complete(core, since_ns, at_ns, ctx);
                } else {
                    self.waiting.entry(tag).or_default().push((core, since_ns));
                }
            }
            other => unreachable!("rendezvous received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The in-line LPDDR3 model: consumes the channel's request stream as
/// it is generated (replacing the old post-hoc trace replay) and
/// accumulates refined DRAM energy. Chip timing is not affected — the
/// analytic channel model owns the critical path, the controller
/// refines energy, exactly as the trace replay did.
pub(crate) struct InlineDram {
    pub(crate) sim: DramSimulator,
    pub(crate) requests: usize,
    latch: DrainLatch,
}

impl InlineDram {
    pub(crate) fn new() -> Self {
        Self {
            sim: DramSimulator::new(DramConfig::lpddr3_1600()),
            requests: 0,
            latch: DrainLatch::default(),
        }
    }
}

impl Component<ChipEvent> for InlineDram {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::DramRequest { addr, kind, bytes } => {
                self.sim.enqueue(Request::at_ns(event.time.as_ns(), addr, kind, bytes));
                self.requests += 1;
                if self.latch.arm() {
                    ctx.schedule(event.time, event.target, ChipEvent::DramDrain);
                }
            }
            ChipEvent::DramDrain => {
                self.latch.release();
                // Completions are absorbed into the controller's
                // energy/bandwidth counters.
                let _ = self.sim.service_pending();
            }
            ChipEvent::Barrier => {}
            other => unreachable!("dram received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The closed-loop multi-channel DRAM: every `DramAccess` is striped
/// across the in-line LPDDR3 controllers as its event arrives (cores
/// block, so arrival order is service order), and the requesting core's
/// `MemDone` fires at the slowest stripe's completion. Bank conflicts,
/// row hits/misses, refresh, and channel interleaving therefore shape
/// the chip's critical path directly.
///
/// With `fr_fcfs` enabled, same-instant accesses from independent
/// cores are latched and drained together, and their chunks are served
/// through the controllers' row-hit-preferring FR-FCFS pick
/// ([`MultiChannelDram::service_batch`]) instead of strictly at
/// arrival order. Off by default: arrival-order service is the
/// documented (and golden-pinned) closed-loop behaviour.
pub(crate) struct ClosedLoopDram {
    pub(crate) mem: MultiChannelDram,
    pub(crate) requests: usize,
    fr_fcfs: bool,
    pending: Vec<PendingAccess>,
    latch: DrainLatch,
}

/// One latched closed-loop access awaiting the FR-FCFS drain.
struct PendingAccess {
    core: ComponentId,
    addr: u64,
    kind: RequestKind,
    bytes: usize,
    chunk: usize,
}

impl ClosedLoopDram {
    pub(crate) fn new(channels: usize, interleave_bytes: usize, fr_fcfs: bool) -> Self {
        let mem = MultiChannelDram::new(DramConfig::lpddr3_1600(), channels, interleave_bytes)
            .expect("simulator builder guarantees at least one channel");
        Self { mem, requests: 0, fr_fcfs, pending: Vec::new(), latch: DrainLatch::default() }
    }

    /// Chunks a block access at the row-friendly granularity both
    /// timing modes share.
    fn chunks(now: f64, access: &PendingAccess) -> impl Iterator<Item = Request> + '_ {
        let mut offset = 0usize;
        std::iter::from_fn(move || {
            if offset >= access.bytes {
                return None;
            }
            let take = access.chunk.min(access.bytes - offset);
            let request = Request::at_ns(now, access.addr + offset as u64, access.kind, take);
            offset += take;
            Some(request)
        })
    }

    /// Completes one access: schedules the requesting core's `MemDone`
    /// at the slowest chunk's completion.
    fn complete(
        core: ComponentId,
        now: f64,
        start_ns: f64,
        finish_ns: f64,
        ctx: &mut EngineCtx<'_, ChipEvent>,
    ) {
        let start_ns = if start_ns.is_finite() { start_ns } else { now };
        ctx.schedule(
            SimTime::from_ns(finish_ns),
            core,
            ChipEvent::MemDone {
                wait_ns: (start_ns - now).max(0.0),
                busy_ns: finish_ns - start_ns.max(now),
            },
        );
    }
}

impl Component<ChipEvent> for ClosedLoopDram {
    fn on_event(&mut self, event: Event<ChipEvent>, ctx: &mut EngineCtx<'_, ChipEvent>) {
        match event.payload {
            ChipEvent::DramAccess { core, addr, kind, bytes, chunk } => {
                let access = PendingAccess { core, addr, kind, bytes, chunk };
                if self.fr_fcfs {
                    // Batch same-instant arrivals behind the latch so
                    // independent cores' chunks reach the FR-FCFS pick
                    // together.
                    self.pending.push(access);
                    if self.latch.arm() {
                        ctx.schedule(event.time, event.target, ChipEvent::DramDrain);
                    }
                    return;
                }
                let now = event.time.as_ns();
                // Serve the block in the same row-friendly chunks the
                // analytic-mode refinement streams, so both modes see
                // an identical request stream; the access completes
                // when its slowest chunk's data lands.
                let mut start_ns = f64::INFINITY;
                let mut finish_ns = now;
                for request in Self::chunks(now, &access) {
                    let served = self.mem.service(request);
                    start_ns = start_ns.min(served.start_ns);
                    finish_ns = finish_ns.max(served.finish_ns);
                    self.requests += 1;
                }
                Self::complete(core, now, start_ns, finish_ns, ctx);
            }
            ChipEvent::DramDrain => {
                self.latch.release();
                let now = event.time.as_ns();
                let batch = std::mem::take(&mut self.pending);
                let mut requests = Vec::new();
                let mut spans = Vec::with_capacity(batch.len());
                for access in &batch {
                    let from = requests.len();
                    requests.extend(Self::chunks(now, access));
                    spans.push((from, requests.len()));
                }
                self.requests += requests.len();
                let served = self.mem.service_batch(&requests);
                for (access, &(from, to)) in batch.iter().zip(&spans) {
                    let mut start_ns = f64::INFINITY;
                    let mut finish_ns = now;
                    for chunk in &served[from..to] {
                        start_ns = start_ns.min(chunk.start_ns);
                        finish_ns = finish_ns.max(chunk.finish_ns);
                    }
                    Self::complete(access.core, now, start_ns, finish_ns, ctx);
                }
            }
            ChipEvent::Barrier => {}
            other => unreachable!("closed-loop dram received {other:?}"),
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
