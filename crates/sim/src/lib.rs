//! # pim-sim — event-driven multi-core PIM chip simulator
//!
//! Executes the per-core `pim-isa` programs emitted by the COMPASS
//! scheduler on a timing model of the paper's chip template: cores
//! advance independently, `SEND`/`RECV` pairs rendezvous by tag over a
//! shared arbitrated bus, and `LOAD/STORE` instructions serialize on
//! the global-memory channel. Partitions execute sequentially with a
//! full-chip barrier between them (the weight-replacement boundary of
//! paper §II-B), which yields the per-partition latency breakdown of
//! Fig. 7 directly.
//!
//! Energy combines the `pim-arch` event energies with an optional
//! DRAM-trace replay through `pim-dram` — mirroring the paper's
//! "generate a memory trace from the scheduled instruction and feed it
//! into DRAMsim3" methodology.
//!
//! # Example
//!
//! ```
//! use compass::{Compiler, CompileOptions, Strategy};
//! use pim_arch::ChipSpec;
//! use pim_model::zoo;
//! use pim_sim::ChipSimulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chip = ChipSpec::chip_s();
//! let compiled = Compiler::new(chip.clone()).compile(
//!     &zoo::tiny_cnn(),
//!     &CompileOptions::new().with_strategy(Strategy::Greedy).with_batch_size(2),
//! )?;
//! let report = ChipSimulator::new(chip).run(compiled.programs(), 2)?;
//! assert!(report.makespan_ns > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod serve;
pub mod sim;
pub mod system;

mod components;
mod error;
mod stage;

pub use error::SimError;
pub use report::{ChipSimSummary, EngineMode, LinkStats, PartitionSimReport, SimReport};
pub use serve::{
    percentile, percentiles, BatchPolicy, RequestRecord, RequestTrace, ServingConfig,
    ServingReport, TrafficSpec, ADMISSION_LATENCY_NS,
};
pub use sim::ChipSimulator;
pub use system::{ChipLoad, Handoff, SystemSimulator};

// The arrival models live in the engine crate; re-export them so
// serving callers need only `pim_sim`.
pub use pim_engine::{ArrivalGen, TrafficModel};
